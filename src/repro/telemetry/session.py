"""TelemetrySession: one run's trace ring + metrics registry + export.

The session is the user-facing bundle: entering it turns tracing on
(with a bounded ring), attaches a fresh metrics registry, installs a
flight recorder (see :mod:`repro.telemetry.flightrec`), resets the span
ids, and rebases the shared simulated clock (:data:`repro.sim.CLOCK`)
to t=0 — saving the outer timeline so nested sessions restore it on
exit; exiting turns everything off.
``write()`` — called automatically on exit when ``out_dir`` is set —
produces

* ``trace.json``  — Chrome trace-event JSON (open in Perfetto or
  ``about:tracing``), and
* ``metrics.json`` — the registry snapshot plus every stats facade
  attached with :meth:`add_stats`,

plus any ``flight_<reason>.json`` black-box dumps the run triggered.

Ring capacity defaults to 65536 events; override per session with the
``ring_capacity`` kwarg or process-wide with the ``REPRO_TRACE_RING``
environment variable (the kwarg wins). Events shed by ring overflow are
exported as the ``trace.ring_dropped`` registry gauge so a truncated
trace is visible from ``metrics.json`` alone.

The benchmark harness wraps measured runs in a session so
``BENCH_perf.json`` runs can optionally attach traces; the ``python -m
repro trace`` subcommand uses it for its workloads.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.sim import CLOCK as _sim_clock
from repro.telemetry import flightrec, spans
from repro.telemetry.flightrec import FlightRecorder
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.stats import StatsFacade
from repro.telemetry.trace import (
    TraceRing,
    set_clock_ns,
    set_tracing,
    to_chrome_trace,
    tracing_enabled,
)

#: Environment variable overriding the default ring capacity.
RING_CAPACITY_ENV = "REPRO_TRACE_RING"
DEFAULT_RING_CAPACITY = 65536


def _default_ring_capacity() -> int:
    raw = os.environ.get(RING_CAPACITY_ENV)
    if raw is None:
        return DEFAULT_RING_CAPACITY
    try:
        capacity = int(raw)
    except ValueError:
        raise ConfigError(
            f"{RING_CAPACITY_ENV} must be an integer, got {raw!r}"
        )
    return capacity


class TelemetrySession:
    """Context manager owning one run's trace ring and registry."""

    def __init__(
        self,
        out_dir: Optional[object] = None,
        ring_capacity: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        flight_capacity: int = 512,
    ) -> None:
        self.out_dir = Path(out_dir) if out_dir is not None else None
        if ring_capacity is None:
            ring_capacity = _default_ring_capacity()
        self.ring = TraceRing(ring_capacity)
        self.registry = (
            registry if registry is not None else MetricsRegistry()
        )
        self.flight = FlightRecorder(
            capacity=flight_capacity,
            registry=self.registry,
            out_dir=str(self.out_dir) if self.out_dir is not None else None,
        )
        self._stats: Dict[str, StatsFacade] = {}
        self._annotations: Dict[str, object] = {}
        self._was_enabled = False
        self._prev_recorder: Optional[FlightRecorder] = None
        self._clock_state: Optional[int] = None

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "TelemetrySession":
        self._was_enabled = tracing_enabled()
        set_tracing(True, self.ring)
        # The session borrows the shared simulated clock: save the outer
        # timeline, start this run at t=0, and restore on exit so nested
        # sessions (and whatever ran before) resume where they left off.
        self._clock_state = _sim_clock.save()
        set_clock_ns(0.0)
        spans.reset()
        self._prev_recorder = flightrec.install(self.flight)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._prev_recorder is not None:
            flightrec.install(self._prev_recorder)
        else:
            flightrec.uninstall()
        self._prev_recorder = None
        if self._clock_state is not None:
            _sim_clock.restore(self._clock_state)
            self._clock_state = None
        set_tracing(False)
        if self.out_dir is not None and exc_type is None:
            self.write(self.out_dir)

    # -- metrics attachment ------------------------------------------------

    def add_stats(self, name: str, stats: StatsFacade) -> None:
        """Include a stats facade in ``metrics.json`` under ``name``."""
        self._stats[name] = stats

    def annotate(self, key: str, value: object) -> None:
        """Attach a free-form JSON-serialisable block to
        ``metrics.json`` under ``annotations.<key>`` (replay reports,
        campaign verdicts, run provenance, ...)."""
        self._annotations[key] = value

    def metrics_document(self) -> Dict[str, object]:
        # Exported as a gauge so downstream consumers of metrics.json /
        # CSV see truncation without parsing the trace block.
        self.registry.gauge("trace.ring_dropped").set(self.ring.dropped)
        doc: Dict[str, object] = {
            "schema": 1,
            "registry": self.registry.snapshot(),
            "stats": {
                name: stats.as_dict() for name, stats in self._stats.items()
            },
        }
        if self._annotations:
            doc["annotations"] = dict(self._annotations)
        doc["trace"] = {
            "events": len(self.ring),
            "capacity": self.ring.capacity,
            "dropped": self.ring.dropped,
        }
        if self.flight.dumps:
            doc["flight_records"] = list(self.flight.dumps)
        return doc

    # -- export ------------------------------------------------------------

    def write(self, out_dir: object) -> Tuple[Path, Path]:
        """Write ``trace.json`` + ``metrics.json``; returns their paths."""
        target = Path(out_dir)
        target.mkdir(parents=True, exist_ok=True)
        trace_path = target / "trace.json"
        metrics_path = target / "metrics.json"
        with open(trace_path, "w", encoding="utf-8") as fh:
            json.dump(to_chrome_trace(self.ring), fh, indent=1)
            fh.write("\n")
        with open(metrics_path, "w", encoding="utf-8") as fh:
            json.dump(self.metrics_document(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return trace_path, metrics_path
