"""Metrics registry: named counters, gauges, and fixed-bucket histograms.

The registry is the single home for every counter the stack maintains.
Components either bind their ledger-style statistics into a registry
through :class:`StatsFacade` (see :mod:`repro.telemetry.stats`) — the
dataclass-shaped views ``SwapStats``/``DriverStats``/… are thin facades
over registry counters — or register a *collector* callback that
contributes point-in-time values at snapshot (the DRAM refresh/command
counters use this, so their hot loops keep plain integer arithmetic).

Metrics are keyed by ``(name, labels)`` so one registry can hold the
same series for several components (e.g. per-DIMM driver counters with a
``dimm=<i>`` label). Snapshots export as a plain dict, JSON, or CSV.

There is one process-wide default registry (:func:`default_registry`)
for ad-hoc counters; systems that need isolation (every backend, every
:class:`~repro.telemetry.session.TelemetrySession`) create their own.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigError
from repro.telemetry.quantiles import QuantileHistogram

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A cumulative value.

    Monotonic by convention; :meth:`set` exists so the dataclass facades
    (which historically allowed direct assignment, including the odd
    decrement in the zswap re-store path) keep their exact semantics.
    """

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """A point-in-time value (occupancy, depth, ratio)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Fixed-bucket histogram: counts of observations per upper bound.

    ``buckets`` are the inclusive upper bounds of each bin; observations
    above the last bound land in the implicit overflow bin. The bounds
    are fixed at creation (no dynamic rebinning), which keeps
    :meth:`observe` one bisect + one increment.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "total", "sum")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Iterable[float],
        labels: LabelKey = (),
    ) -> None:
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ConfigError("histogram needs at least one bucket bound")
        self.name = name
        self.labels = labels
        self.buckets: List[float] = bounds
        #: counts[i] observes <= buckets[i]; counts[-1] is overflow.
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        # bisect_left keeps the bounds inclusive: observe(b) lands in
        # the ``le=b`` bin, matching the CSV column naming.
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
        }


class MetricsRegistry:
    """Holds metrics keyed by (name, labels) plus collector callbacks."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelKey], object] = {}
        #: prefix -> zero-arg callable returning {name: value}.
        self._collectors: List[Tuple[str, Callable[[], Dict[str, float]]]] = []

    # -- creation / lookup -------------------------------------------------

    def _get_or_create(self, cls, name: str, labels: Dict, **kwargs):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels=key[1], **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise ConfigError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Optional[Iterable[float]] = None, **labels
    ) -> Histogram:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            if buckets is None:
                raise ConfigError(
                    f"histogram {name!r} needs bucket bounds on first use"
                )
            metric = Histogram(name, buckets, labels=key[1])
            self._metrics[key] = metric
        elif not isinstance(metric, Histogram):
            raise ConfigError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def quantile(
        self,
        name: str,
        min_value: float = 1.0,
        relative_error: float = 0.01,
        **labels,
    ) -> QuantileHistogram:
        """Log-bucketed quantile histogram (see
        :mod:`repro.telemetry.quantiles`). As with :meth:`histogram`,
        the config is fixed by the first caller; later lookups ignore
        the ``min_value``/``relative_error`` arguments."""
        return self._get_or_create(
            QuantileHistogram,
            name,
            labels,
            min_value=min_value,
            relative_error=relative_error,
        )

    def register_collector(
        self, prefix: str, collect: Callable[[], Dict[str, float]]
    ) -> None:
        """Attach a callback whose dict is folded into every snapshot
        under ``prefix.<key>`` — the re-homing path for counters whose
        hot loops must stay plain attribute arithmetic."""
        self._collectors.append((prefix, collect))

    def metrics(self) -> List[object]:
        return list(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    # -- export ------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Flat dict: ``name{label=value,...}`` -> value/histogram dict."""
        out: Dict[str, object] = {}
        for (name, labels), metric in sorted(self._metrics.items()):
            key = name
            if labels:
                key += "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"
            out[key] = metric.snapshot()
        for prefix, collect in self._collectors:
            for key, value in collect().items():
                out[f"{prefix}.{key}"] = value
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_csv(self) -> str:
        """``metric,value`` rows; histograms flatten to bucket columns."""
        lines = ["metric,value"]
        for key, value in self.snapshot().items():
            if isinstance(value, dict) and value.get("kind") == "quantile":
                for label, q in value["quantiles"].items():
                    lines.append(f"{key}|{label},{q}")
                lines.append(f"{key}|count,{value['count']}")
                lines.append(f"{key}|sum,{value['sum']}")
            elif isinstance(value, dict):  # fixed-bucket histogram
                for bound, count in zip(
                    value["buckets"] + ["+inf"], value["counts"]
                ):
                    lines.append(f"{key}|le={bound},{count}")
                lines.append(f"{key}|sum,{value['sum']}")
            else:
                lines.append(f"{key},{value}")
        return "\n".join(lines) + "\n"

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other``'s counters/histograms into this registry
        (gauges take the other's latest value)."""
        for (name, labels), metric in other._metrics.items():
            if isinstance(metric, Counter):
                mine = self._get_or_create(Counter, name, dict(labels))
                mine.value += metric.value
            elif isinstance(metric, Gauge):
                self._get_or_create(Gauge, name, dict(labels)).set(
                    metric.value
                )
            elif isinstance(metric, QuantileHistogram):
                mine = self.quantile(
                    name,
                    min_value=metric.min_value,
                    relative_error=metric.relative_error,
                    **dict(labels),
                )
                mine.merge_from(metric)
            else:
                mine = self.histogram(
                    name, buckets=metric.buckets, **dict(labels)
                )
                if mine.buckets != metric.buckets:
                    raise ConfigError(
                        f"histogram {name!r} bucket bounds differ"
                    )
                for i, count in enumerate(metric.counts):
                    mine.counts[i] += count
                mine.total += metric.total
                mine.sum += metric.sum
        return self


#: Process-wide default registry for ad-hoc counters.
_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    return _DEFAULT
