"""Dataclass-shaped facades over registry counters.

The stack's historical statistics objects (``SwapStats``,
``DriverStats``, ``ZswapStats``, ``ControllerStats``) were plain
dataclasses whose fields callers incremented directly and hand-summed
when aggregating. :class:`StatsFacade` keeps that exact surface —
keyword construction, attribute increments, decrements, properties —
while homing every field in a :class:`~repro.telemetry.registry.
MetricsRegistry` counter, which buys a single shared ``merge()`` /
``as_dict()`` implementation and uniform JSON/CSV export alongside all
other telemetry.

Subclasses declare fields in ``_FIELDS`` (an ordered name -> default
mapping); ``__init_subclass__`` installs one descriptor per field, so
``stats.swap_outs += 1`` is a counter read-modify-write against the
bound registry. Each facade owns a private registry by default; pass
``registry=``/``labels=`` to home the series in a shared per-System
registry instead (per-DIMM driver stats use a ``dimm=<i>`` label).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.telemetry.registry import MetricsRegistry


class _FieldDescriptor:
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return obj._counters[self.name].value

    def __set__(self, obj, value) -> None:
        obj._counters[self.name].set(value)


class StatsFacade:
    """Base class: dataclass-compatible view over registry counters."""

    #: metric name prefix inside the bound registry.
    _PREFIX = "stats"
    #: field name -> default value, in declaration order.
    _FIELDS: Dict[str, float] = {}

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        merged: Dict[str, float] = {}
        for base in reversed(cls.__mro__):
            merged.update(base.__dict__.get("_FIELDS", {}))
        cls._FIELDS = merged
        for name in cls.__dict__.get("_FIELDS", {}):
            setattr(cls, name, _FieldDescriptor(name))

    def __init__(
        self,
        *args,
        registry: Optional[MetricsRegistry] = None,
        labels: Optional[Dict[str, object]] = None,
        **values,
    ) -> None:
        if len(args) > len(self._FIELDS):
            raise TypeError(
                f"{type(self).__name__} takes at most "
                f"{len(self._FIELDS)} positional arguments"
            )
        self._registry = registry if registry is not None else MetricsRegistry()
        self._labels = dict(labels) if labels else {}
        self._counters = {}
        for name, default in self._FIELDS.items():
            counter = self._registry.counter(
                f"{self._PREFIX}.{name}", **self._labels
            )
            counter.set(default)
            self._counters[name] = counter
        for name, value in zip(self._FIELDS, args):
            if name in values:
                raise TypeError(f"duplicate value for field {name!r}")
            values[name] = value
        for name, value in values.items():
            if name not in self._FIELDS:
                raise TypeError(
                    f"{type(self).__name__} has no field {name!r}"
                )
            self._counters[name].set(value)

    @property
    def registry(self) -> MetricsRegistry:
        """The registry this facade's counters live in."""
        return self._registry

    # -- the shared aggregation surface ------------------------------------

    def as_dict(self) -> Dict[str, float]:
        """Field -> value, in declaration order."""
        return {name: self._counters[name].value for name in self._FIELDS}

    def merge(self, other: "StatsFacade") -> "StatsFacade":
        """Field-wise sum of ``other`` into ``self``; returns ``self``."""
        if self._FIELDS.keys() != other._FIELDS.keys():
            raise TypeError(
                f"cannot merge {type(other).__name__} into "
                f"{type(self).__name__}"
            )
        for name, value in other.as_dict().items():
            self._counters[name].inc(value)
        return self

    @classmethod
    def merged(cls, items: Iterable["StatsFacade"]) -> "StatsFacade":
        """A fresh facade holding the field-wise sum of ``items``."""
        total = cls()
        for item in items:
            total.merge(item)
        return total

    # -- dataclass-style niceties ------------------------------------------

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={value!r}" for name, value in self.as_dict().items()
        )
        return f"{type(self).__name__}({inner})"

    def __eq__(self, other) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    __hash__ = None  # mutable, like an unfrozen dataclass
