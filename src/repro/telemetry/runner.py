"""Traced reference workloads behind ``python -m repro trace``.

Each workload drives a real slice of the stack inside a
:class:`~repro.telemetry.session.TelemetrySession` so the exported
``trace.json`` exercises every track the taxonomy defines:

* ``zswap``    — the functional swap path: a :class:`ZswapFrontend` over
  an :class:`XfmBackend` with a deliberately tiny SPM/CRQ, driven over a
  refresh-window clock loop. Produces CPU spans (zswap store/load,
  compress/decompress), NMA offload spans, driver doorbells, refresh
  windows, and all three fallback reason codes.
* ``emulator`` — one Fig. 12 emulation point with an undersized SPM, so
  the per-tRFC pipeline (window spans, enqueues, completions, fallbacks)
  is visible on the timeline.
* ``tiers``    — the 3-tier pipeline (CPU-zswap -> XFM -> DFM) under
  pressure: fall-through stores, LRU demotion cascades, upward
  promotions, and demand loads, all on the ``tiering`` track with
  per-tier registry counters.

Workload functions take the *entered* session and return a flat summary
dict (printable key -> value) for the CLI.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.sim import EventScheduler
from repro.telemetry.session import TelemetrySession

#: Bytes per page, kept local to avoid importing the stack at module load.
_PAGE = 4096


def _patterned_page(index: int) -> bytes:
    """Compressible page: short repeating runs keyed by ``index``."""
    unit = bytes([(index * 7 + j) % 13 for j in range(64)])
    return (unit * (_PAGE // len(unit)))[:_PAGE]


def _noise_page(seed: int) -> bytes:
    """Incompressible page from a fixed xorshift stream (no RNG deps)."""
    state = (seed * 2654435761 + 1) & 0xFFFFFFFF
    out = bytearray(_PAGE)
    for i in range(_PAGE):
        state ^= (state << 13) & 0xFFFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0xFFFFFFFF
        out[i] = state & 0xFF
    return bytes(out)


# -- zswap workload ---------------------------------------------------------


def _zswap_workload(session: TelemetrySession) -> Dict[str, object]:
    from repro.core.backend import XfmBackend
    from repro.core.nma import NearMemoryAccelerator, NmaConfig
    from repro.dram.device import DDR5_32GB, timings_for_device
    from repro.dram.refresh import RefreshScheduler
    from repro.sfm.zswap import ZswapFrontend

    config = NmaConfig(spm_bytes=4 * _PAGE, crq_depth=4)
    backend = XfmBackend(
        capacity_bytes=2 * 1024 * 1024,
        nma=NearMemoryAccelerator(config),
        registry=session.registry,
    )
    zswap = ZswapFrontend(
        backend, total_ram_bytes=64 * 1024 * 1024, max_pool_percent=20
    )
    refresh = RefreshScheduler(DDR5_32GB, timings_for_device(DDR5_32GB))
    trefi_ns = refresh.trefi_ns

    stored: Dict[int, bytes] = {}
    offset = 0

    def store(data: bytes) -> bool:
        nonlocal offset
        offset += 1
        if zswap.store(0, offset, data):
            stored[offset] = data
            return True
        return False

    #: In-flight prefetch staging: (SPM entry ids) held across a window to
    #: create the resource pressure that forces CPU fallbacks.
    staged = []

    def stage_prefetches(count: int, pop: bool) -> None:
        """Reserve SPM (and optionally leave the CRQ occupied) the way a
        burst of outstanding prefetch decompressions would."""
        for _ in range(count):
            request = backend.driver.submit_decompress(
                source_row=0, input_bytes=_PAGE, dest_row=1
            )
            if pop:
                backend.nma.pop_request()
                staged.append(backend.nma.stage_input(request))

    def release_prefetches(queued: int) -> None:
        for _ in range(queued):
            backend.nma.pop_request()
        while staged:
            entry = staged.pop()
            backend.nma.release(entry.entry_id)
            backend.driver.notify_release(_PAGE)

    num_windows = 12

    def window_body(ref: int) -> None:
        if ref < 4:
            # Steady state: compressible pages offload through the NMA.
            for i in range(6):
                store(_patterned_page(ref * 6 + i))
        elif ref == 4:
            # Rejects: same-filled (kept, no pool space) + incompressible.
            store(b"\x00" * _PAGE)
            store(b"\x5a" * _PAGE)
            store(_noise_page(1))
            store(_noise_page(2))
        elif ref == 5:
            # SPM pressure: staged prefetches hold the whole scratchpad,
            # so these stores fall back with reason ``spm_full``.
            stage_prefetches(4, pop=True)
            for i in range(3):
                store(_patterned_page(100 + i))
            release_prefetches(queued=0)
        elif ref == 6:
            # CRQ pressure: the queue is full of un-popped prefetches, so
            # these stores fall back with reason ``queue_full``.
            stage_prefetches(4, pop=False)
            for i in range(3):
                store(_patterned_page(200 + i))
            release_prefetches(queued=4)
        elif ref < 10:
            # Demand faults: each load is a CPU decompression by design.
            for key in sorted(stored)[:4]:
                data = zswap.load(0, key)
                expect = stored.pop(key)
                if data != expect:
                    raise AssertionError(
                        f"round-trip mismatch at offset {key}"
                    )
        elif ref == 10:
            for key in sorted(stored)[:2]:
                zswap.invalidate_page(0, key)
                stored.pop(key)
        else:
            backend.xfm_compact()

    # The workload consumes the scheduler's window stream as events:
    # each ref_window span fires at its exact tick start (clock set by
    # the event core), and the per-tREFI body runs on the first window
    # of each interval (every window under all-bank; the leading
    # per-bank slice otherwise).
    last_bin = -1

    def on_window(window) -> None:
        nonlocal last_bin
        ref = refresh.policy.trefi_bin(window.ref_index)
        if ref != last_bin:
            last_bin = ref
            window_body(ref)

    events = EventScheduler()
    refresh.schedule_windows(events, num_windows * trefi_ns, on_window)
    events.run()

    session.add_stats("swap", backend.stats)
    session.add_stats("driver", backend.driver.stats)
    session.add_stats("zswap", zswap.stats)
    stats = backend.stats
    return {
        "windows": num_windows,
        "stores_accepted": zswap.stats.stored_pages + zswap.stats.loads,
        "loads": zswap.stats.loads,
        "rejects": zswap.stats.total_rejects,
        "offloaded_compressions": stats.offloaded_compressions,
        "fallbacks_spm_full": stats.fallbacks_spm_full,
        "fallbacks_queue_full": stats.fallbacks_queue_full,
        "fallbacks_demand": stats.fallbacks_demand,
        "trace_events": len(session.ring),
    }


# -- emulator workload ------------------------------------------------------


def _emulator_workload(session: TelemetrySession) -> Dict[str, object]:
    from repro.core.emulator import EmulatorConfig, XfmEmulator

    config = EmulatorConfig(
        sim_time_s=0.01,
        spm_bytes=256 * 1024,
        accesses_per_ref=1,
        promotion_rate=1.0,
    )
    report = XfmEmulator(config).run()

    gauges = {
        "emulator.total_ops": report.total_ops,
        "emulator.completed_ops": report.completed_ops,
        "emulator.fallback_ops": report.fallback_ops,
        "emulator.fallback_spm_full": report.fallback_spm_full,
        "emulator.fallback_queue_full": report.fallback_queue_full,
        "emulator.conditional_accesses": report.conditional_accesses,
        "emulator.random_accesses": report.random_accesses,
        "emulator.spm_peak_bytes": report.spm_peak_bytes,
    }
    for name, value in gauges.items():
        session.registry.gauge(name).set(value)
    return {
        "total_ops": report.total_ops,
        "completed_ops": report.completed_ops,
        "fallback_fraction": round(report.fallback_fraction, 4),
        "fallback_spm_full": report.fallback_spm_full,
        "fallback_queue_full": report.fallback_queue_full,
        "random_fraction": round(report.random_fraction, 4),
        "trace_events": len(session.ring),
        "trace_dropped": session.ring.dropped,
    }


# -- tiering workload --------------------------------------------------------


def _tiers_workload(session: TelemetrySession) -> Dict[str, object]:
    from repro.tiering import LruDemotion, TierPipeline

    # Small upper tiers so the demotion cascade actually fires; the DFM
    # floor is large enough to absorb everything that sinks.
    pipeline = TierPipeline.build(
        cpu_capacity_bytes=16 * 1024,
        xfm_capacity_bytes=16 * 1024,
        dfm_capacity_bytes=1024 * 1024,
        registry=session.registry,
        demotion=LruDemotion(watermark_fraction=0.5),
    )

    def _half_page(key: int) -> bytes:
        """~2:1-compressible page: pattern front, noise tail — big
        enough compressed to put real pressure on the 16 KiB tiers."""
        return (_patterned_page(key)[: _PAGE // 2]
                + _noise_page(key)[: _PAGE // 2])

    stored: Dict[int, bytes] = {}
    for key in range(40):
        # Every 5th page is noise: incompressible at both compressed
        # tiers, so it falls through straight to DFM.
        data = _noise_page(key) if key % 5 == 4 else _half_page(key)
        if pipeline.store(key, data):
            stored[key] = data

    # Hot-set promotion: the oldest keys sank during the cascade; pull
    # a few back toward tier 0.
    promoted = sum(
        1 for key in list(stored)[:4] if pipeline.promote_key(key)
    )

    mismatches = 0
    for key, expect in list(stored.items()):
        if pipeline.load(key) != expect:
            mismatches += 1
    if mismatches:
        raise AssertionError(f"{mismatches} tier round-trip mismatches")

    for name, tier in pipeline.tiers_by_name().items():
        session.add_stats(f"tier.{name}", tier.stats)
    session.add_stats("pipeline", pipeline.pipeline_stats)
    pstats = pipeline.pipeline_stats
    return {
        "tiers": "/".join(pipeline.tier_names),
        "stores": pstats.stores,
        "store_fallthroughs": pstats.store_fallthroughs,
        "demotions": pstats.demotions,
        "promotions": promoted,
        "loads": pstats.loads + pstats.prefetch_loads,
        "round_trip_ok": not mismatches,
        "trace_events": len(session.ring),
        # For the `python -m repro tiers` per-tier table; CLI printers
        # skip underscore-prefixed keys.
        "_pipeline": pipeline,
    }


WORKLOADS: Dict[str, Callable[[TelemetrySession], Dict[str, object]]] = {
    "zswap": _zswap_workload,
    "emulator": _emulator_workload,
    "tiers": _tiers_workload,
}


def run_traced(
    workload: str,
    out_dir: Optional[object] = None,
    ring_capacity: int = 65536,
) -> Tuple[TelemetrySession, Dict[str, object]]:
    """Run one named workload under tracing; returns (session, summary).

    When ``out_dir`` is set the session writes ``trace.json`` and
    ``metrics.json`` there on exit.
    """
    if workload not in WORKLOADS:
        raise KeyError(
            f"unknown workload {workload!r}; have {sorted(WORKLOADS)}"
        )
    session = TelemetrySession(out_dir=out_dir, ring_capacity=ring_capacity)
    with session:
        summary = WORKLOADS[workload](session)
    return session, summary
