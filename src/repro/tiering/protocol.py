"""The far-memory tier contract every backend implements.

The stack grew four swap surfaces — baseline CPU SFM, single-DIMM XFM,
multi-channel XFM, and uncompressed DFM — that all answer the same five
questions (store a page, load it back, drop it, do you hold it, how much
capacity is left) but historically only shared them by convention.
:class:`FarMemoryTier` is that convention written down: a structural
protocol (``typing.Protocol``) the zswap frontend, the AIFM runtime, the
tier pipeline, and the examples are typed against, so generic code can
no longer quietly depend on SFM-only attributes like ``zpool`` or
``index``.

:class:`SwapOutcome` lives here because it *is* the protocol's return
type; :mod:`repro.sfm.backend` re-exports it so historical import paths
(``from repro.sfm.backend import SwapOutcome``) keep working.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.sfm.page import PAGE_SIZE, Page

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sfm.metrics import BandwidthLedger, SwapStats


@dataclass(frozen=True)
class SwapOutcome:
    """Result of one swap-out attempt.

    Rejections (``accepted=False``) are control-plane signals, not
    errors: ``reason`` is ``"incompressible"`` or ``"pool-full"`` for
    single tiers, and the pipeline adds ``"all-tiers-rejected"`` when a
    page fell through every tier. Two *failure* reasons signal a broken
    (not merely full) tier and feed the pipeline's circuit breakers:
    ``"link-error"`` (DFM link retries exhausted; nothing was written)
    and ``"device-fault"`` (the tier raised TierUnavailableError).
    Either way the page stays resident — a rejection never loses data.
    """

    accepted: bool
    reason: str = "ok"
    compressed_len: int = 0
    cpu_cycles: float = 0.0

    @property
    def ratio(self) -> float:
        if not self.compressed_len:
            return 0.0
        return PAGE_SIZE / self.compressed_len


@runtime_checkable
class FarMemoryTier(Protocol):
    """Structural contract of one far-memory tier.

    Every concrete backend (:class:`~repro.sfm.backend.SfmBackend`,
    :class:`~repro.core.backend.XfmBackend`,
    :class:`~repro.core.system.MultiChannelXfmBackend`,
    :class:`~repro.dfm.backend.DfmBackend`) and the composite
    :class:`~repro.tiering.pipeline.TierPipeline` satisfy it. Stats are
    registry-backed (:class:`~repro.telemetry.stats.StatsFacade`); when
    several tiers share one :class:`~repro.telemetry.registry.
    MetricsRegistry` each binds its counters with a ``tier=<name>``
    label so the series stay distinguishable.
    """

    #: Registry-backed swap counters (``SwapStats`` surface).
    stats: "SwapStats"
    #: Per-tier traffic accounting by (actor, direction).
    ledger: "BandwidthLedger"
    #: Pool capacity in bytes (property or plain attribute).
    capacity_bytes: int
    #: Label used for registry series and report rows.
    tier_name: str

    # -- data plane --------------------------------------------------------

    def swap_out(self, page: Page) -> SwapOutcome:
        """Store a resident page into this tier (may reject)."""
        ...

    def swap_in(self, page: Page) -> bytes:
        """Load a stored page back to local memory (demand path)."""
        ...

    def promote(self, page: Page) -> bytes:
        """Load via the tier's promotion path — the accelerator offload
        on XFM tiers, identical to :meth:`swap_in` elsewhere."""
        ...

    def invalidate(self, vaddr: int) -> bool:
        """Drop the stored copy of ``vaddr`` without decompressing it
        (the swap-slot-freed path); returns False when not held."""
        ...

    # -- occupancy ---------------------------------------------------------

    def contains(self, vaddr: int) -> bool:
        ...

    def stored_pages(self) -> int:
        ...

    def used_bytes(self) -> int:
        """Pool bytes currently consumed (slab/slot footprint)."""
        ...

    def effective_bytes_freed(self) -> int:
        """Resident bytes released minus pool footprint consumed."""
        ...

    # -- maintenance -------------------------------------------------------

    def compact(self) -> int:
        ...

    def swap_latency_s(self, direction: str) -> float:
        ...
