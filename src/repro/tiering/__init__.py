"""Multi-tier far-memory composition (CPU-zswap -> XFM -> DFM).

``FarMemoryTier`` is the structural contract every backend satisfies;
``TierPipeline`` chains tiers under pluggable admission / demotion /
promotion policies. See DESIGN.md §8.
"""

from repro.tiering.factory import TIER_KINDS, make_tier
from repro.tiering.pipeline import PipelineStats, TierPipeline
from repro.tiering.policy import (
    AdmissionPolicy,
    AlwaysAdmit,
    CapacityAdmission,
    DemotionPolicy,
    LruDemotion,
    NeverDemote,
    NeverPromote,
    PoolLimitPolicy,
    PromoteOneLevel,
    PromoteToTop,
    PromotionPolicy,
)
from repro.tiering.protocol import FarMemoryTier, SwapOutcome

__all__ = [
    "AdmissionPolicy",
    "AlwaysAdmit",
    "CapacityAdmission",
    "DemotionPolicy",
    "FarMemoryTier",
    "LruDemotion",
    "NeverDemote",
    "NeverPromote",
    "PipelineStats",
    "PoolLimitPolicy",
    "PromoteOneLevel",
    "PromoteToTop",
    "PromotionPolicy",
    "SwapOutcome",
    "TIER_KINDS",
    "TierPipeline",
    "make_tier",
]
