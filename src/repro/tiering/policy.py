"""Pluggable tiering policy objects.

The decisions that used to live inline in ``ZswapFrontend.store`` /
``ZswapFrontend.shrink`` — when is a tier too full to admit, which
entries are evicted under pressure, where does a reloaded blob go —
are policy, not mechanism. This module gives each decision a small
object so the :class:`~repro.tiering.pipeline.TierPipeline` (and the
zswap frontend itself) can swap strategies without touching the data
path:

* :class:`AdmissionPolicy` — may this tier accept one more page?
* :class:`DemotionPolicy` — is this tier under enough pressure that its
  LRU entries should sink to the next tier down?
* :class:`PromotionPolicy` — when a blob is promoted, which tier does
  it aim for?
* :class:`PoolLimitPolicy` — zswap's ``max_pool_percent`` arithmetic,
  extracted verbatim so the frontend and tests share one copy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sfm.page import PAGE_SIZE


# -- admission ---------------------------------------------------------------


class AdmissionPolicy:
    """Decides whether a tier may take one more page *before* the
    store is attempted (the tier can still reject on its own)."""

    def admit(self, tier) -> bool:  # pragma: no cover - interface
        raise NotImplementedError


class AlwaysAdmit(AdmissionPolicy):
    """No pre-check: let the tier's own capacity logic decide."""

    def admit(self, tier) -> bool:
        return True


@dataclass(frozen=True)
class CapacityAdmission(AdmissionPolicy):
    """Admit while the tier's pool footprint stays below a fraction of
    its capacity — the generic form of zswap's pool-limit check."""

    max_usage_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.max_usage_fraction <= 1.0:
            raise ConfigError("max_usage_fraction must be in (0, 1]")

    def admit(self, tier) -> bool:
        limit = self.max_usage_fraction * tier.capacity_bytes
        return tier.used_bytes() + PAGE_SIZE <= limit


# -- demotion ----------------------------------------------------------------


class DemotionPolicy:
    """Decides when a tier is under pressure; the pipeline then demotes
    that tier's LRU entries downward until the policy is satisfied."""

    def should_demote(self, tier) -> bool:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass(frozen=True)
class LruDemotion(DemotionPolicy):
    """Demote LRU-cold entries while the tier sits above its watermark
    (fraction of capacity). The victim *order* is the pipeline's
    per-tier LRU; this object only supplies the pressure test."""

    watermark_fraction: float = 0.9

    def __post_init__(self) -> None:
        if not 0.0 < self.watermark_fraction <= 1.0:
            raise ConfigError("watermark_fraction must be in (0, 1]")

    def should_demote(self, tier) -> bool:
        return tier.used_bytes() > self.watermark_fraction * tier.capacity_bytes


class NeverDemote(DemotionPolicy):
    """Pressure never cascades; tiers reject instead (store falls
    through to the next tier at admission time)."""

    def should_demote(self, tier) -> bool:
        return False


# -- promotion ---------------------------------------------------------------


class PromotionPolicy:
    """Chooses the destination tier index for an upward move."""

    def target_tier(self, current_index: int) -> int:  # pragma: no cover
        raise NotImplementedError


class PromoteToTop(PromotionPolicy):
    """Hot blobs jump straight back to tier 0 (falling through on
    reject, like any store)."""

    def target_tier(self, current_index: int) -> int:
        return 0


class PromoteOneLevel(PromotionPolicy):
    """Gradual ascent: one tier per promotion (TierScape-style)."""

    def target_tier(self, current_index: int) -> int:
        return max(0, current_index - 1)


class NeverPromote(PromotionPolicy):
    """Promotions are disabled; blobs only leave via loads."""

    def target_tier(self, current_index: int) -> int:
        return current_index


# -- zswap pool limit --------------------------------------------------------


@dataclass(frozen=True)
class PoolLimitPolicy:
    """zswap's ``max_pool_percent`` admission arithmetic.

    ``limit_bytes`` is the pool budget; :meth:`over_limit` is the
    store-path check and :meth:`needs_headroom` the shrink-loop
    condition — both exactly as ``ZswapFrontend`` historically inlined
    them, now shared between the frontend, the pipeline tests, and any
    future tier that wants kernel-compatible semantics.
    """

    total_ram_bytes: int
    max_pool_percent: int = 20

    def __post_init__(self) -> None:
        if not 1 <= self.max_pool_percent <= 100:
            raise ConfigError("max_pool_percent must be in [1, 100]")
        if self.total_ram_bytes < PAGE_SIZE:
            raise ConfigError("total_ram_bytes too small")

    def limit_bytes(self) -> int:
        return self.total_ram_bytes * self.max_pool_percent // 100

    def over_limit(self, used_bytes: int) -> bool:
        return used_bytes >= self.limit_bytes()

    def needs_headroom(self, used_bytes: int, headroom_bytes: int) -> bool:
        """True while ``used + headroom`` still exceeds the limit — the
        writeback loop keeps evicting until this turns False."""
        return used_bytes + headroom_bytes > self.limit_bytes()
