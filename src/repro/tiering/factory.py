"""make_tier: one constructor for every replay / CLI target config.

The CLI, the scenario replayer, and the differential tests all need to
turn a short backend name (``cpu`` / ``xfm`` / ``xfm-mc`` / ``dfm`` /
``pipeline``) into a ready :class:`~repro.tiering.protocol.FarMemoryTier`.
This module is that single mapping, so the set of replayable targets is
defined in exactly one place.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigError
from repro.sfm.page import PAGE_SIZE
from repro.telemetry.registry import MetricsRegistry
from repro.tiering.protocol import FarMemoryTier

#: Backend names ``make_tier`` accepts (also the CLI's --backend values).
TIER_KINDS = ("cpu", "xfm", "xfm-mc", "dfm", "pipeline")

#: Default pipeline split: tier-0 and tier-1 each get 1/8 of the total,
#: the DFM floor gets the rest — small upper tiers force the demotion
#: cascades the scenarios are recorded against.
_PIPELINE_SPLIT = (1 / 8, 1 / 8)


def make_tier(
    kind: str,
    capacity_bytes: int = 256 * PAGE_SIZE,
    registry: Optional[MetricsRegistry] = None,
) -> FarMemoryTier:
    """Build a far-memory target by name.

    ``capacity_bytes`` is the *total* capacity: flat backends get all of
    it; ``pipeline`` splits it 1/8 cpu-zswap, 1/8 xfm, 3/4 dfm.
    """
    if capacity_bytes < PAGE_SIZE:
        raise ConfigError(
            f"capacity_bytes must be at least one page, got {capacity_bytes}"
        )
    registry = registry if registry is not None else MetricsRegistry()
    if kind == "cpu":
        from repro.sfm.backend import SfmBackend

        return SfmBackend(
            capacity_bytes=capacity_bytes, registry=registry, tier="cpu-zswap"
        )
    if kind == "xfm":
        from repro.core.backend import XfmBackend

        return XfmBackend(
            capacity_bytes=capacity_bytes, registry=registry, tier="xfm"
        )
    if kind == "xfm-mc":
        from repro.core.system import MultiChannelXfmBackend

        num_dimms = 4
        return MultiChannelXfmBackend(
            capacity_bytes=capacity_bytes - capacity_bytes % num_dimms,
            num_dimms=num_dimms,
            registry=registry,
            tier="xfm-mc",
        )
    if kind == "dfm":
        from repro.dfm.backend import DfmBackend

        return DfmBackend(
            capacity_bytes=capacity_bytes, registry=registry, tier="dfm"
        )
    if kind == "pipeline":
        from repro.tiering.pipeline import TierPipeline

        cpu = max(PAGE_SIZE, int(capacity_bytes * _PIPELINE_SPLIT[0]))
        xfm = max(PAGE_SIZE, int(capacity_bytes * _PIPELINE_SPLIT[1]))
        dfm = max(PAGE_SIZE, capacity_bytes - cpu - xfm)
        return TierPipeline.build(
            cpu_capacity_bytes=cpu,
            xfm_capacity_bytes=xfm,
            dfm_capacity_bytes=dfm,
            registry=registry,
        )
    raise ConfigError(
        f"unknown tier kind {kind!r}; have {', '.join(TIER_KINDS)}"
    )
