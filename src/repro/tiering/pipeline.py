"""TierPipeline: ordered far-memory tiers under one policy engine.

Composes an ordered list of :class:`~repro.tiering.protocol.
FarMemoryTier` instances (e.g. CPU-zswap -> XFM -> DFM) into a single
tier (the composite itself satisfies the protocol, so the AIFM runtime,
the zswap frontend, and the examples can run over a pipeline unchanged):

* **store fall-through** — a page rejected at tier N (incompressible,
  pool-full, admission denied) falls through to tier N+1; only when
  every tier rejects does the pipeline report ``all-tiers-rejected``.
* **demotion** — after each store the demotion policy is consulted per
  tier; while a tier sits above its watermark its LRU-coldest entries
  sink to the next tier down (TierScape's cold-data cascade).
* **promotion** — loads bring a page back to local DRAM from whichever
  tier holds it; :meth:`promote_up` additionally lets hot blobs climb
  toward tier 0 without leaving far memory, destination chosen by the
  promotion policy.

Accounting: every tier keeps registry-backed ``SwapStats`` (labelled
``tier=<name>`` when built through :meth:`TierPipeline.build`) plus its
own :class:`~repro.sfm.metrics.BandwidthLedger`; the pipeline exposes
the merged ledger/stats view and its own ``tier_pipeline.*`` counters,
so per-tier counters reconcile 1:1 against per-tier ledger totals.
Trace spans (``tier_store``/``tier_load``/``tier_demote``/
``tier_promote`` on the ``tiering`` track) reuse the
:mod:`repro.telemetry.reasons` codes; the end-to-end latency quantiles
they observe are simulated-time durations measured on the shared
:data:`repro.sim.CLOCK` (every backend charges its modeled cost there),
so pipeline latency accounting is on the same timeline as refresh
windows, backoff charges, and replayed traces.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import (
    ConfigError,
    CorruptedBlobError,
    SfmError,
    TierUnavailableError,
)
from repro.resilience.breaker import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
)
from repro.compression.base import batch_stats
from repro.sfm.metrics import BandwidthLedger, SwapStats
from repro.sfm.page import PAGE_SIZE, Page
from repro.telemetry import flightrec as _flightrec
from repro.telemetry import reasons, spans as _spans, trace as _trace
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.stats import StatsFacade
from repro.tiering.policy import (
    AdmissionPolicy,
    AlwaysAdmit,
    DemotionPolicy,
    LruDemotion,
    PromoteToTop,
    PromotionPolicy,
)
from repro.tiering.protocol import FarMemoryTier, SwapOutcome
from repro.validation.hooks import checkpoint

#: Trace track for pipeline-level events (tier data paths keep their
#: own cpu/nma tracks; this one shows placement decisions).
TRACK_TIER = "tiering"


class PipelineStats(StatsFacade):
    """Placement/movement counters of one pipeline (registry-backed)."""

    _PREFIX = "tier_pipeline"
    _FIELDS = {
        "stores": 0,
        # A store that was refused at one tier and moved on to the next.
        "store_fallthroughs": 0,
        "store_rejects": 0,
        "loads": 0,
        # Loads served through the offload-preferred promote() path.
        "prefetch_loads": 0,
        "demotions": 0,
        "demotion_failures": 0,
        "promotions": 0,
        "promotions_blocked": 0,
        "invalidates": 0,
        # Pages handed to the spill callback (no tier would hold them).
        "spills": 0,
        # Spill callbacks that raised: counted, never allowed to desync
        # the pipeline's bookkeeping mid-cascade.
        "spill_callback_errors": 0,
        # Store attempts routed around a quarantined (breaker-open) tier.
        "quarantine_skips": 0,
        # Tier operations that raised (TierUnavailable/CorruptedBlob),
        # i.e. the breakers' failure feed.
        "tier_errors": 0,
        # Pages whose contents were lost to unrecoverable corruption —
        # always surfaced as CorruptedBlobError, never silent.
        "data_loss_events": 0,
        # Pages relocated out of a quarantined tier by drain_tier().
        "drained_pages": 0,
    }

#: SwapOutcome rejection reasons that indicate a *failing* tier (feed
#: the circuit breaker) rather than a full/ineligible one (normal
#: capacity control flow).
FAILURE_REASONS = frozenset({"link-error", "device-fault"})

#: Victims gathered per demotion round before batch placement. Bounded so
#: the batch codec's scratch buffers stay cache-resident and a cascade
#: cannot swap in an unbounded amount of data before placing any of it.
DEMOTE_BATCH_PAGES = 8


def _named(
    tiers: Sequence[Union[FarMemoryTier, Tuple[str, FarMemoryTier]]],
) -> List[Tuple[str, FarMemoryTier]]:
    named: List[Tuple[str, FarMemoryTier]] = []
    for index, item in enumerate(tiers):
        if isinstance(item, tuple):
            name, tier = item
        else:
            tier = item
            name = getattr(tier, "tier_name", None) or f"tier{index}"
        named.append((str(name), tier))
    names = [name for name, _ in named]
    if len(set(names)) != len(names):
        raise ConfigError(f"tier names must be unique, got {names}")
    return named


class TierPipeline:
    """An ordered chain of far-memory tiers behaving as one tier."""

    tier_name = "pipeline"

    def __init__(
        self,
        tiers: Sequence[Union[FarMemoryTier, Tuple[str, FarMemoryTier]]],
        admission: Optional[AdmissionPolicy] = None,
        demotion: Optional[DemotionPolicy] = None,
        promotion: Optional[PromotionPolicy] = None,
        registry: Optional[MetricsRegistry] = None,
        spill: Optional[Callable[[int, bytes], None]] = None,
        breaker_config: Optional[BreakerConfig] = None,
        trace_labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """``spill(vaddr, data)``, when provided, receives pages that no
        tier would hold during a demotion cascade (the pipeline analogue
        of zswap's writeback-to-swap-device). ``breaker_config`` tunes
        the per-tier circuit breakers (closed/open/half-open health
        tracking; see :mod:`repro.resilience.breaker`). ``trace_labels``
        (e.g. ``{"shard": "shard-2"}``) are merged into every breaker
        counter, trace instant, and flight-recorder detail this pipeline
        emits, so a fleet of pipelines stays distinguishable on one
        timeline."""
        named = _named(tiers)
        if not named:
            raise ConfigError("pipeline needs at least one tier")
        self.tier_names: List[str] = [name for name, _ in named]
        self.tiers: List[FarMemoryTier] = [tier for _, tier in named]
        self.admission = admission if admission is not None else AlwaysAdmit()
        self.demotion = demotion if demotion is not None else LruDemotion()
        self.promotion = promotion if promotion is not None else PromoteToTop()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.spill = spill
        self.trace_labels: Dict[str, str] = dict(trace_labels or {})
        #: Victims gathered per demotion round; starts at the module
        #: default, shrunk by degraded-mode controllers (brownout) to
        #: bound how much a cascade swaps in before placing anything.
        self.demote_batch_pages = DEMOTE_BATCH_PAGES
        self.pipeline_stats = PipelineStats(registry=self.registry)
        #: Per-tier health breakers; an OPEN breaker quarantines its
        #: tier (stores route around it, cool-down ticks per skipped
        #: operation, then a half-open probe re-tests it).
        self.breakers: List[CircuitBreaker] = [
            CircuitBreaker(
                name,
                config=breaker_config,
                on_transition=self._on_breaker_transition,
                on_probe=self._on_breaker_probe,
            )
            for name in self.tier_names
        ]
        #: vaddr -> index of the tier holding it.
        self._where: Dict[int, int] = {}
        #: Per-tier LRU: oldest store first (the demotion victim order).
        self._lru: List["OrderedDict[int, Page]"] = [
            OrderedDict() for _ in named
        ]
        #: Keyed-API bookkeeping: key -> Page.
        self._keyed: Dict[int, Page] = {}
        #: vaddrs lost to unrecoverable corruption: a later access gets
        #: an explicit CorruptedBlobError instead of a lookup miss.
        self._poisoned: Set[int] = set()
        #: End-to-end latency quantiles per op class (simulated ns),
        #: recorded only under tracing; cached for the hot path.
        self._lat = {
            op: self.registry.quantile(
                "op_latency_ns", op=op, tier="pipeline"
            )
            for op in ("store", "load", "prefetch", "demote")
        }

    def _on_breaker_transition(
        self, breaker: CircuitBreaker, old: BreakerState, new: BreakerState
    ) -> None:
        self.registry.counter(
            "tier_breaker.transitions",
            tier=breaker.name, to=new.value, **self.trace_labels,
        ).inc()
        if _trace.tracing_enabled():
            args = {"tier": breaker.name, "from": old.value,
                    "to": new.value,
                    "error_rate": round(breaker.error_rate(), 4)}
            args.update(self.trace_labels)
            _trace.instant("tier_breaker", TRACK_TIER, args=args)
        if new is BreakerState.OPEN:
            # Black-box dump: the last thing an operator has when a tier
            # goes dark is whatever led up to the breaker opening.
            detail = {
                "tier": breaker.name,
                "from": old.value,
                "error_rate": round(breaker.error_rate(), 4),
            }
            detail.update(self.trace_labels)
            _flightrec.trigger(_flightrec.REASON_BREAKER_OPEN, detail)

    def _on_breaker_probe(self, breaker: CircuitBreaker, ok: bool) -> None:
        self.registry.counter(
            "tier_breaker.probe_results",
            tier=breaker.name,
            result="success" if ok else "failure",
            **self.trace_labels,
        ).inc()
        if _trace.tracing_enabled():
            args = {"tier": breaker.name,
                    "result": "success" if ok else "failure"}
            args.update(self.trace_labels)
            _trace.instant("tier_breaker_probe", TRACK_TIER, args=args)

    def _record_tier_error(self, index: int) -> None:
        self.breakers[index].record_failure()
        self.pipeline_stats.tier_errors += 1

    # -- construction helpers ----------------------------------------------

    @classmethod
    def build(
        cls,
        cpu_capacity_bytes: int,
        xfm_capacity_bytes: int,
        dfm_capacity_bytes: int,
        registry: Optional[MetricsRegistry] = None,
        **kwargs,
    ) -> "TierPipeline":
        """The canonical 3-tier stack: CPU-zswap -> XFM -> DFM, all
        three homed in one shared registry with ``tier=<name>`` labels.
        """
        from repro.core.backend import XfmBackend
        from repro.dfm.backend import DfmBackend
        from repro.sfm.backend import SfmBackend

        registry = registry if registry is not None else MetricsRegistry()
        tiers = [
            SfmBackend(
                capacity_bytes=cpu_capacity_bytes,
                registry=registry,
                tier="cpu-zswap",
            ),
            XfmBackend(
                capacity_bytes=xfm_capacity_bytes,
                registry=registry,
                tier="xfm",
            ),
            DfmBackend(
                capacity_bytes=dfm_capacity_bytes,
                registry=registry,
                tier="dfm",
            ),
        ]
        return cls(tiers, registry=registry, **kwargs)

    # -- tier lookup --------------------------------------------------------

    def tier_of(self, vaddr: int) -> Optional[str]:
        index = self._where.get(vaddr)
        return None if index is None else self.tier_names[index]

    def tiers_by_name(self) -> Dict[str, FarMemoryTier]:
        return dict(zip(self.tier_names, self.tiers))

    # -- protocol: capacity -------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return sum(tier.capacity_bytes for tier in self.tiers)

    def stored_pages(self) -> int:
        return len(self._where)

    def used_bytes(self) -> int:
        return sum(tier.used_bytes() for tier in self.tiers)

    def effective_bytes_freed(self) -> int:
        return sum(tier.effective_bytes_freed() for tier in self.tiers)

    def contains(self, vaddr: int) -> bool:
        return vaddr in self._where

    # -- protocol: accounting views ----------------------------------------

    @property
    def stats(self) -> SwapStats:
        """Merged ``SwapStats`` across every tier (fresh facade per
        access — a read-only reporting view, not a counter home)."""
        return SwapStats.merged([tier.stats for tier in self.tiers])

    @property
    def ledger(self) -> BandwidthLedger:
        """Merged traffic ledger across every tier (fresh per access)."""
        merged = BandwidthLedger()
        for tier in self.tiers:
            for key, count in tier.ledger.snapshot().items():
                actor, direction = key.rsplit(":", 1)
                merged.record(actor, direction, count)
        return merged

    def metrics_snapshot(self) -> Dict[str, object]:
        """One flat snapshot over the pipeline registry plus any tier
        that keeps a private registry."""
        merged = MetricsRegistry()
        merged.merge(self.registry)
        for tier in self.tiers:
            tier_registry = getattr(tier, "registry", None)
            if tier_registry is not None and tier_registry is not self.registry:
                merged.merge(tier_registry)
        return merged.snapshot()

    # -- store: admission + fall-through ------------------------------------

    def swap_out(self, page: Page) -> SwapOutcome:
        """Place a page at the highest tier that takes it, then let the
        demotion policy cascade cold entries downward."""
        if not _trace.tracing_enabled():
            return self._swap_out_impl(page)
        # The store span roots the causality tree: the tier rejects,
        # demotion rounds, device offloads, and CPU fallbacks this store
        # causes all export as its children.
        handle = _spans.begin(
            "pipeline_store", TRACK_TIER, args={"vaddr": page.vaddr}
        )
        try:
            outcome = self._swap_out_impl(page)
        finally:
            dur_ns = _spans.end(handle)
        if dur_ns <= 0.0 and outcome.accepted:
            # The accepting tier advanced no simulated time (pure
            # device-side work): fall back to its modeled latency.
            index = self._where.get(page.vaddr)
            if index is not None:
                dur_ns = self.tiers[index].swap_latency_s("out") * 1e9
        if dur_ns > 0.0:
            self._lat["store"].observe(dur_ns)
        return outcome

    def _swap_out_impl(self, page: Page) -> SwapOutcome:
        # A fresh store of a vaddr supersedes any earlier poison marker.
        self._poisoned.discard(page.vaddr)
        outcome, index = self._place(page, start=0)
        if outcome.accepted:
            self.pipeline_stats.stores += 1
            self._rebalance()
        else:
            self.pipeline_stats.store_rejects += 1
        checkpoint(self)
        return outcome

    def _place(
        self, page: Page, start: int, skip: Optional[int] = None
    ) -> Tuple[SwapOutcome, int]:
        """Try tiers ``start..N`` in order; bookkeeps the first accept.

        A tier whose breaker refuses the operation (OPEN, cooling down)
        is routed around like a rejection; ``skip`` excludes one tier
        outright (used by :meth:`drain_tier` to keep relocations out of
        the tier being drained).
        """
        outcome = SwapOutcome(accepted=False, reason="all-tiers-rejected")
        trace_on = _trace.tracing_enabled()
        for index in range(start, len(self.tiers)):
            if index == skip:
                continue
            tier = self.tiers[index]
            name = self.tier_names[index]
            if not self.breakers[index].allow():
                self.pipeline_stats.quarantine_skips += 1
                self.pipeline_stats.store_fallthroughs += 1
                if trace_on:
                    _trace.instant(
                        "tier_store", TRACK_TIER,
                        args={"tier": name, "outcome": "quarantined",
                              "vaddr": page.vaddr},
                    )
                continue
            if not self.admission.admit(tier):
                self.pipeline_stats.store_fallthroughs += 1
                if trace_on:
                    _trace.instant(
                        "tier_store", TRACK_TIER,
                        args={"tier": name, "outcome": "admission_denied",
                              "vaddr": page.vaddr},
                    )
                continue
            try:
                tier_outcome = tier.swap_out(page)
            except TierUnavailableError:
                # Treat an outright-unreachable tier as a failing reject
                # and keep falling through.
                self._record_tier_error(index)
                tier_outcome = SwapOutcome(
                    accepted=False, reason="device-fault"
                )
            if tier_outcome.accepted:
                self.breakers[index].record_success()
                self._where[page.vaddr] = index
                self._lru[index][page.vaddr] = page
                if trace_on:
                    _trace.instant(
                        "tier_store", TRACK_TIER,
                        args={"tier": name, "outcome": "stored",
                              "vaddr": page.vaddr,
                              "compressed_len": tier_outcome.compressed_len},
                    )
                return tier_outcome, index
            if tier_outcome.reason in FAILURE_REASONS:
                self.breakers[index].record_failure()
            self.pipeline_stats.store_fallthroughs += 1
            if trace_on:
                _trace.instant(
                    "tier_store", TRACK_TIER,
                    args={"tier": name,
                          "outcome": f"reject_{tier_outcome.reason}",
                          "vaddr": page.vaddr},
                )
            outcome = tier_outcome
        return (
            SwapOutcome(accepted=False, reason="all-tiers-rejected",
                        cpu_cycles=outcome.cpu_cycles),
            -1,
        )

    # -- load: promotion to DRAM --------------------------------------------

    def _holding_tier(self, page: Page) -> int:
        if page.vaddr in self._poisoned:
            # The page was lost to unrecoverable corruption earlier;
            # surface that explicitly rather than as a lookup miss.
            self._poisoned.discard(page.vaddr)
            raise CorruptedBlobError(
                f"page 0x{page.vaddr:x} was lost to unrecoverable "
                "corruption (poisoned)",
                vaddr=page.vaddr,
            )
        index = self._where.get(page.vaddr)
        if index is None:
            raise SfmError(
                f"page 0x{page.vaddr:x} is not in any pipeline tier"
            )
        return index

    def _forget(self, page: Page, index: int) -> None:
        del self._where[page.vaddr]
        self._lru[index].pop(page.vaddr, None)

    def _fetch(self, page: Page, index: int, demand: bool) -> bytes:
        """Load from tier ``index``; bookkeeping drops the mapping only
        after the tier actually handed the data back. A transient
        :class:`TierUnavailableError` leaves the page in place (the
        call can simply be repeated); an unrecoverable
        :class:`CorruptedBlobError` drops it and counts a data loss —
        never a silent miss."""
        tier = self.tiers[index]
        try:
            data = tier.swap_in(page) if demand else tier.promote(page)
        except TierUnavailableError:
            self._record_tier_error(index)
            raise
        except CorruptedBlobError:
            self._record_tier_error(index)
            self.pipeline_stats.data_loss_events += 1
            self._forget(page, index)
            checkpoint(self)
            raise
        self.breakers[index].record_success()
        self._forget(page, index)
        return data

    def _traced_fetch(
        self, page: Page, index: int, demand: bool, op: str
    ) -> bytes:
        """Span-wrapped :meth:`_fetch` observing the end-to-end latency
        quantile for ``op`` (``load``/``prefetch``)."""
        handle = _spans.begin(
            "pipeline_" + op,
            TRACK_TIER,
            args={"vaddr": page.vaddr, "tier": self.tier_names[index]},
        )
        try:
            data = self._fetch(page, index, demand=demand)
        finally:
            dur_ns = _spans.end(handle)
        if dur_ns <= 0.0:
            dur_ns = self.tiers[index].swap_latency_s("in") * 1e9
        if dur_ns > 0.0:
            self._lat[op].observe(dur_ns)
        return data

    def swap_in(self, page: Page) -> bytes:
        """Demand load: fetch from whichever tier holds the page."""
        index = self._holding_tier(page)
        if _trace.tracing_enabled():
            data = self._traced_fetch(page, index, demand=True, op="load")
        else:
            data = self._fetch(page, index, demand=True)
        self.pipeline_stats.loads += 1
        if _trace.tracing_enabled():
            _trace.instant(
                "tier_load", TRACK_TIER,
                args={"tier": self.tier_names[index],
                      "reason": reasons.DEMAND_FAULT, "vaddr": page.vaddr},
            )
        checkpoint(self)
        return data

    def promote(self, page: Page) -> bytes:
        """Prefetch-style load through the holding tier's offload path."""
        index = self._holding_tier(page)
        if _trace.tracing_enabled():
            data = self._traced_fetch(
                page, index, demand=False, op="prefetch"
            )
        else:
            data = self._fetch(page, index, demand=False)
        self.pipeline_stats.prefetch_loads += 1
        if _trace.tracing_enabled():
            _trace.instant(
                "tier_load", TRACK_TIER,
                args={"tier": self.tier_names[index],
                      "reason": "prefetch", "vaddr": page.vaddr},
            )
        checkpoint(self)
        return data

    def invalidate(self, vaddr: int) -> bool:
        index = self._where.pop(vaddr, None)
        if index is None:
            return False
        self._lru[index].pop(vaddr, None)
        self.tiers[index].invalidate(vaddr)
        self.pipeline_stats.invalidates += 1
        checkpoint(self)
        return True

    # -- demotion / upward promotion ----------------------------------------

    def _rebalance(self) -> int:
        """Apply the demotion policy: while a tier (other than the last)
        is over pressure, sink batches of its LRU victims one-or-more
        tiers down. Victims are gathered up to :data:`DEMOTE_BATCH_PAGES`
        at a time (re-checking the policy between each swap-in, which is
        what frees source-tier space) and placed through the batched
        store path so the receiving tier's codec sees one
        ``compress_batch`` call per round instead of a page at a time."""
        demoted = 0
        for index in range(len(self.tiers) - 1):
            tier = self.tiers[index]
            stop = False
            while (
                not stop
                and self._lru[index]
                and self.demotion.should_demote(tier)
            ):
                victims, poisoned, placed, stop = self._demote_round(
                    index,
                    self.demote_batch_pages,
                    lambda t=tier, i=index: bool(self._lru[i])
                    and self.demotion.should_demote(t),
                )
                demoted += poisoned + placed
                if not victims and not poisoned:
                    break
        return demoted

    def _demote_round(
        self, index: int, limit: int, keep_going
    ) -> Tuple[List[Tuple[int, Page, bytes]], int, int, bool]:
        """One batched demotion round (collect + place) under a
        ``demote_round`` span, observing the round's end-to-end latency.
        Returns ``(victims, poisoned, placed, stop)``."""
        trace_on = _trace.tracing_enabled()
        handle = None
        if trace_on:
            handle = _spans.begin(
                "demote_round",
                TRACK_TIER,
                args={"from": self.tier_names[index]},
            )
        victims, poisoned, stop = self._collect_victims(
            index, limit, keep_going
        )
        placed = 0
        if victims:
            placed, place_stop = self._place_victims(index, victims)
            stop = stop or place_stop
        if handle is not None:
            dur_ns = _spans.end(
                handle,
                extra={
                    "victims": len(victims),
                    "poisoned": poisoned,
                    "placed": placed,
                },
            )
            if victims:
                if dur_ns <= 0.0:
                    below = min(index + 1, len(self.tiers) - 1)
                    dur_ns = (
                        self.tiers[index].swap_latency_s("in")
                        + self.tiers[below].swap_latency_s("out")
                    ) * len(victims) * 1e9
                self._lat["demote"].observe(dur_ns)
        return victims, poisoned, placed, stop

    def _collect_victims(
        self, index: int, limit: int, keep_going
    ) -> Tuple[List[Tuple[int, Page, bytes]], int, bool]:
        """Swap in up to ``limit`` LRU victims out of tier ``index``.

        ``keep_going`` is re-evaluated between victims (after the first,
        whose eligibility the caller already established), so the demotion
        policy sees every intermediate source-tier state exactly as the
        one-page-at-a-time cascade did. Returns ``(victims, poisoned,
        stop)``: the swapped-in ``(vaddr, page, data)`` triples, how many
        victims were lost to (already-poisoned) corruption, and whether
        the cascade must halt after these victims are placed (source tier
        unreachable)."""
        victims: List[Tuple[int, Page, bytes]] = []
        poisoned = 0
        stop = False
        # Poisoned victims consume limit slots too: demote_coldest(count)
        # must never move more than ``count`` pages off the source tier.
        while len(victims) + poisoned < limit:
            if (victims or poisoned) and not keep_going():
                break
            vaddr, page = next(iter(self._lru[index].items()))
            try:
                data = self.tiers[index].swap_in(page)
            except TierUnavailableError:
                # Source tier unreachable right now: leave this victim
                # where it is and stop the cascade for this round.
                self._record_tier_error(index)
                stop = True
                break
            except CorruptedBlobError:
                # The tier detected unrecoverable corruption and poisoned
                # the blob itself; account the loss, mark the vaddr so a
                # later access gets an explicit error, keep cascading.
                self._record_tier_error(index)
                self.pipeline_stats.data_loss_events += 1
                self._forget(page, index)
                self._poisoned.add(vaddr)
                poisoned += 1
                continue
            self.breakers[index].record_success()
            self._forget(page, index)
            victims.append((vaddr, page, data))
        return victims, poisoned, stop

    def _place_victims(
        self, index: int, victims: List[Tuple[int, Page, bytes]]
    ) -> Tuple[int, bool]:
        """Batch-place swapped-in victims into the tiers below ``index``.

        Returns ``(placed, stop)``: pages successfully demoted, and
        whether this tier's cascade must halt (a victim bounced back into
        its source tier or had to be spilled — the signal the scalar
        cascade stopped on)."""
        results = self._place_batch(
            [page for _, page, _ in victims], start=index + 1
        )
        placed = 0
        stop = False
        trace_on = _trace.tracing_enabled()
        for (vaddr, page, data), (outcome, new_index) in zip(
            victims, results
        ):
            if outcome.accepted:
                self.pipeline_stats.demotions += 1
                placed += 1
                if trace_on:
                    _trace.instant(
                        "tier_demote", TRACK_TIER,
                        args={"from": self.tier_names[index],
                              "to": self.tier_names[new_index],
                              "vaddr": vaddr},
                    )
                continue
            # Nothing below would take it: put it back where it was
            # (space was just freed there), else spill to the backing
            # device — and stop cascading from this tier.
            self.pipeline_stats.demotion_failures += 1
            retry, _retry_index = self._place(page, start=index)
            if retry.accepted:
                stop = True
                continue
            if self.spill is not None:
                self._spill_page(vaddr, data)
                stop = True
                continue
            raise SfmError(
                f"page 0x{vaddr:x} rejected by every tier during demotion "
                "and no spill callback is set"
            )
        return placed, stop

    def _place_batch(
        self, pages: List[Page], start: int
    ) -> List[Tuple[SwapOutcome, int]]:
        """Batched :meth:`_place`: route ``pages`` through tiers
        ``start..N``, handing each tier its whole remaining set via
        ``swap_out_batch`` when it implements one.

        Per-page bookkeeping (breaker success/failure, fall-through
        counters, trace events) matches the scalar path. The one
        deliberate difference: the breaker and admission checks are
        consulted once per tier per batch rather than between every
        page — admission decisions within one demotion round share the
        tier state observed at the round's start."""
        results: List[Optional[Tuple[SwapOutcome, int]]] = [None] * len(pages)
        last: List[SwapOutcome] = [
            SwapOutcome(accepted=False, reason="all-tiers-rejected")
            for _ in pages
        ]
        remaining = list(enumerate(pages))
        trace_on = _trace.tracing_enabled()
        for index in range(start, len(self.tiers)):
            if not remaining:
                break
            tier = self.tiers[index]
            name = self.tier_names[index]
            if not self.breakers[index].allow():
                for _, page in remaining:
                    self.pipeline_stats.quarantine_skips += 1
                    self.pipeline_stats.store_fallthroughs += 1
                    if trace_on:
                        _trace.instant(
                            "tier_store", TRACK_TIER,
                            args={"tier": name, "outcome": "quarantined",
                                  "vaddr": page.vaddr},
                        )
                continue
            if not self.admission.admit(tier):
                for _, page in remaining:
                    self.pipeline_stats.store_fallthroughs += 1
                    if trace_on:
                        _trace.instant(
                            "tier_store", TRACK_TIER,
                            args={"tier": name,
                                  "outcome": "admission_denied",
                                  "vaddr": page.vaddr},
                        )
                continue
            page_list = [page for _, page in remaining]
            batch_fn = getattr(tier, "swap_out_batch", None)
            if batch_fn is not None:
                batch_stats.record_site("tier_demote", len(page_list))
                try:
                    outcomes = batch_fn(page_list)
                except TierUnavailableError:
                    self._record_tier_error(index)
                    # Pages the batch had already committed before the
                    # fault are recognisable by their swapped flag.
                    outcomes = [
                        SwapOutcome(accepted=True) if p.swapped
                        else SwapOutcome(
                            accepted=False, reason="device-fault"
                        )
                        for p in page_list
                    ]
            else:
                outcomes = []
                for p in page_list:
                    try:
                        outcomes.append(tier.swap_out(p))
                    except TierUnavailableError:
                        self._record_tier_error(index)
                        outcomes.append(
                            SwapOutcome(
                                accepted=False, reason="device-fault"
                            )
                        )
            next_remaining = []
            for (pos, page), tier_outcome in zip(remaining, outcomes):
                if tier_outcome.accepted:
                    self.breakers[index].record_success()
                    self._where[page.vaddr] = index
                    self._lru[index][page.vaddr] = page
                    if trace_on:
                        _trace.instant(
                            "tier_store", TRACK_TIER,
                            args={
                                "tier": name, "outcome": "stored",
                                "vaddr": page.vaddr,
                                "compressed_len":
                                    tier_outcome.compressed_len,
                            },
                        )
                    results[pos] = (tier_outcome, index)
                    continue
                if tier_outcome.reason in FAILURE_REASONS:
                    self.breakers[index].record_failure()
                self.pipeline_stats.store_fallthroughs += 1
                if trace_on:
                    _trace.instant(
                        "tier_store", TRACK_TIER,
                        args={"tier": name,
                              "outcome": f"reject_{tier_outcome.reason}",
                              "vaddr": page.vaddr},
                    )
                last[pos] = tier_outcome
                next_remaining.append((pos, page))
            remaining = next_remaining
        for pos, _page in remaining:
            results[pos] = (
                SwapOutcome(accepted=False, reason="all-tiers-rejected",
                            cpu_cycles=last[pos].cpu_cycles),
                -1,
            )
        return results  # type: ignore[return-value]

    def _spill_page(self, vaddr: int, data: bytes) -> None:
        """Hand a page to the spill callback; a callback that raises is
        counted and swallowed so one broken sink cannot desync the
        pipeline's bookkeeping mid-cascade."""
        try:
            self.spill(vaddr, data)
        except Exception:
            self.pipeline_stats.spill_callback_errors += 1
        else:
            self.pipeline_stats.spills += 1

    def demote_coldest(self, count: int = 1, from_tier: int = 0) -> int:
        """Explicitly sink up to ``count`` LRU pages out of ``from_tier``
        (policy-independent; the control-plane analogue of zswap's
        ``shrink``). Returns pages demoted."""
        demoted = 0
        stop = False
        while not stop and demoted < count and self._lru[from_tier]:
            want = min(count - demoted, self.demote_batch_pages)
            victims, poisoned, placed, stop = self._demote_round(
                from_tier, want,
                lambda i=from_tier: bool(self._lru[i]),
            )
            demoted += poisoned + placed
            if not victims and not poisoned:
                break
        checkpoint(self)
        return demoted

    def promote_up(self, vaddr: int) -> Optional[str]:
        """Raise a hot blob toward the promotion policy's target tier
        without bringing it to DRAM; returns the tier it landed in (or
        None when it is not held / already at the target)."""
        index = self._where.get(vaddr)
        if index is None:
            return None
        target = self.promotion.target_tier(index)
        if target >= index:
            self.pipeline_stats.promotions_blocked += 1
            return self.tier_names[index]
        page = self._lru[index][vaddr]
        try:
            self.tiers[index].swap_in(page)
        except TierUnavailableError:
            # Holding tier unreachable: the blob stays put; the
            # promotion is merely blocked, not an error for the caller.
            self._record_tier_error(index)
            self.pipeline_stats.promotions_blocked += 1
            return self.tier_names[index]
        except CorruptedBlobError:
            self._record_tier_error(index)
            self.pipeline_stats.data_loss_events += 1
            self._forget(page, index)
            self._poisoned.add(vaddr)
            checkpoint(self)
            raise
        self.breakers[index].record_success()
        self._forget(page, index)
        outcome, new_index = self._place(page, start=target)
        if not outcome.accepted:
            raise SfmError(
                f"page 0x{vaddr:x} rejected by every tier during promotion"
            )
        if new_index < index:
            self.pipeline_stats.promotions += 1
            if _trace.tracing_enabled():
                _trace.instant(
                    "tier_promote", TRACK_TIER,
                    args={"from": self.tier_names[index],
                          "to": self.tier_names[new_index], "vaddr": vaddr},
                )
        else:
            self.pipeline_stats.promotions_blocked += 1
        checkpoint(self)
        return self.tier_names[new_index]

    # -- keyed convenience API (zswap-shaped) --------------------------------

    def store(self, key: int, data: bytes) -> bool:
        """Store a page under an integer key (offset-style); re-stores
        drop the stale copy first, like zswap."""
        if len(data) != PAGE_SIZE:
            raise ConfigError(f"store expects a {PAGE_SIZE}-byte page")
        if key in self._keyed:
            if self.invalidate(self._keyed.pop(key).vaddr):
                # Internal drop, not caller-visible; only un-count it
                # when a copy was actually held (the page may have been
                # invalidated through the protocol API already).
                self.pipeline_stats.invalidates -= 1
        page = Page(vaddr=key * PAGE_SIZE, data=data)
        if self.swap_out(page).accepted:
            self._keyed[key] = page
            return True
        return False

    def load(self, key: int) -> Optional[bytes]:
        """Exclusive load by key; None when the pipeline never kept it.

        A transient :class:`TierUnavailableError` keeps the key mapped
        (retry later); a :class:`CorruptedBlobError` drops it — the
        data is gone and the caller was told so explicitly."""
        page = self._keyed.pop(key, None)
        if page is None:
            return None
        try:
            return self.swap_in(page)
        except TierUnavailableError:
            self._keyed[key] = page
            raise

    def promote_key(self, key: int) -> Optional[str]:
        page = self._keyed.get(key)
        return None if page is None else self.promote_up(page.vaddr)

    def tier_of_key(self, key: int) -> Optional[str]:
        page = self._keyed.get(key)
        return None if page is None else self.tier_of(page.vaddr)

    # -- tier health / drain -------------------------------------------------

    def breaker_states(self) -> Dict[str, str]:
        """tier name -> breaker state (``closed``/``open``/``half_open``)."""
        return {b.name: b.state.value for b in self.breakers}

    def health(self) -> Dict[str, object]:
        """One snapshot of per-tier breaker health plus the pipeline's
        resilience counters (for the chaos report / operators)."""
        return {
            "tiers": {b.name: b.snapshot() for b in self.breakers},
            "poisoned_pages": len(self._poisoned),
            "tier_errors": self.pipeline_stats.tier_errors,
            "data_loss_events": self.pipeline_stats.data_loss_events,
            "quarantine_skips": self.pipeline_stats.quarantine_skips,
            "drained_pages": self.pipeline_stats.drained_pages,
            "spill_callback_errors":
                self.pipeline_stats.spill_callback_errors,
        }

    def drain_tier(self, name: str, limit: Optional[int] = None) -> int:
        """Relocate resident pages out of tier ``name`` into the other
        tiers (typically after its breaker opened), up to ``limit``
        pages. Returns pages successfully moved.

        The drain stops early if the tier goes unreachable mid-way
        (pages still marked resident there, retryable); corrupted
        pages are poisoned — later accesses raise
        :class:`CorruptedBlobError` — never lost silently. No breaker
        success is recorded for the drain reads themselves, so a
        half-open probe's verdict stays owned by real traffic."""
        if name not in self.tier_names:
            raise ConfigError(f"unknown tier {name!r}")
        origin = self.tier_names.index(name)
        moved = 0
        trace_on = _trace.tracing_enabled()
        while self._lru[origin] and (limit is None or moved < limit):
            vaddr, page = next(iter(self._lru[origin].items()))
            try:
                data = self.tiers[origin].swap_in(page)
            except TierUnavailableError:
                self._record_tier_error(origin)
                break
            except CorruptedBlobError:
                self._record_tier_error(origin)
                self.pipeline_stats.data_loss_events += 1
                self._forget(page, origin)
                self._poisoned.add(vaddr)
                continue
            self._forget(page, origin)
            outcome, new_index = self._place(page, start=0, skip=origin)
            if outcome.accepted:
                moved += 1
                self.pipeline_stats.drained_pages += 1
                if trace_on:
                    _trace.instant(
                        "tier_drain", TRACK_TIER,
                        args={"from": name,
                              "to": self.tier_names[new_index],
                              "vaddr": vaddr},
                    )
                continue
            # No other tier would hold it: spill if we can, otherwise
            # put it back where it came from (space was just freed).
            if self.spill is not None:
                self._spill_page(vaddr, data)
                continue
            restore, _ = self._place(page, start=origin)
            if not restore.accepted:
                raise SfmError(
                    f"page 0x{vaddr:x} rejected everywhere during drain "
                    f"of tier {name!r} and no spill callback is set"
                )
            break
        checkpoint(self)
        return moved

    # -- maintenance ---------------------------------------------------------

    def compact(self) -> int:
        return sum(tier.compact() for tier in self.tiers)

    def swap_latency_s(self, direction: str) -> float:
        """Latency at the top tier (the common-case placement)."""
        return self.tiers[0].swap_latency_s(direction)
