"""Unit helpers shared across the XFM reproduction.

Everything in this codebase carries its units in the name: ``_b`` (bytes),
``_kib``/``_mib``/``_gib`` (binary sizes), ``_gb`` (decimal gigabytes, used
only by the cost model, mirroring the paper's marketing-unit equations),
``_ns``/``_us``/``_ms``/``_s`` (time), ``_bps``/``_gbps`` (bandwidth),
``_j``/``_kwh`` (energy). These helpers exist so that constants in the
models read like the paper's text.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB
TB = 1000 * GB

NS_PER_US = 1000.0
NS_PER_MS = 1_000_000.0
NS_PER_S = 1_000_000_000.0

SECONDS_PER_MINUTE = 60.0
MINUTES_PER_HOUR = 60.0
HOURS_PER_DAY = 24.0
DAYS_PER_YEAR = 365.0
MINUTES_PER_YEAR = SECONDS_PER_MINUTE * MINUTES_PER_HOUR * HOURS_PER_DAY * DAYS_PER_YEAR / SECONDS_PER_MINUTE
SECONDS_PER_YEAR = SECONDS_PER_MINUTE * MINUTES_PER_HOUR * HOURS_PER_DAY * DAYS_PER_YEAR

JOULES_PER_KWH = 3_600_000.0


def kib(n: float) -> int:
    """``n`` binary kilobytes, in bytes."""
    return int(n * KIB)


def mib(n: float) -> int:
    """``n`` binary megabytes, in bytes."""
    return int(n * MIB)


def gib(n: float) -> int:
    """``n`` binary gigabytes, in bytes."""
    return int(n * GIB)


def ns_to_s(t_ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return t_ns / NS_PER_S


def s_to_ns(t_s: float) -> float:
    """Convert seconds to nanoseconds."""
    return t_s * NS_PER_S


def ms_to_ns(t_ms: float) -> float:
    """Convert milliseconds to nanoseconds."""
    return t_ms * NS_PER_MS


def us_to_ns(t_us: float) -> float:
    """Convert microseconds to nanoseconds."""
    return t_us * NS_PER_US


def bytes_per_ns_to_gbps(rate: float) -> float:
    """Convert bytes/ns to decimal GB/s (they are numerically equal)."""
    return rate


def gbps_to_bytes_per_ns(rate_gbps: float) -> float:
    """Convert decimal GB/s to bytes/ns (numerically equal)."""
    return rate_gbps


def joules_to_kwh(e_j: float) -> float:
    """Convert joules to kilowatt-hours."""
    return e_j / JOULES_PER_KWH


def kwh_to_joules(e_kwh: float) -> float:
    """Convert kilowatt-hours to joules."""
    return e_kwh * JOULES_PER_KWH


def pretty_bytes(n: float) -> str:
    """Human-readable binary size (e.g. ``'4.0 KiB'``, ``'512.0 GiB'``)."""
    magnitude = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(magnitude) < 1024.0 or unit == "TiB":
            return f"{magnitude:.1f} {unit}"
        magnitude /= 1024.0
    raise AssertionError("unreachable")


def pretty_rate(bytes_per_s: float) -> str:
    """Human-readable bandwidth in decimal units (e.g. ``'8.5 GBps'``)."""
    magnitude = float(bytes_per_s)
    for unit in ("Bps", "KBps", "MBps", "GBps"):
        if abs(magnitude) < 1000.0 or unit == "GBps":
            return f"{magnitude:.1f} {unit}"
        magnitude /= 1000.0
    raise AssertionError("unreachable")
