"""CACTI-style DRAM bank area/power model for the XFM modifications.

§5/Fig. 7 add, per subarray: a row-decoder latch (so a random access can
target a non-refreshing subarray) and a single-bit subarray-select latch
isolating local bitlines from the global bitline. The paper's CACTI run on
an 8 Gb DDR4 chip in 22 nm reports ~0.15% area and ~0.002% power overhead;
this model reproduces those numbers from the component geometry and lets
the overhead be recomputed for other configurations (Table 1 devices,
different subarray heights).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.device import DramDeviceConfig
from repro.errors import ConfigError


@dataclass(frozen=True)
class BankModModel:
    """Area/power deltas of the Fig. 7 additions, per bank."""

    device: DramDeviceConfig
    #: DRAM cell area in F^2 (6F^2 commodity design rule).
    cell_area_f2: float = 6.0
    #: Row-decoder latch stage per row-address bit per subarray (latch +
    #: driver sized to fire a subarray-wide wordline predecoder).
    latch_area_f2: float = 800.0
    #: Subarray-select latch + LBL/GBL isolation per local IO group.
    select_area_f2: float = 2500.0
    #: Local IO groups per subarray (column-select granularity).
    io_groups_per_subarray: int = 16
    #: Routing the latched global row address across the subarray stripe.
    wiring_area_f2: float = 5000.0
    #: Peripheral (non-cell) fraction of baseline bank area.
    periphery_fraction: float = 0.35
    #: Latch leakage relative to one cell's refresh+leak power.
    latch_power_ratio: float = 2.6

    def __post_init__(self) -> None:
        if not 0.0 < self.periphery_fraction < 1.0:
            raise ConfigError("periphery_fraction must be in (0, 1)")

    # -- baseline bank geometry --------------------------------------------

    @property
    def cells_per_bank(self) -> int:
        return self.device.rows_per_bank * self.device.row_bits

    def baseline_area_f2(self) -> float:
        """Cell array plus decoder/sense periphery."""
        cell_area = self.cells_per_bank * self.cell_area_f2
        return cell_area / (1.0 - self.periphery_fraction)

    # -- additions ------------------------------------------------------------

    @property
    def row_address_bits(self) -> int:
        return max(1, (self.device.rows_per_bank - 1).bit_length())

    def added_area_f2(self) -> float:
        per_subarray = (
            self.row_address_bits * self.latch_area_f2
            + self.io_groups_per_subarray * self.select_area_f2
            + self.wiring_area_f2
        )
        return per_subarray * self.device.subarrays_per_bank

    def area_overhead(self) -> float:
        """Fractional bank area increase (~0.0015 for the 8 Gb device)."""
        return self.added_area_f2() / self.baseline_area_f2()

    def power_overhead(self) -> float:
        """Fractional power increase from latch leakage (~0.00002).

        Normalized against the whole bank's cell leakage + refresh power;
        latches are static CMOS and only toggle once per refresh window.
        """
        added_latches = self.device.subarrays_per_bank * (
            self.row_address_bits + self.io_groups_per_subarray
        )
        return (
            added_latches * self.latch_power_ratio / self.cells_per_bank
        )
