"""End-to-end swap-operation energy: CPU path vs XFM path (experiment X2).

Combines the DRAM access-energy model with engine energy to price one
page's journey through the SFM: the CPU path moves the cold page and the
blob across the DDR channel and burns CPU cycles; the XFM path stays on
the DIMM (1.17 pJ/b links, §4.1) and rides refresh activations for its
conditional accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.energy import AccessEnergyModel
from repro.sfm.page import PAGE_SIZE


@dataclass(frozen=True)
class SwapEnergyModel:
    """Per-swap-operation energy accounting."""

    access: AccessEnergyModel = field(default_factory=AccessEnergyModel)
    #: CPU core energy per byte compressed (Xeon-class, §3.1 constants).
    cpu_j_per_byte: float = 42.3e-9
    #: NMA engine energy per byte (prototype power / engine rate).
    nma_j_per_byte: float = 0.47e-9
    compression_ratio: float = 3.0

    @property
    def blob_bytes(self) -> int:
        return int(PAGE_SIZE / self.compression_ratio)

    def cpu_swap_out_j(self) -> float:
        """CPU compress: read page over channel, write blob back, + cycles."""
        return (
            self.access.cpu_page_access_j(PAGE_SIZE)
            + self.access.cpu_page_access_j(self.blob_bytes)
            + self.cpu_j_per_byte * PAGE_SIZE
        )

    def xfm_swap_out_j(self, conditional: bool = True) -> float:
        """XFM compress: on-DIMM read + writeback, + engine energy."""
        return (
            self.access.nma_page_access_j(PAGE_SIZE, conditional=conditional)
            + self.access.nma_page_access_j(
                self.blob_bytes, conditional=True
            )
            + self.nma_j_per_byte * PAGE_SIZE
        )

    def cpu_swap_in_j(self) -> float:
        return (
            self.access.cpu_page_access_j(self.blob_bytes)
            + self.access.cpu_page_access_j(PAGE_SIZE)
            + self.cpu_j_per_byte * PAGE_SIZE
        )

    def xfm_swap_in_j(self, conditional: bool = True) -> float:
        return (
            self.access.nma_page_access_j(
                self.blob_bytes, conditional=conditional
            )
            + self.access.nma_page_access_j(PAGE_SIZE, conditional=True)
            + self.nma_j_per_byte * PAGE_SIZE
        )

    def movement_saving(self) -> float:
        """Data-movement energy saved by staying on-DIMM (~69%, §4.3)."""
        return self.access.data_movement_saving()

    def total_saving(self) -> float:
        """Whole-operation energy saving of XFM vs the CPU path."""
        cpu = self.cpu_swap_out_j() + self.cpu_swap_in_j()
        xfm = self.xfm_swap_out_j() + self.xfm_swap_in_j()
        return 1.0 - xfm / cpu
