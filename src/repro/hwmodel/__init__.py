"""Hardware overhead models (system S12, Tables 2–3 and the CACTI study).

The paper's FPGA prototype numbers (Vivado synthesis on the AxDIMM's
UltraScale+ part) and its CACTI study of the DRAM bank modifications are
reproduced here as component-inventory models: the roll-ups regenerate the
published tables, and the per-component breakdowns make the ablations
(e.g. SPM size vs BRAM) computable.
"""

from repro.hwmodel.cacti import BankModModel
from repro.hwmodel.energy import SwapEnergyModel
from repro.hwmodel.fpga import FpgaComponent, FpgaDesign, xfm_fpga_design

__all__ = [
    "BankModModel",
    "FpgaComponent",
    "FpgaDesign",
    "SwapEnergyModel",
    "xfm_fpga_design",
]
