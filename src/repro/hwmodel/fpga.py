"""FPGA resource and power roll-up (Tables 2 and 3).

The paper implements XFM on Samsung's AxDIMM (Xilinx UltraScale+ buffer
FPGA) and reports total resource utilization and power. Synthesis cannot
run here, so the design is modeled as a component inventory whose
published per-block costs sum to the paper's totals: the open-source
Deflate compressor and decompressor dominate LUTs (§8 attributes the
83.3% LUT utilization to the compression logic), the 2 MB SPM maps to
BRAM, and controller/PHY glue takes the remainder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ConfigError

#: UltraScale+ device on the AxDIMM buffer (totals from Table 2).
DEVICE_LUTS = 522720
DEVICE_FFS = 1045440
DEVICE_BRAM = 984
#: URAM blocks (288 Kb each) on the part — 128 blocks = 4.5 MiB, which
#: bounds the SPM sizes the FPGA prototype can host.
DEVICE_URAM = 128


@dataclass(frozen=True)
class FpgaComponent:
    """One block of the XFM design."""

    name: str
    luts: int
    ffs: int
    bram: int
    dynamic_w: float
    static_w: float = 0.0
    #: UltraScale+ URAM blocks (288 Kb each); holds the SPM data array.
    #: Not part of Table 2, which reports LUT/FF/BRAM only.
    uram: int = 0

    def __post_init__(self) -> None:
        if min(self.luts, self.ffs, self.bram) < 0:
            raise ConfigError(f"{self.name}: negative resource count")


@dataclass(frozen=True)
class FpgaDesign:
    """A set of components synthesized onto the device."""

    components: tuple

    def total(self, field: str) -> float:
        return sum(getattr(component, field) for component in self.components)

    def utilization(self) -> Dict[str, Dict[str, float]]:
        """Table 2: used / total / percent per resource class."""
        totals = {"LUTs": DEVICE_LUTS, "FFs": DEVICE_FFS, "BRAM": DEVICE_BRAM}
        used = {
            "LUTs": self.total("luts"),
            "FFs": self.total("ffs"),
            "BRAM": self.total("bram"),
        }
        return {
            resource: {
                "used": used[resource],
                "total": totals[resource],
                "percent": 100.0 * used[resource] / totals[resource],
            }
            for resource in totals
        }

    def power(self) -> Dict[str, float]:
        """Table 3: dynamic/static/total watts and shares."""
        dynamic = self.total("dynamic_w")
        static = self.total("static_w")
        total = dynamic + static
        return {
            "dynamic_w": dynamic,
            "static_w": static,
            "total_w": total,
            "dynamic_pct": 100.0 * dynamic / total if total else 0.0,
            "static_pct": 100.0 * static / total if total else 0.0,
        }

    def uram_used(self) -> int:
        return int(self.total("uram"))

    def uram_feasible(self) -> bool:
        """Whether the SPM's data array fits the device's URAM.

        The prototype's 2 MiB SPM fits (59/128 blocks); the 8 MiB SPM
        that Fig. 12 shows eliminating all fallbacks does *not* — on the
        FPGA it would need external buffering, and in the production
        design it is an argument for an ASIC buffer device.
        """
        return self.uram_used() <= DEVICE_URAM

    def breakdown(self) -> List[Dict[str, float]]:
        return [
            {
                "name": component.name,
                "luts": component.luts,
                "ffs": component.ffs,
                "bram": component.bram,
                "dynamic_w": component.dynamic_w,
            }
            for component in self.components
        ]


def xfm_fpga_design(spm_mib: float = 2.0) -> FpgaDesign:
    """The paper's prototype inventory; totals reproduce Tables 2–3.

    The SPM data array lives in URAM (288 Kb blocks — a 2 MiB SPM needs
    ~59); its request FIFOs and tag stores account for most of the 51
    BRAMs Table 2 reports.
    """
    spm_uram = int(-(-spm_mib * 1024 * 1024 * 8 // (288 * 1024)))
    components = (
        FpgaComponent(
            name="deflate-compressor",
            luts=245000, ffs=48000, bram=2, dynamic_w=3.10,
        ),
        FpgaComponent(
            name="deflate-decompressor",
            luts=158000, ffs=30000, bram=2, dynamic_w=1.80,
        ),
        FpgaComponent(
            name="scratchpad-spm",
            luts=4200, ffs=2100, bram=46, dynamic_w=0.45, uram=spm_uram,
        ),
        FpgaComponent(
            name="xfm-controller",
            luts=18267, ffs=9035, bram=1, dynamic_w=0.25,
        ),
        FpgaComponent(
            name="ddr-interface-phy",
            luts=10000, ffs=5000, bram=0, dynamic_w=0.118,
            static_w=1.306,
        ),
    )
    return FpgaDesign(components=components)
