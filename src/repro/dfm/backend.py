"""DFM backend: uncompressed pages over a serial interconnect.

Implements the same ``swap_out``/``swap_in`` surface as
:class:`~repro.sfm.backend.SfmBackend`, so the AIFM runtime, the zswap
frontend, and the examples can run on either tier unchanged. The contrast
the paper draws falls out of the accounting:

* swap-in latency is one link round trip (fast, no CPU cycles) — DFM's
  strength;
* every page occupies its full 4 KiB in the pool — no compression gain,
  and capacity is statically provisioned (§2.1's "static provisioning of
  DRAM resources");
* every swap crosses the link, paying transfer energy (EQ2.1).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.dfm.interconnect import CXL_LINK, InterconnectModel
from repro.errors import (
    ConfigError,
    DeviceFault,
    SfmError,
    TierUnavailableError,
)
from repro.resilience import faults as _faults
from repro.resilience.retry import retry_with_backoff
from repro.sfm.metrics import BandwidthLedger, SwapStats
from repro.sfm.page import PAGE_SIZE, Page
from repro.telemetry import spans as _spans
from repro.telemetry import trace as _trace
from repro.telemetry.registry import MetricsRegistry
from repro.tiering.protocol import SwapOutcome

#: Trace track for link transfers (dynamic tid, one Perfetto row).
TRACK_DFM = "dfm-link"


class DfmBackend:
    """Far-memory backend over disaggregated, uncompressed DRAM."""

    def __init__(
        self,
        capacity_bytes: int,
        link: InterconnectModel = CXL_LINK,
        registry: Optional[MetricsRegistry] = None,
        ledger: Optional[BandwidthLedger] = None,
        tier: str = "dfm",
    ) -> None:
        if capacity_bytes < PAGE_SIZE:
            raise ConfigError("capacity below one page")
        self.link = link
        self.capacity_bytes = capacity_bytes
        self._pool: Dict[int, bytes] = {}
        # Counters and link accounting all live in the registry (labelled
        # by tier), so they reach MetricsRegistry export like every other
        # backend's — historically these were registry-less attributes
        # that never appeared in metrics.json.
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tier_name = tier
        self.stats = SwapStats(registry=self.registry, labels={"tier": tier})
        self.ledger = ledger if ledger is not None else BandwidthLedger()
        self._link_energy = self.registry.counter(
            "dfm.link_energy_j", tier=tier
        )
        self._link_busy = self.registry.counter("dfm.link_busy_s", tier=tier)
        #: Link-transfer latency quantiles per op class (simulated ns),
        #: recorded only under tracing.
        self._lat = {
            "store": self.registry.quantile(
                "op_latency_ns", op="store", tier=tier
            ),
            "load": self.registry.quantile(
                "op_latency_ns", op="load", tier=tier
            ),
        }

    @property
    def link_energy_j(self) -> float:
        """Joules spent on link transfers (registry-backed)."""
        return self._link_energy.value

    @link_energy_j.setter
    def link_energy_j(self, value: float) -> None:
        self._link_energy.set(value)

    @property
    def link_busy_s(self) -> float:
        """Seconds the link spent moving pages (registry-backed)."""
        return self._link_busy.value

    @link_busy_s.setter
    def link_busy_s(self, value: float) -> None:
        self._link_busy.set(value)

    # -- capacity ------------------------------------------------------------

    @property
    def capacity_pages(self) -> int:
        return self.capacity_bytes // PAGE_SIZE

    def stored_pages(self) -> int:
        return len(self._pool)

    def used_bytes(self) -> int:
        """Every page occupies its full size — no compression gain."""
        return self.stored_pages() * PAGE_SIZE

    def contains(self, vaddr: int) -> bool:
        return vaddr in self._pool

    def effective_bytes_freed(self) -> int:
        """Local bytes released per stored page — exactly one page each;
        unlike SFM there is no compression multiplier."""
        return self.stored_pages() * PAGE_SIZE

    # -- swap paths --------------------------------------------------------------

    def swap_out(self, page: Page) -> SwapOutcome:
        """Move a page to the far pool (uncompressed)."""
        if page.swapped:
            raise SfmError(f"page 0x{page.vaddr:x} already swapped")
        if page.data is None:
            raise SfmError(f"page 0x{page.vaddr:x} has no resident data")
        if self.stored_pages() >= self.capacity_pages:
            self.stats.rejected += 1
            return SwapOutcome(accepted=False, reason="pool-full")
        try:
            self._link_transfer("store")
        except DeviceFault:
            # Retries exhausted: nothing was written, the page stays
            # resident — report a rejection so a pipeline can route the
            # store to another tier instead of crashing.
            self.stats.rejected += 1
            return SwapOutcome(accepted=False, reason="link-error")
        self._pool[page.vaddr] = page.data
        page.swapped = True
        page.data = None
        self.stats.swap_outs += 1
        self.stats.bytes_out_uncompressed += PAGE_SIZE
        self.stats.bytes_out_compressed += PAGE_SIZE  # ratio 1.0
        return SwapOutcome(accepted=True, compressed_len=PAGE_SIZE)

    def swap_in(self, page: Page) -> bytes:
        """Fetch a page back over the link.

        Raises :class:`~repro.errors.TierUnavailableError` when link
        retries are exhausted — the page is *still stored* and the call
        can be repeated once the link recovers.
        """
        if not page.swapped:
            raise SfmError(f"page 0x{page.vaddr:x} is not in far memory")
        if page.vaddr not in self._pool:
            raise SfmError(f"page 0x{page.vaddr:x} missing from far pool")
        try:
            self._link_transfer("load")
        except DeviceFault as exc:
            raise TierUnavailableError(
                f"{self.link.name} link down fetching page "
                f"0x{page.vaddr:x} (retries exhausted)"
            ) from exc
        data = self._pool.pop(page.vaddr)
        page.swapped = False
        page.data = data
        self.stats.swap_ins += 1
        self.stats.bytes_in_uncompressed += PAGE_SIZE
        self.stats.bytes_in_compressed += PAGE_SIZE
        return data

    def promote(self, page: Page) -> bytes:
        """No accelerator on the DFM side; promotion is a demand fetch."""
        return self.swap_in(page)

    def invalidate(self, vaddr: int) -> bool:
        """Drop the far copy without a link transfer (the slot-freed
        path: the far node discards, nothing crosses the wire)."""
        return self._pool.pop(vaddr, None) is not None

    def _link_transfer(self, op: str = "store") -> None:
        """One page crossing the link, with transient-error retry.

        The ``dfm.link_error`` site aborts a transfer; the bounded
        retry re-drives it with simulated-time backoff. Only the
        successful transfer is accounted (an aborted one moved nothing
        usable)."""
        retry_with_backoff(
            lambda: self._attempt_transfer(op), on_retry=self._count_retry
        )

    def _attempt_transfer(self, op: str) -> None:
        if _faults.injection_enabled():
            event = _faults.fire(_faults.DFM_LINK_ERROR)
            if event is not None:
                self.stats.device_faults += 1
                raise DeviceFault(
                    f"transient link error on {self.link.name}"
                )
        self._account_transfer(op)

    def _count_retry(self, attempt: int, exc: BaseException) -> None:
        self.stats.transient_retries += 1

    def _account_transfer(self, op: str = "store") -> None:
        self.ledger.record("dfm_link", "read", PAGE_SIZE)
        self.link_energy_j += self.link.transfer_energy_j(PAGE_SIZE)
        latency_s = self.link.page_swap_latency_s(PAGE_SIZE)
        self.link_busy_s += latency_s
        if _trace.tracing_enabled():
            dur_ns = latency_s * 1e9
            _spans.emit_under(
                "dfm_link_transfer",
                TRACK_DFM,
                _trace.clock_ns(),
                dur_ns,
                args={"op": op, "bytes": PAGE_SIZE},
            )
            self._lat[op].observe(dur_ns)

    # -- latency comparison helpers -------------------------------------------------

    def swap_latency_s(self, direction: str) -> float:
        """One link round trip either way; no CPU (de)compression."""
        if direction not in ("in", "out"):
            raise ConfigError(f"direction must be in/out, got {direction}")
        return self.link.page_swap_latency_s(PAGE_SIZE)

    def compact(self) -> int:
        """No compressed pool, nothing to compact."""
        return 0
