"""DFM backend: uncompressed pages over a serial interconnect.

Implements the same ``swap_out``/``swap_in`` surface as
:class:`~repro.sfm.backend.SfmBackend`, so the AIFM runtime, the zswap
frontend, and the examples can run on either tier unchanged. The contrast
the paper draws falls out of the accounting:

* swap-in latency is one link round trip (fast, no CPU cycles) — DFM's
  strength;
* every page occupies its full 4 KiB in the pool — no compression gain,
  and capacity is statically provisioned (§2.1's "static provisioning of
  DRAM resources");
* every swap crosses the link, paying transfer energy (EQ2.1).
"""

from __future__ import annotations

from typing import Dict

from repro.dfm.interconnect import CXL_LINK, InterconnectModel
from repro.errors import ConfigError, SfmError
from repro.sfm.backend import SwapOutcome
from repro.sfm.metrics import BandwidthLedger, SwapStats
from repro.sfm.page import PAGE_SIZE, Page


class DfmBackend:
    """Far-memory backend over disaggregated, uncompressed DRAM."""

    def __init__(
        self,
        capacity_bytes: int,
        link: InterconnectModel = CXL_LINK,
    ) -> None:
        if capacity_bytes < PAGE_SIZE:
            raise ConfigError("capacity below one page")
        self.link = link
        self.capacity_bytes = capacity_bytes
        self._pool: Dict[int, bytes] = {}
        self.stats = SwapStats()
        self.ledger = BandwidthLedger()
        self.link_energy_j = 0.0
        self.link_busy_s = 0.0

    # -- capacity ------------------------------------------------------------

    @property
    def capacity_pages(self) -> int:
        return self.capacity_bytes // PAGE_SIZE

    def stored_pages(self) -> int:
        return len(self._pool)

    def contains(self, vaddr: int) -> bool:
        return vaddr in self._pool

    def effective_bytes_freed(self) -> int:
        """Local bytes released per stored page — exactly one page each;
        unlike SFM there is no compression multiplier."""
        return self.stored_pages() * PAGE_SIZE

    # -- swap paths --------------------------------------------------------------

    def swap_out(self, page: Page) -> SwapOutcome:
        """Move a page to the far pool (uncompressed)."""
        if page.swapped:
            raise SfmError(f"page 0x{page.vaddr:x} already swapped")
        if page.data is None:
            raise SfmError(f"page 0x{page.vaddr:x} has no resident data")
        if self.stored_pages() >= self.capacity_pages:
            self.stats.rejected += 1
            return SwapOutcome(accepted=False, reason="pool-full")
        self._pool[page.vaddr] = page.data
        self._account_transfer()
        page.swapped = True
        page.data = None
        self.stats.swap_outs += 1
        self.stats.bytes_out_uncompressed += PAGE_SIZE
        self.stats.bytes_out_compressed += PAGE_SIZE  # ratio 1.0
        return SwapOutcome(accepted=True, compressed_len=PAGE_SIZE)

    def swap_in(self, page: Page) -> bytes:
        """Fetch a page back over the link."""
        if not page.swapped:
            raise SfmError(f"page 0x{page.vaddr:x} is not in far memory")
        try:
            data = self._pool.pop(page.vaddr)
        except KeyError:
            raise SfmError(
                f"page 0x{page.vaddr:x} missing from far pool"
            ) from None
        self._account_transfer()
        page.swapped = False
        page.data = data
        self.stats.swap_ins += 1
        self.stats.bytes_in_uncompressed += PAGE_SIZE
        self.stats.bytes_in_compressed += PAGE_SIZE
        return data

    def _account_transfer(self) -> None:
        self.ledger.record("dfm_link", "read", PAGE_SIZE)
        self.link_energy_j += self.link.transfer_energy_j(PAGE_SIZE)
        self.link_busy_s += self.link.page_swap_latency_s(PAGE_SIZE)

    # -- latency comparison helpers -------------------------------------------------

    def swap_latency_s(self, direction: str) -> float:
        """One link round trip either way; no CPU (de)compression."""
        if direction not in ("in", "out"):
            raise ValueError(f"direction must be in/out, got {direction}")
        return self.link.page_swap_latency_s(PAGE_SIZE)

    def compact(self) -> int:
        """No compressed pool, nothing to compact."""
        return 0
