"""Far-memory interconnect models.

DFM implementations reach their memory over PCIe, CXL, or the datacenter
network (§1, §2.1). Each preset carries the round-trip access latency,
usable bandwidth, and transfer energy; the PCIe energy is the paper's own
88 pJ/B (EQ2.1's 2.44e-8 kWh/GB).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.resilience import faults as _faults

#: Latency-spike multiplier when the fault spec does not set one.
DEFAULT_SPIKE_FACTOR = 10.0


@dataclass(frozen=True)
class InterconnectModel:
    """One serial link between the CPU and the far memory pool."""

    name: str
    #: One-way small-access latency added over local DRAM.
    access_latency_ns: float
    #: Usable (post-protocol) bandwidth.
    bandwidth_gbps: float
    #: Transfer energy per byte moved.
    pj_per_byte: float

    def __post_init__(self) -> None:
        if self.access_latency_ns < 0 or self.bandwidth_gbps <= 0:
            raise ConfigError(f"{self.name}: bad link parameters")

    def transfer_time_ns(self, num_bytes: int) -> float:
        """Latency + serialization for one transfer.

        The ``dfm.latency_spike`` injection site multiplies the time by
        the fault spec's ``magnitude`` (default
        :data:`DEFAULT_SPIKE_FACTOR`) — a congested or retraining link,
        degraded service rather than failure.
        """
        time_ns = self.access_latency_ns + num_bytes / self.bandwidth_gbps
        if _faults.injection_enabled():
            event = _faults.fire(_faults.DFM_LATENCY_SPIKE)
            if event is not None:
                factor = event.spec.magnitude or DEFAULT_SPIKE_FACTOR
                time_ns *= factor
        return time_ns

    def transfer_energy_j(self, num_bytes: int) -> float:
        return num_bytes * self.pj_per_byte * 1e-12

    def page_swap_latency_s(self, page_bytes: int = 4096) -> float:
        return self.transfer_time_ns(page_bytes) / 1e9


#: CXL.mem attached DRAM: ~2-3x local DRAM latency (Pond-class, §2.1).
CXL_LINK = InterconnectModel(
    name="cxl", access_latency_ns=350.0, bandwidth_gbps=32.0, pj_per_byte=60.0
)

#: PCIe 4.0 x8 attached memory; 88 pJ/B from the paper's cost model.
PCIE4_X8 = InterconnectModel(
    name="pcie4x8", access_latency_ns=900.0, bandwidth_gbps=14.0, pj_per_byte=88.0
)

#: One-sided RDMA to a remote host (Infiniswap/AIFM-class).
RDMA_LINK = InterconnectModel(
    name="rdma", access_latency_ns=3000.0, bandwidth_gbps=10.0, pj_per_byte=150.0
)
