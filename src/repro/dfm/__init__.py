"""Disaggregated far memory (DFM): the paper's §3 comparator, functional.

The cost model (EQ2/EQ4) prices DFM; this package makes it a runnable
baseline with the same swap surface as the SFM backends: pages move
*uncompressed* over a serial interconnect (CXL / PCIe / RDMA presets with
the paper's 88 pJ/B PCIe energy), so swap-ins are fast and CPU-free but
capacity is what you bought — no compression gain, no elasticity.
"""

from repro.dfm.backend import DfmBackend
from repro.dfm.interconnect import (
    CXL_LINK,
    PCIE4_X8,
    RDMA_LINK,
    InterconnectModel,
)

__all__ = [
    "CXL_LINK",
    "DfmBackend",
    "InterconnectModel",
    "PCIE4_X8",
    "RDMA_LINK",
]
