"""Command-line entry point: regenerate the paper's figures and tables.

Usage::

    python -m repro list                 # enumerate experiments
    python -m repro table1 table2 fig3   # run specific ones
    python -m repro all                  # everything (a few minutes)

Each experiment prints the same rendered rows/series its benchmark emits;
the benchmarks add timing and shape assertions on top of these.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List


def _fig1() -> str:
    from repro.analysis.figures import (
        fig1_bandwidth_series,
        max_supported_sfm_gb,
    )
    from repro.analysis.report import format_table

    points = fig1_bandwidth_series()
    table = format_table(
        ["ranks", "SFM GB", "CPU-SFM GBps", "chan util %", "XFM util %"],
        [
            [
                p.num_ranks,
                p.sfm_capacity_gb,
                round(p.cpu_sfm_channel_gbps, 1),
                round(100 * p.cpu_utilization, 1),
                round(100 * p.xfm_utilization, 1),
            ]
            for p in points
        ],
        title="Fig. 1 — SFM bandwidth vs ranks (100% promotion)",
    )
    return table + (
        f"\nmax SFM on the refresh side channel @16 ranks: "
        f"{max_supported_sfm_gb(16):.0f} GB"
    )


def _fig3() -> str:
    from repro.analysis.report import format_table
    from repro.costmodel import CostParams, fig3_series
    from repro.costmodel.breakeven import sfm_vs_dfm_cost_breakeven

    series = fig3_series(metric="cost")
    years = series["dfm-dram"].years
    table = format_table(
        ["year"] + list(series),
        [
            [year] + [round(series[k].normalized[i], 3) for k in series]
            for i, year in enumerate(years)
        ],
        title="Fig. 3 (cost) — normalized to DFM (DRAM)",
    )
    breakeven = sfm_vs_dfm_cost_breakeven(CostParams(), 1.0)
    return table + f"\nSFM@100% cost break-even: {breakeven:.1f} years (paper: 8.5)"


def _fig8() -> str:
    from repro.analysis.figures import fig8_ratios
    from repro.analysis.report import format_table

    reports = fig8_ratios(pages_per_corpus=4)
    return format_table(
        ["corpus", "1-DIMM", "2-DIMM", "4-DIMM", "savings loss@4 %"],
        [
            [
                r.corpus,
                round(r.stored_ratio[1], 2),
                round(r.stored_ratio[2], 2),
                round(r.stored_ratio[4], 2),
                round(100 * r.savings_reduction_vs_inorder(4), 1),
            ]
            for r in reports
        ],
        title="Fig. 8 — multi-channel compression ratios",
    )


def _fig11() -> str:
    from repro.analysis.figures import fig11_interference
    from repro.analysis.report import format_table

    results = fig11_interference()["default-mix"]
    return format_table(
        ["config", "SPEC mean deg %", "SPEC max deg %", "SFM deg %"],
        [
            [
                mode.value,
                round(result.spec_mean_degradation_pct, 2),
                round(result.spec_max_degradation_pct, 2),
                round(result.sfm_degradation_pct, 2),
            ]
            for mode, result in results.items()
        ],
        title="Fig. 11 — co-run interference (default mix)",
    )


def _fig12() -> str:
    from repro.analysis.figures import fig12_fallbacks
    from repro.analysis.report import format_table

    grid = fig12_fallbacks(sim_time_s=0.05)
    rows = []
    for promo, reports in grid.items():
        for report in reports:
            rows.append(
                [
                    f"{int(promo * 100)}%",
                    report.config.spm_bytes >> 20,
                    report.config.accesses_per_ref,
                    round(100 * report.fallback_fraction, 2),
                    round(100 * report.random_fraction, 1),
                ]
            )
    return format_table(
        ["promotion", "SPM MiB", "acc/REF", "fallback %", "random %"],
        rows,
        title="Fig. 12 — CPU fallbacks",
    )


def _table1() -> str:
    from repro.analysis.report import format_table
    from repro.analysis.tables import TABLE1_HEADERS, table1_rows

    return format_table(TABLE1_HEADERS, table1_rows(), title="Table 1")


def _table2() -> str:
    from repro.analysis.report import format_table
    from repro.analysis.tables import TABLE2_HEADERS, table2_rows

    return format_table(TABLE2_HEADERS, table2_rows(), title="Table 2")


def _table3() -> str:
    from repro.analysis.report import format_table
    from repro.analysis.tables import TABLE3_HEADERS, table3_rows

    return format_table(TABLE3_HEADERS, table3_rows(), title="Table 3")


def _budget() -> str:
    from repro.analysis.figures import refresh_budget_summary

    summary = refresh_budget_summary()
    return "\n".join(
        f"{key:28s}: {value:.4g}" for key, value in summary.items()
    )


EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "fig1": _fig1,
    "fig3": _fig3,
    "fig8": _fig8,
    "fig11": _fig11,
    "fig12": _fig12,
    "table1": _table1,
    "table2": _table2,
    "table3": _table3,
    "budget": _budget,
}

_DESCRIPTIONS = {
    "fig1": "SFM bandwidth vs rank count; XFM side-channel headroom",
    "fig3": "cost of SFM vs DFM over years (EQ1-EQ3)",
    "fig8": "multi-channel compression ratios on 16 corpora",
    "fig11": "SPEC x SFM co-run interference, three configs",
    "fig12": "CPU fallback rate vs SPM size x access budget",
    "table1": "DDR5 device configuration + conditional access capacity",
    "table2": "FPGA resource utilization",
    "table3": "FPGA power breakdown",
    "budget": "refresh side-channel budget arithmetic (Sec. 4.3)",
}


def _cmd_replay(targets: List[str], args) -> int:
    """``python -m repro replay <scenario|--trace-file>``: replay a swap
    trace against a backend config. Exit 0 clean, 1 on digest mismatches
    or missing pages, 2 on usage errors."""
    from pathlib import Path

    from repro.errors import ScenarioError
    from repro.scenarios.format import ScenarioTrace
    from repro.scenarios.replayer import TraceReplayer, format_report
    from repro.scenarios.zoo import SCENARIOS, load_scenario
    from repro.telemetry.session import TelemetrySession
    from repro.tiering.factory import TIER_KINDS, make_tier
    from repro.validation.hooks import validation

    if args.backend not in TIER_KINDS:
        print(
            f"unknown backend {args.backend!r} "
            f"(have: {', '.join(TIER_KINDS)})",
            file=sys.stderr,
        )
        return 2
    try:
        if args.trace_file is not None:
            trace = ScenarioTrace.load(args.trace_file)
        else:
            if len(targets) != 1 or targets[0] not in SCENARIOS:
                print(
                    "replay needs one scenario name "
                    f"(have: {', '.join(sorted(SCENARIOS))}) "
                    "or --trace-file PATH",
                    file=sys.stderr,
                )
                return 2
            trace = load_scenario(targets[0])
    except ScenarioError as exc:
        print(f"unusable trace: {exc}", file=sys.stderr)
        return 2
    out_dir = Path(args.out) if args.out else None
    session = TelemetrySession(out_dir=out_dir)
    with session, validation(args.validation):
        target = make_tier(args.backend, registry=session.registry)
        report = TraceReplayer(
            trace,
            target,
            backend_name=args.backend,
            fault_profile=args.fault_profile,
            fault_seed=args.fault_seed,
            session=session,
        ).run()
    print(format_report(report))
    if out_dir is not None:
        print(f"  wrote {out_dir / 'trace.json'}")
        print(f"  wrote {out_dir / 'metrics.json'}")
    return 0 if report.clean else 1


def _default_objectives(target) -> List[object]:
    """Deterministic SLO set derived from the target's modeled latencies.

    Pipeline targets get: stores within 2x the top tier's modeled
    swap-out latency (cascades blow this budget — that is the point),
    loads within 1.5x the mid tier's swap-in latency (a DFM round trip
    violates it), plus a 99.9% availability objective over the
    pipeline's error/loss counters. Flat targets get 2x their own
    modeled latency per direction.
    """
    from repro.telemetry.slo import AvailabilityObjective, LatencyObjective

    tiers = getattr(target, "tiers", None)
    if tiers is not None:
        store_budget_ns = 2.0 * tiers[0].swap_latency_s("out") * 1e9
        mid = tiers[1] if len(tiers) > 1 else tiers[0]
        load_budget_ns = 1.5 * mid.swap_latency_s("in") * 1e9
        return [
            LatencyObjective(
                "store-latency",
                op="store",
                tier="pipeline",
                threshold_ns=store_budget_ns,
                target=0.95,
            ),
            LatencyObjective(
                "load-latency",
                op="load",
                tier="pipeline",
                threshold_ns=load_budget_ns,
                target=0.95,
            ),
            AvailabilityObjective(
                "availability",
                target=0.999,
                bad_metrics=(
                    "tier_pipeline.tier_errors",
                    "tier_pipeline.data_loss_events",
                ),
                total_metrics=(
                    "tier_pipeline.stores",
                    "tier_pipeline.loads",
                    "tier_pipeline.prefetch_loads",
                ),
            ),
        ]
    tier_name = getattr(target, "tier_name", "?")
    return [
        LatencyObjective(
            "store-latency",
            op="store",
            tier=tier_name,
            threshold_ns=2.0 * target.swap_latency_s("out") * 1e9,
            target=0.95,
        ),
        LatencyObjective(
            "load-latency",
            op="load",
            tier=tier_name,
            threshold_ns=2.0 * target.swap_latency_s("in") * 1e9,
            target=0.95,
        ),
    ]


def _cmd_slo(targets: List[str], args) -> int:
    """``python -m repro slo <scenario>``: replay a zoo scenario under
    tracing and evaluate latency/availability SLOs over simulated-time
    windows. Exit 0 unless ``--fail-on-violation`` is set and an
    objective missed its target."""
    import json
    from pathlib import Path

    from repro.analysis.report import format_latency_table
    from repro.errors import ScenarioError
    from repro.scenarios.replayer import TraceReplayer
    from repro.scenarios.zoo import SCENARIOS, load_scenario
    from repro.sfm.page import PAGE_SIZE
    from repro.telemetry.session import TelemetrySession
    from repro.telemetry.slo import SloEngine
    from repro.tiering.factory import TIER_KINDS, make_tier

    if args.backend not in TIER_KINDS:
        print(
            f"unknown backend {args.backend!r} "
            f"(have: {', '.join(TIER_KINDS)})",
            file=sys.stderr,
        )
        return 2
    if not targets and args.scenario:
        targets = [args.scenario]
    if len(targets) != 1 or targets[0] not in SCENARIOS:
        print(
            "slo needs one scenario name "
            f"(have: {', '.join(sorted(SCENARIOS))})",
            file=sys.stderr,
        )
        return 2
    try:
        trace = load_scenario(targets[0])
    except ScenarioError as exc:
        print(f"unusable trace: {exc}", file=sys.stderr)
        return 2
    out_dir = Path(args.out) if args.out else None
    session = TelemetrySession(out_dir=out_dir)
    with session:
        # The goldens' 40-page pipeline split: small upper tiers force
        # the demotion cascades and cross-tier fetches that make the
        # latency distributions (and the burn report) non-trivial.
        target = make_tier(
            args.backend,
            capacity_bytes=40 * PAGE_SIZE,
            registry=session.registry,
        )
        engine = SloEngine(
            session.registry,
            _default_objectives(target),
            window_ns=args.window_ns,
        )
        report = TraceReplayer(
            trace,
            target,
            backend_name=args.backend,
            fault_profile=args.fault_profile,
            fault_seed=args.fault_seed,
            session=session,
            slo_engine=engine,
        ).run()
    print(f"slo: scenario={report.scenario} backend={report.backend}")
    print(
        format_latency_table(
            report.latency_percentiles,
            title="latency percentiles (op-class x tier)",
        )
    )
    print()
    summary = engine.summary()
    print(f"slo summary ({len(engine.windows)} window results, "
          f"window={args.window_ns:.0f} ns):")
    all_met = True
    for name, row in summary.items():
        verdict = "met" if row["met"] else "VIOLATED"
        all_met = all_met and bool(row["met"])
        print(
            f"  {name:16s}: target={row['target']:.3f} "
            f"attainment={row['attainment']:.4f} "
            f"worst_burn={row['worst_burn']:.2f} "
            f"violated_windows={row['windows_violated']}/{row['windows']} "
            f"[{verdict}]"
        )
    if out_dir is not None:
        doc = {
            "scenario": report.scenario,
            "backend": report.backend,
            "latency_percentiles": report.latency_percentiles,
            "slo": engine.as_dict(),
        }
        path = out_dir / "slo_report.json"
        path.write_text(
            json.dumps(doc, indent=2, sort_keys=True), encoding="utf-8"
        )
        print(f"  wrote {path}")
        print(f"  wrote {out_dir / 'trace.json'}")
        print(f"  wrote {out_dir / 'metrics.json'}")
    if args.fail_on_violation and not all_met:
        return 1
    return 0


def _cmd_record(targets: List[str], args) -> int:
    """``python -m repro record <scenario>``: re-record a zoo scenario
    from a live pipeline run and save the trace artifact."""
    from pathlib import Path

    from repro.scenarios.format import trace_fingerprint
    from repro.scenarios.zoo import (
        ARTIFACT_SUFFIX,
        SCENARIOS,
        build_scenario,
    )

    if len(targets) != 1 or targets[0] not in SCENARIOS:
        print(
            "record needs one scenario name "
            f"(have: {', '.join(sorted(SCENARIOS))})",
            file=sys.stderr,
        )
        return 2
    name = targets[0]
    trace = build_scenario(name, seed=args.seed)
    if args.trace_file is not None:
        path = Path(args.trace_file)
    else:
        out_base = Path(args.out) if args.out else Path("trace-out")
        path = out_base / (name + ARTIFACT_SUFFIX)
    trace.save(path)
    print(f"recorded scenario: {name}")
    print(f"  events      : {len(trace)}")
    print(f"  unique pages: {len(trace.pages)}")
    print(f"  fingerprint : {trace_fingerprint(trace)}")
    print(f"  wrote {path}")
    return 0


def _cmd_ingest(targets: List[str], args) -> int:
    """``python -m repro ingest <dir>``: page-ify a file tree into a
    digest-verified per-domain corpus."""
    from pathlib import Path

    from repro.errors import ConfigError
    from repro.scenarios.ingest import IngestConfig, ingest_tree

    if len(targets) != 1:
        print("ingest needs exactly one root directory", file=sys.stderr)
        return 2
    out_dir = Path(args.out) if args.out else Path("corpus-out")
    try:
        manifest = ingest_tree(
            targets[0],
            out_dir,
            IngestConfig(max_file_bytes=args.max_file_kib * 1024),
        )
    except ConfigError as exc:
        print(f"ingest failed: {exc}", file=sys.stderr)
        return 2
    print(f"ingested corpus: {manifest.root_label}")
    for domain, pages in manifest.summary().items():
        print(f"  {domain:10s}: {pages} pages")
    print(f"  total      : {manifest.total_pages()} pages "
          f"({manifest.page_size} B each)")
    print(f"  wrote {out_dir / 'manifest.json'}")
    return 0


def _cmd_codectune(targets: List[str], args) -> int:
    """``python -m repro codectune [<dir>]``: train per-domain static
    Huffman tables (auto-tuned matcher parameters) and persist them.

    ``<dir>`` is either an already-ingested corpus directory (containing
    ``manifest.json``) or a raw file tree, which is ingested into a
    temporary directory first. Defaults to this repository's own
    ``src/`` tree — the first corpus the paper-style static tables are
    trained on."""
    import tempfile
    from pathlib import Path

    from repro.compression.static_tables import (
        DEFAULT_TABLES_PATH,
        StaticTableRegistry,
    )
    from repro.compression.tuning import make_tuner
    from repro.errors import ConfigError, ManifestError
    from repro.scenarios.ingest import (
        MANIFEST_NAME,
        CorpusManifest,
        IngestConfig,
        ingest_tree,
    )

    if len(targets) > 1:
        print("codectune takes at most one corpus directory", file=sys.stderr)
        return 2
    root = Path(targets[0]) if targets else Path(__file__).resolve().parents[1]
    out_path = Path(args.out) if args.out else DEFAULT_TABLES_PATH
    choices: dict = {}
    registry = StaticTableRegistry()
    try:
        if (root / MANIFEST_NAME).exists():
            manifest = CorpusManifest.load(root)
        else:
            with tempfile.TemporaryDirectory() as tmp:
                manifest = ingest_tree(
                    root,
                    tmp,
                    IngestConfig(max_file_bytes=args.max_file_kib * 1024),
                )
                registry.train_from_manifest(
                    manifest, tuner=make_tuner(record=choices)
                )
                manifest = None
        if manifest is not None:
            registry.train_from_manifest(
                manifest, tuner=make_tuner(record=choices)
            )
    except (ConfigError, ManifestError) as exc:
        print(f"codectune failed: {exc}", file=sys.stderr)
        return 2
    if not len(registry):
        print(f"no corpus domains found under {root}", file=sys.stderr)
        return 2
    registry.save(out_path)
    print(f"trained static tables: {len(registry)} domain(s) from {root}")
    for domain in registry.domains():
        entry = registry.get(domain)
        choice = choices[domain]
        print(
            f"  {domain:10s}: {entry.num_pages:5d} pages  "
            f"window={entry.window_size:<5d} chain={entry.max_chain:<3d} "
            f"lazy={str(entry.lazy):5s} "
            f"sample ratio={choice.ratio:.2f}  "
            f"table_id=0x{entry.tables.table_id:08x}"
        )
    print(f"  wrote {out_path}")
    return 0


def _cmd_fleet(targets: List[str], args) -> int:
    """``python -m repro fleet``: run the deterministic overload campaign
    (steady -> spike -> drain -> recovery) through the sharded frontend.

    Exit 0 on a clean run, 1 when data integrity or an explicit
    expectation fails, 2 on usage errors. ``--expect-shed`` asserts the
    overload contract (the spike sheds, recovery is shed-free, and the
    admitted-request spike p99 stays within 3x the steady p99);
    ``--expect-no-shed`` asserts a steady campaign sheds nothing;
    ``--fail-on-slo-violation`` additionally requires every SLO met.
    """
    from pathlib import Path

    from repro.errors import ConfigError
    from repro.fleet.harness import FleetConfig, format_report, run_fleet

    if targets:
        print("fleet takes no positional arguments", file=sys.stderr)
        return 2
    if args.expect_shed and args.expect_no_shed:
        print("--expect-shed and --expect-no-shed conflict", file=sys.stderr)
        return 2
    scale = args.duration_scale
    try:
        config = FleetConfig(
            seed=args.seed,
            shards=args.fleet_shards,
            steady_rate_rps=args.rate_rps,
            spike_multiplier=args.spike_multiplier,
            steady_ns=60e6 * scale,
            spike_ns=30e6 * scale,
            drain_guard_ns=10e6 * scale,
            recovery_ns=60e6 * scale,
            kill_shard_at_ns=(
                args.kill_shard_at_ms * 1e6
                if args.kill_shard_at_ms is not None
                else None
            ),
        )
    except ConfigError as exc:
        print(f"bad fleet config: {exc}", file=sys.stderr)
        return 2
    out_dir = Path(args.out) if args.out else None
    report = run_fleet(config, out_dir)
    print(format_report(report))
    if out_dir is not None:
        print(f"  wrote {out_dir / 'fleet_report.json'}")
        print(f"  wrote {out_dir / 'trace.json'}")
        print(f"  wrote {out_dir / 'metrics.json'}")
        for name in report["flight_records"]:
            print(f"  wrote {out_dir / name}")
    verdict = report["verdict"]
    ok = verdict["acked_data_lost"] == 0
    ok = ok and verdict["silent_corruptions"] == 0
    if args.expect_shed:
        steady_p99 = report["phases"]["steady"]["latency_ns"]["p99"]
        spike_p99 = report["phases"]["spike"]["latency_ns"]["p99"]
        ok = ok and verdict["spike_shed"] and verdict["recovery_clean"]
        ok = ok and spike_p99 <= 3 * steady_p99
    if args.expect_no_shed:
        total_shed = sum(
            report["phases"][p]["shed"] for p in report["phases"]
        )
        ok = ok and total_shed == 0
    if args.fail_on_slo_violation:
        ok = ok and all(verdict["slo_met"].values())
    return 0 if ok else 1


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate figures/tables of the XFM paper.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["list"],
        help="experiment names, 'list', 'all', 'export <dir>', "
        "'trace <workload>', 'tiers', 'chaos', 'replay <scenario>', "
        "'slo <scenario>', 'record <scenario>', 'ingest <dir>', "
        "'codectune [<dir>]', or 'fleet'",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output directory for 'trace'/'chaos' (default: trace-out)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="campaign seed for 'chaos'"
    )
    parser.add_argument(
        "--ops", type=int, default=400, help="operation count for 'chaos'"
    )
    parser.add_argument(
        "--profile",
        default="transient",
        help="fault profile for 'chaos' (transient|full)",
    )
    parser.add_argument(
        "--validation",
        action="store_true",
        help="run 'chaos'/'replay' with the validation checkers on",
    )
    parser.add_argument(
        "--backend",
        default="pipeline",
        help="replay target config (cpu|xfm|xfm-mc|dfm|pipeline)",
    )
    parser.add_argument(
        "--fault-profile",
        default=None,
        help="replay under a chaos fault profile (transient|full)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="fault-plan seed for --fault-profile",
    )
    parser.add_argument(
        "--trace-file",
        default=None,
        help="replay/record: explicit trace artifact path "
        "(default: the shipped zoo artifact / <out>/<name>.trace.jsonl.gz)",
    )
    parser.add_argument(
        "--max-file-kib",
        type=int,
        default=512,
        help="ingest: skip files larger than this (KiB)",
    )
    parser.add_argument(
        "--scenario",
        default=None,
        help="slo: scenario name (alternative to the positional form)",
    )
    parser.add_argument(
        "--fail-on-violation",
        action="store_true",
        help="slo: exit nonzero when an objective misses its target",
    )
    parser.add_argument(
        "--window-ns",
        type=float,
        default=15000.0,
        help="slo: simulated-time window size in ns",
    )
    parser.add_argument(
        "--fail-on-loss",
        action="store_true",
        help="exit nonzero if the chaos campaign lost or corrupted data",
    )
    parser.add_argument(
        "--fleet-shards",
        type=int,
        default=4,
        help="fleet: number of pipeline shards",
    )
    parser.add_argument(
        "--rate-rps",
        type=float,
        default=35000.0,
        help="fleet: steady-state offered arrival rate (requests/s)",
    )
    parser.add_argument(
        "--spike-multiplier",
        type=float,
        default=5.0,
        help="fleet: arrival-rate multiplier during the spike phase",
    )
    parser.add_argument(
        "--duration-scale",
        type=float,
        default=1.0,
        help="fleet: scale all phase durations (1.0 = 160 ms simulated)",
    )
    parser.add_argument(
        "--kill-shard-at-ms",
        type=float,
        default=None,
        help="fleet: chaos-kill shard-0 at this simulated millisecond",
    )
    parser.add_argument(
        "--expect-shed",
        action="store_true",
        help="fleet: fail unless the spike sheds, recovery is clean, and "
        "admitted spike p99 <= 3x steady p99",
    )
    parser.add_argument(
        "--expect-no-shed",
        action="store_true",
        help="fleet: fail if any request was shed (steady campaigns)",
    )
    parser.add_argument(
        "--fail-on-slo-violation",
        action="store_true",
        help="fleet: exit nonzero when an SLO misses its target",
    )
    args = parser.parse_args(argv)
    names = args.experiments or ["list"]

    if names == ["list"]:
        print("available experiments:")
        for name, description in _DESCRIPTIONS.items():
            print(f"  {name:8s} {description}")
        print("run: python -m repro <name> [<name> ...] | all")
        print("     python -m repro export <dir>   # CSV/JSON figure data")
        print("     python -m repro trace <workload> [--out DIR]"
              "   # Perfetto trace + metrics")
        from repro.telemetry.runner import WORKLOADS

        print(f"     trace workloads: {', '.join(sorted(WORKLOADS))}")
        print("     python -m repro tiers [--out DIR]"
              "   # 3-tier demotion/promotion demo")
        print("     python -m repro chaos [--seed N] [--ops N]"
              " [--profile P] [--out DIR]   # seeded fault campaign")
        from repro.scenarios.zoo import SCENARIOS

        print("     python -m repro replay <scenario> [--backend B]"
              " [--fault-profile P] [--out DIR]   # replay a swap trace")
        print(f"     replay scenarios: {', '.join(sorted(SCENARIOS))}"
              " (or --trace-file PATH)")
        print("     python -m repro slo <scenario> [--backend B]"
              " [--window-ns N] [--out DIR]   # latency/availability SLOs")
        print("     python -m repro record <scenario> [--seed N]"
              " [--out DIR]   # re-record a zoo trace artifact")
        print("     python -m repro ingest <dir> [--out DIR]"
              " [--max-file-kib N]   # page-ify a file tree")
        print("     python -m repro codectune [<dir>] [--out PATH]"
              "   # train+tune static Huffman tables per domain")
        print("     python -m repro fleet [--fleet-shards N] [--rate-rps R]"
              " [--spike-multiplier M] [--kill-shard-at-ms T] [--out DIR]"
              "   # overload campaign")
        return 0
    if names and names[0] == "replay":
        return _cmd_replay(names[1:], args)
    if names and names[0] == "slo":
        return _cmd_slo(names[1:], args)
    if names and names[0] == "record":
        return _cmd_record(names[1:], args)
    if names and names[0] == "ingest":
        return _cmd_ingest(names[1:], args)
    if names and names[0] == "codectune":
        return _cmd_codectune(names[1:], args)
    if names and names[0] == "fleet":
        return _cmd_fleet(names[1:], args)
    if names and names[0] == "chaos":
        from pathlib import Path

        from repro.resilience.chaos import (
            ChaosConfig,
            format_report,
            run_chaos,
        )

        config = ChaosConfig(
            seed=args.seed,
            ops=args.ops,
            profile=args.profile,
            validate=args.validation,
        )
        out_dir = Path(args.out) if args.out else None
        report = run_chaos(config, out_dir)
        print(format_report(report))
        if out_dir is not None:
            print(f"  wrote {out_dir / 'chaos_report.json'}")
            print(f"  wrote {out_dir / 'trace.json'}")
            print(f"  wrote {out_dir / 'metrics.json'}")
        verdict = report["verdict"]
        clean = verdict["clean"] and verdict["all_detections_accounted"]
        if args.fail_on_loss:
            recovery = report["recovery"]
            clean = clean and not recovery["data_loss_events"]
            clean = clean and not recovery["poison_pages"]
        return 0 if clean else 1
    if names and names[0] == "tiers":
        from pathlib import Path

        from repro.analysis.report import format_tier_stats
        from repro.telemetry.runner import run_traced

        out_dir = Path(args.out) if args.out else None
        session, summary = run_traced("tiers", out_dir)
        pipeline = summary.pop("_pipeline", None)
        print("tier pipeline demo: cpu-zswap -> xfm -> dfm")
        for key, value in summary.items():
            print(f"  {key:24s}: {value}")
        if pipeline is not None:
            print()
            print(format_tier_stats(pipeline, title="per-tier counters"))
        if out_dir is not None:
            print(f"  wrote {out_dir / 'trace.json'}")
            print(f"  wrote {out_dir / 'metrics.json'}")
        return 0
    if names and names[0] == "trace":
        from pathlib import Path

        from repro.telemetry.runner import WORKLOADS, run_traced

        targets = names[1:] or ["zswap"]
        unknown = [name for name in targets if name not in WORKLOADS]
        if unknown:
            print(
                f"unknown trace workload(s): {', '.join(unknown)} "
                f"(have: {', '.join(sorted(WORKLOADS))})",
                file=sys.stderr,
            )
            return 2
        out_base = Path(args.out) if args.out else Path("trace-out")
        for name in targets:
            out_dir = out_base / name if len(targets) > 1 else out_base
            session, summary = run_traced(name, out_dir)
            print(f"trace workload: {name}")
            for key, value in summary.items():
                if key.startswith("_"):
                    continue
                print(f"  {key:24s}: {value}")
            print(f"  wrote {out_dir / 'trace.json'}")
            print(f"  wrote {out_dir / 'metrics.json'}")
        return 0
    if names and names[0] == "export":
        from pathlib import Path

        from repro.analysis.export import EXPORTERS

        target = Path(names[1]) if len(names) > 1 else Path("figure-data")
        target.mkdir(parents=True, exist_ok=True)
        for filename, exporter in EXPORTERS.items():
            (target / filename).write_text(exporter(), encoding="utf-8")
            print(f"wrote {target / filename}")
        return 0
    if names == ["all"]:
        names = list(EXPERIMENTS)

    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    for name in names:
        print(EXPERIMENTS[name]())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
