"""Global retry-budget governor: retries never amplify an overload.

The classic failure mode of naive clients is the retry storm: a shed
response triggers a retry, the retry is shed, and offered load grows as
a multiple of the overload that caused the shedding. The governor makes
retries a *scarce resource*: every admitted first-attempt request earns
a fraction of a retry token into one shared balance; a retry spends a
whole token. The algebra bounds retry traffic at ``earn_fraction`` of
admitted traffic no matter how aggressively clients retry — when the
balance is empty the retry is refused outright
(:class:`~repro.errors.RetryBudgetExhausted`, a fast-fail the client
must not retry harder against).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigError, RetryBudgetExhausted
from repro.telemetry.registry import MetricsRegistry


class RetryBudget:
    """Shared earn/spend balance for the whole fleet."""

    def __init__(
        self,
        earn_fraction: float = 0.1,
        initial: float = 8.0,
        cap: float = 64.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if not 0.0 <= earn_fraction <= 1.0:
            raise ConfigError("earn_fraction must be in [0, 1]")
        if cap < 1.0 or initial < 0.0 or initial > cap:
            raise ConfigError("retry budget needs 0 <= initial <= cap, cap >= 1")
        self.earn_fraction = earn_fraction
        self.cap = cap
        self.balance = float(initial)
        self.spent = 0
        self.refused = 0
        self.registry = registry if registry is not None else MetricsRegistry()
        self._spent_counter = self.registry.counter(
            "fleet.retry_budget", event="spent"
        )
        self._refused_counter = self.registry.counter(
            "fleet.retry_budget", event="refused"
        )

    def earn(self) -> None:
        """Credit for one admitted first-attempt request."""
        self.balance = min(self.cap, self.balance + self.earn_fraction)

    def spend(self, retry_after_ns: float = 0.0) -> None:
        """Charge one retry; raises :class:`RetryBudgetExhausted` when
        the balance cannot cover it (the caller must fast-fail)."""
        # Epsilon absorbs float accumulation of fractional earnings
        # (ten 0.1-earns must fund exactly one retry).
        if self.balance >= 1.0 - 1e-9:
            self.balance = max(0.0, self.balance - 1.0)
            self.spent += 1
            self._spent_counter.inc()
            return
        self.refused += 1
        self._refused_counter.inc()
        raise RetryBudgetExhausted(
            f"retry budget exhausted (balance={self.balance:.2f})",
            retry_after_ns=retry_after_ns,
        )

    def snapshot(self) -> dict:
        return {
            "balance": round(self.balance, 4),
            "spent": self.spent,
            "refused": self.refused,
            "earn_fraction": self.earn_fraction,
            "cap": self.cap,
        }
