"""The deterministic fleet campaign behind ``python -m repro fleet``.

One campaign = one :class:`TelemetrySession` (clock rebased to t=0,
tracing on) driving four phases of open-loop traffic through the
sharded frontend::

    steady  -> spike (rate x spike_multiplier) -> drain guard -> recovery

Every request's terminal state is classified by the phase its (latest)
submission landed in; the *drain* guard phase exists so backlog shed in
the instants after the spike ends is not charged against recovery —
the acceptance bar is "spike sheds, recovery is shed-free, admitted
p99 stays bounded".

A shadow dict of every acknowledged store is ground truth: served loads
are byte-compared on the spot and a final sweep proves zero
acknowledged-data loss (including across a chaos shard kill). SLOs are
evaluated in simulated-time windows during the run; the first violated
window per objective triggers a flight-recorder black-box dump
(``flight_slo_burn*.json``). Everything — arrivals, admission, service
order, the report JSON — is a pure function of the config, so repeat
runs are byte-identical.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError, OverloadError, RetryBudgetExhausted
from repro.fleet.admission import TenantQuota
from repro.fleet.brownout import BrownoutConfig
from repro.fleet.frontend import FleetFrontend
from repro.fleet.shard import FleetRequest
from repro.fleet.traffic import (
    TENANT_KEY_STRIDE,
    TrafficPhase,
    generate_arrivals,
    page_for,
)
from repro.sim import CLOCK as _sim_clock
from repro.sim.events import EventScheduler
from repro.telemetry import flightrec as _flightrec
from repro.telemetry.session import TelemetrySession
from repro.telemetry.slo import (
    AvailabilityObjective,
    LatencyObjective,
    SloEngine,
)

PHASES = ("steady", "spike", "drain", "recovery")


@dataclass(frozen=True)
class FleetConfig:
    """One campaign's knobs — all deterministic inputs."""

    seed: int = 0
    shards: int = 4
    tenants: int = 3
    queue_depth: int = 8
    #: Per-request completion deadline. Loose enough that steady-state
    #: Poisson bursts never trip it, tight enough that under overload
    #: deadline shedding — not unbounded queueing — bounds the tail of
    #: what the fleet *does* serve.
    deadline_ns: float = 200_000.0
    steady_rate_rps: float = 35_000.0
    spike_multiplier: float = 5.0
    steady_ns: float = 60e6
    spike_ns: float = 30e6
    drain_guard_ns: float = 10e6
    recovery_ns: float = 60e6
    diurnal_amplitude: float = 0.1
    store_fraction: float = 0.55
    #: Tenant rate quota = fair share * headroom. 4x lets enough of a
    #: 5x spike through admission to saturate the shards, so all three
    #: shed layers fire: rate quotas at the edge, then queue-full and
    #: deadline sheds at the overloaded shards.
    quota_headroom: float = 4.0
    retries: bool = True
    brownout: bool = True
    #: Simulated instant to chaos-kill shard 0 (None = no kill).
    kill_shard_at_ns: Optional[float] = None
    cpu_capacity_bytes: int = 4 * 1024 * 1024
    xfm_capacity_bytes: int = 4 * 1024 * 1024
    dfm_capacity_bytes: int = 64 * 1024 * 1024
    slo_window_ns: float = 5e6
    slo_store_ns: float = 400_000.0
    slo_load_ns: float = 250_000.0
    slo_latency_target: float = 0.95
    slo_availability_target: float = 0.95

    def __post_init__(self) -> None:
        if self.shards < 1 or self.tenants < 1:
            raise ConfigError("need at least one shard and one tenant")
        if self.spike_multiplier < 1.0:
            raise ConfigError("spike_multiplier must be >= 1")
        if min(self.steady_ns, self.spike_ns, self.drain_guard_ns,
               self.recovery_ns) <= 0:
            raise ConfigError("phase durations must be positive")

    @property
    def total_ns(self) -> float:
        return (
            self.steady_ns + self.spike_ns + self.drain_guard_ns
            + self.recovery_ns
        )

    def phase_at(self, t_ns: float) -> str:
        if t_ns < self.steady_ns:
            return "steady"
        if t_ns < self.steady_ns + self.spike_ns:
            return "spike"
        if t_ns < self.steady_ns + self.spike_ns + self.drain_guard_ns:
            return "drain"
        return "recovery"


def _quantiles(latencies: List[float]) -> Dict[str, int]:
    """Nearest-rank percentiles, rounded to integer ns (byte-stable)."""
    if not latencies:
        return {"p50": 0, "p90": 0, "p99": 0, "p999": 0}
    ordered = sorted(latencies)
    out = {}
    for label, q in (("p50", 0.50), ("p90", 0.90), ("p99", 0.99),
                     ("p999", 0.999)):
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        out[label] = int(round(ordered[idx]))
    return out


class _Campaign:
    """Mutable state of one run (the harness's client + bookkeeper)."""

    def __init__(self, config: FleetConfig, session: TelemetrySession) -> None:
        self.config = config
        self.session = session
        self.scheduler = EventScheduler()
        self.tenant_names = tuple(
            f"tenant-{i}" for i in range(config.tenants)
        )
        quotas = tuple(
            TenantQuota(
                name=name,
                rate_per_s=(
                    config.steady_rate_rps / config.tenants
                    * config.quota_headroom
                ),
                burst=max(
                    8.0,
                    config.steady_rate_rps / config.tenants * 0.002,
                ),
                qos="premium" if i == 0 else "standard",
            )
            for i, name in enumerate(self.tenant_names)
        )
        brownout_cfg = (
            BrownoutConfig()
            if config.brownout
            # Effectively unreachable entry threshold: brownout off.
            else BrownoutConfig(enter_windows=1_000_000_000)
        )
        self.frontend = FleetFrontend(
            tuple(f"shard-{i}" for i in range(config.shards)),
            quotas,
            self.scheduler,
            registry=session.registry,
            cpu_capacity_bytes=config.cpu_capacity_bytes,
            xfm_capacity_bytes=config.xfm_capacity_bytes,
            dfm_capacity_bytes=config.dfm_capacity_bytes,
            queue_depth=config.queue_depth,
            brownout_config=brownout_cfg,
        )
        self.frontend.on_complete = self._finish
        #: Ground truth: acknowledged stores awaiting load-back.
        self.shadow: Dict[int, bytes] = {}
        #: Per-tenant keys resident and not claimed by an in-flight load
        #: (append order = store order, so the tail is hottest).
        self.live_keys: Dict[str, List[int]] = {
            name: [] for name in self.tenant_names
        }
        self.store_counters: Dict[str, int] = {
            name: 0 for name in self.tenant_names
        }
        self.key_rng = random.Random(config.seed + 1)
        self.retry_rng = random.Random(config.seed + 2)
        self.next_rid = 0
        self.silent_corruptions = 0
        self.data_loss = 0
        self.retry_fast_fails = 0
        self.retries_scheduled = 0
        self.phase_tallies: Dict[str, Dict[str, int]] = {
            p: {
                "offered": 0, "served": 0, "shed": 0, "failed": 0,
                "retries": 0,
            }
            for p in PHASES
        }
        self.shed_reasons: Dict[str, int] = {}
        self.phase_latencies: Dict[str, List[float]] = {p: [] for p in PHASES}
        self.tenant_tallies: Dict[str, Dict[str, int]] = {
            name: {"offered": 0, "served": 0, "shed": 0}
            for name in self.tenant_names
        }
        self.engine = SloEngine(
            session.registry,
            [
                LatencyObjective(
                    name="fleet-store-latency", op="store", tier="fleet",
                    threshold_ns=config.slo_store_ns,
                    target=config.slo_latency_target,
                ),
                LatencyObjective(
                    name="fleet-load-latency", op="load", tier="fleet",
                    threshold_ns=config.slo_load_ns,
                    target=config.slo_latency_target,
                ),
                AvailabilityObjective(
                    name="fleet-availability",
                    target=config.slo_availability_target,
                    bad_metrics=("fleet.shed",),
                    total_metrics=("fleet.requests",),
                ),
            ],
            window_ns=config.slo_window_ns,
        )
        self._slo_burned: set = set()
        self._seen_windows = 0

    # -- key lifecycle -------------------------------------------------------

    def _claim_load_key(self, tenant: str) -> Optional[int]:
        """Pick (and remove) a resident key, skewed toward the hottest
        (most recently stored) end of the tenant's live list."""
        keys = self.live_keys[tenant]
        if not keys:
            return None
        u = self.key_rng.random()
        idx_from_end = int(len(keys) * (u * u))  # quadratic skew -> hot
        return keys.pop(len(keys) - 1 - min(idx_from_end, len(keys) - 1))

    def _release_key(self, tenant: str, key: int) -> None:
        self.live_keys[tenant].append(key)

    # -- request lifecycle ---------------------------------------------------

    def arrival(self, tenant: str, op: str) -> None:
        now = _sim_clock.now_ns()
        if op == "load":
            key = self._claim_load_key(tenant)
            if key is None:
                op = "store"  # nothing resident yet: warm up instead
        if op == "store":
            key = (
                self.tenant_names.index(tenant) * TENANT_KEY_STRIDE
                + self.store_counters[tenant]
            )
            self.store_counters[tenant] += 1
        req = FleetRequest(
            rid=self.next_rid,
            tenant=tenant,
            op=op,
            key=key,
            arrival_ns=now,
            deadline_ns=now + self.config.deadline_ns,
            data=page_for(self.config.seed, key) if op == "store" else None,
        )
        self.next_rid += 1
        self._offer(req)

    def _offer(self, req: FleetRequest) -> None:
        phase = self.config.phase_at(req.arrival_ns)
        self.phase_tallies[phase]["offered"] += 1
        self.tenant_tallies[req.tenant]["offered"] += 1
        if req.attempt > 0:
            self.phase_tallies[phase]["retries"] += 1
        try:
            self.frontend.submit(req)
        except OverloadError:
            self._finish(req)

    def _finish(self, req: FleetRequest) -> None:
        phase = self.config.phase_at(req.arrival_ns)
        tally = self.phase_tallies[phase]
        if req.status == "served":
            tally["served"] += 1
            self.tenant_tallies[req.tenant]["served"] += 1
            self.phase_latencies[phase].append(req.latency_ns)
            if req.op == "store":
                self.shadow[req.key] = req.data
                self._release_key(req.tenant, req.key)
            else:
                expect = self.shadow.pop(req.key, None)
                if expect != req.result:
                    self.silent_corruptions += 1
                    _flightrec.trigger(
                        _flightrec.REASON_CHAOS_LOSS,
                        {"key": req.key, "phase": phase},
                    )
        elif req.status == "shed":
            tally["shed"] += 1
            self.tenant_tallies[req.tenant]["shed"] += 1
            self.shed_reasons[req.reason] = (
                self.shed_reasons.get(req.reason, 0) + 1
            )
            if req.op == "load":
                self._release_key(req.tenant, req.key)
            self._maybe_retry(req)
        else:  # failed
            tally["failed"] += 1
            if req.op == "load":
                if req.reason in ("missing", "corrupted"):
                    if self.shadow.pop(req.key, None) is not None:
                        self.data_loss += 1
                else:
                    # Transient (tier-unavailable): still resident.
                    self._release_key(req.tenant, req.key)

    def _maybe_retry(self, req: FleetRequest) -> None:
        if not self.config.retries or req.attempt > 0:
            return
        retry_after = max(req.retry_after_ns, 10_000.0)
        try:
            self.frontend.charge_retry(retry_after_ns=retry_after)
        except RetryBudgetExhausted:
            self.retry_fast_fails += 1
            return
        self.retries_scheduled += 1
        # Seeded jitter so synchronized sheds don't re-stampede.
        delay = retry_after * (1.0 + 0.2 * self.retry_rng.random())
        self.scheduler.schedule_after(delay, lambda r=req: self._resubmit(r))

    def _resubmit(self, req: FleetRequest) -> None:
        if req.op == "load":
            keys = self.live_keys[req.tenant]
            if req.key in keys:
                keys.remove(req.key)
            else:
                return  # page already loaded/claimed by someone else
        now = _sim_clock.now_ns()
        req.attempt += 1
        req.arrival_ns = now
        req.deadline_ns = now + self.config.deadline_ns
        req.status = "pending"
        req.reason = ""
        req.shard = ""
        self._offer(req)

    # -- periodic control ----------------------------------------------------

    def tick(self) -> None:
        now = _sim_clock.now_ns()
        horizon = self.config.total_ns + 2 * self.config.slo_window_ns
        if now < horizon:
            # Chain the successor before doing any work (scheduler rule).
            self.scheduler.schedule_after(
                self.frontend.brownout.config.window_ns, self.tick
            )
        self.frontend.brownout.evaluate_window()
        self.engine.tick(now)
        self._check_burn()

    def _check_burn(self) -> None:
        for window in self.engine.windows[self._seen_windows:]:
            target = self.engine._target_for(window.objective)
            if (
                window.attainment < target
                and window.objective not in self._slo_burned
            ):
                self._slo_burned.add(window.objective)
                _flightrec.trigger(
                    _flightrec.REASON_SLO_BURN,
                    {
                        "objective": window.objective,
                        "window": window.index,
                        "attainment": round(window.attainment, 4),
                        "burn_rate": round(window.burn_rate(target), 2),
                    },
                )
        self._seen_windows = len(self.engine.windows)

    # -- final sweep ---------------------------------------------------------

    def sweep(self) -> Dict[str, int]:
        """Prove zero acknowledged-data loss: every shadow page must
        come back byte-identical through the (post-failover) fleet."""
        checked = lost = corrupt = 0
        for key in sorted(self.shadow):
            checked += 1
            data = self.frontend.lookup(key)
            if data is None:
                lost += 1
            elif data != self.shadow[key]:
                corrupt += 1
        return {"checked": checked, "lost": lost, "corrupt": corrupt}


def run_fleet(
    config: FleetConfig, out_dir: Optional[object] = None
) -> Dict[str, object]:
    """Run one campaign; returns the byte-stable (JSON-ready) report.

    With ``out_dir`` set, the telemetry session writes
    ``trace.json``/``metrics.json`` and any flight dumps there, and the
    report lands as ``fleet_report.json``.
    """
    session = TelemetrySession(out_dir=out_dir)
    with session:
        report = _drive(config, session)
        session.annotate("fleet", report["verdict"])
    if out_dir is not None:
        path = Path(out_dir) / "fleet_report.json"
        path.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return report


def _drive(config: FleetConfig, session: TelemetrySession) -> Dict[str, object]:
    campaign = _Campaign(config, session)
    scheduler = campaign.scheduler
    arrivals = generate_arrivals(
        phases=(
            TrafficPhase("steady", config.steady_ns, 1.0),
            TrafficPhase("spike", config.spike_ns, config.spike_multiplier),
            TrafficPhase("drain", config.drain_guard_ns, 1.0),
            TrafficPhase("recovery", config.recovery_ns, 1.0),
        ),
        base_rate_rps=config.steady_rate_rps,
        tenant_shares={name: 1.0 for name in campaign.tenant_names},
        store_fraction=config.store_fraction,
        seed=config.seed,
        diurnal_amplitude=config.diurnal_amplitude,
    )
    for arrival in arrivals:
        scheduler.schedule(
            arrival.t_ns,
            lambda a=arrival: campaign.arrival(a.tenant, a.op),
        )
    scheduler.schedule_after(
        campaign.frontend.brownout.config.window_ns, campaign.tick
    )
    failover_stats: Dict[str, int] = {}
    if config.kill_shard_at_ns is not None:
        scheduler.schedule(
            config.kill_shard_at_ns,
            lambda: failover_stats.update(
                campaign.frontend.kill_shard("shard-0")
            ),
        )
    # Safety bound far above any legitimate schedule (each request costs
    # O(1) events; ticks are linear in the horizon).
    scheduler.run(max_events=20 * len(arrivals) + 1_000_000)
    now = _sim_clock.now_ns()
    campaign.engine.finalize(now)
    campaign._check_burn()
    sweep = campaign.sweep()
    return _build_report(config, campaign, sweep, failover_stats, arrivals)


def _build_report(
    config: FleetConfig,
    campaign: _Campaign,
    sweep: Dict[str, int],
    failover_stats: Dict[str, int],
    arrivals: List[object],
) -> Dict[str, object]:
    frontend = campaign.frontend
    phases: Dict[str, object] = {}
    for phase in PHASES:
        tally = campaign.phase_tallies[phase]
        offered = tally["offered"]
        phases[phase] = {
            **tally,
            "shed_rate": round(tally["shed"] / offered, 6) if offered else 0.0,
            "latency_ns": _quantiles(campaign.phase_latencies[phase]),
        }
    tenants: Dict[str, object] = {}
    goodputs: List[float] = []
    for name in campaign.tenant_names:
        tally = campaign.tenant_tallies[name]
        goodput = tally["served"]
        goodputs.append(goodput)
        tenants[name] = {
            **tally,
            "goodput_rps": round(goodput / (config.total_ns / 1e9), 2),
        }
    fairness = (
        round(max(goodputs) / min(goodputs), 4) if min(goodputs) else 0.0
    )
    total_ns = max(_sim_clock.now_ns(), config.total_ns)
    residency_ns = frontend.brownout.total_residency_ns()
    degraded_ops = sum(s.degraded_ops for s in frontend.shards.values())
    recovery_sheds = campaign.phase_tallies["recovery"]["shed"]
    spike_sheds = campaign.phase_tallies["spike"]["shed"]
    report: Dict[str, object] = {
        "schema": 1,
        "config": {
            "seed": config.seed,
            "shards": config.shards,
            "tenants": config.tenants,
            "queue_depth": config.queue_depth,
            "deadline_ns": config.deadline_ns,
            "steady_rate_rps": config.steady_rate_rps,
            "spike_multiplier": config.spike_multiplier,
            "phase_ns": {
                "steady": config.steady_ns,
                "spike": config.spike_ns,
                "drain": config.drain_guard_ns,
                "recovery": config.recovery_ns,
            },
            "retries": config.retries,
            "brownout": config.brownout,
            "kill_shard_at_ns": config.kill_shard_at_ns,
        },
        "arrivals": len(arrivals),
        "phases": phases,
        "tenants": tenants,
        "fairness": {
            "max_min_goodput_ratio": fairness,
        },
        "shedding": {
            "by_reason": dict(sorted(campaign.shed_reasons.items())),
            "spike_sheds": spike_sheds,
            "recovery_sheds": recovery_sheds,
        },
        "retry_budget": {
            **frontend.retry_budget.snapshot(),
            "retries_scheduled": campaign.retries_scheduled,
            "fast_fails": campaign.retry_fast_fails,
        },
        "brownout": {
            **frontend.brownout.snapshot(),
            "residency_fraction": round(residency_ns / total_ns, 6),
            "degraded_ops": degraded_ops,
        },
        "failover": {
            **failover_stats,
            "relocated_pages_total": frontend.relocated_pages,
        },
        "slo": campaign.engine.summary(),
        "sweep": sweep,
        "verdict": {
            "spike_shed": bool(spike_sheds > 0),
            "recovery_clean": bool(recovery_sheds == 0),
            "acked_data_lost": sweep["lost"] + campaign.data_loss,
            "silent_corruptions": campaign.silent_corruptions,
            "slo_met": {
                name: summary["met"]
                for name, summary in campaign.engine.summary().items()
            },
        },
        "flight_records": list(campaign.session.flight.dump_names),
    }
    return report


def format_report(report: Dict[str, object]) -> str:
    """Human-readable campaign summary for the CLI."""
    lines: List[str] = []
    cfg = report["config"]
    lines.append(
        f"fleet campaign: seed={cfg['seed']} shards={cfg['shards']} "
        f"tenants={cfg['tenants']} rate={cfg['steady_rate_rps']:.0f}/s "
        f"spike=x{cfg['spike_multiplier']}"
    )
    lines.append(f"  arrivals: {report['arrivals']}")
    for phase in PHASES:
        p = report["phases"][phase]
        lat = p["latency_ns"]
        lines.append(
            f"  {phase:9s}: offered={p['offered']:6d} served={p['served']:6d}"
            f" shed={p['shed']:5d} (rate={p['shed_rate']:.3f})"
            f" p50={lat['p50']} p99={lat['p99']} p999={lat['p999']}"
        )
    lines.append("  tenants:")
    for name, t in report["tenants"].items():
        lines.append(
            f"    {name:10s}: offered={t['offered']:6d} "
            f"served={t['served']:6d} shed={t['shed']:5d} "
            f"goodput={t['goodput_rps']:.0f}/s"
        )
    lines.append(
        f"  fairness max/min goodput ratio: "
        f"{report['fairness']['max_min_goodput_ratio']}"
    )
    brown = report["brownout"]
    lines.append(
        f"  brownout: entries={brown['entries']} "
        f"residency={brown['residency_fraction']:.3f} "
        f"degraded_ops={brown['degraded_ops']}"
    )
    budget = report["retry_budget"]
    lines.append(
        f"  retries: scheduled={budget['retries_scheduled']} "
        f"spent={budget['spent']} refused={budget['refused']} "
        f"fast_fails={budget['fast_fails']}"
    )
    if report["failover"]:
        lines.append(f"  failover: {report['failover']}")
    lines.append("  slo:")
    for name, summary in report["slo"].items():
        lines.append(
            f"    {name:22s}: met={summary['met']} "
            f"attainment={summary['attainment']:.4f} "
            f"worst_burn={summary['worst_burn']:.2f}"
        )
    verdict = report["verdict"]
    lines.append(
        f"  verdict: spike_shed={verdict['spike_shed']} "
        f"recovery_clean={verdict['recovery_clean']} "
        f"acked_data_lost={verdict['acked_data_lost']} "
        f"silent_corruptions={verdict['silent_corruptions']}"
    )
    return "\n".join(lines)
