"""Brownout controller: graceful degradation with hysteresis.

Under sustained pressure the fleet trades fidelity for headroom instead
of falling over: degradable tenants switch to the cheaper static-table
codec, demotion cascades are bypassed, and demotion batch windows
shrink. The controller watches the shed rate over fixed simulated-time
windows and drives a two-state machine::

      shed rate > enter_shed_rate for enter_windows consecutive windows
    NORMAL ----------------------------------------------------------> BROWNOUT
    NORMAL <---------------------------------------------------------- BROWNOUT
      shed rate < exit_shed_rate for exit_windows consecutive windows

The asymmetric thresholds plus the consecutive-window counts are the
hysteresis: a single noisy window neither enters nor exits degraded
mode, so the system cannot flap codec state at window frequency.
Transitions fire owner-supplied enter/exit actions, emit a
``fleet_brownout`` trace instant, and accumulate degraded-mode
residency (reported as a first-class health metric — time spent
degraded is an SLO input in the hyperscale framing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ConfigError
from repro.sim import CLOCK as _sim_clock
from repro.telemetry import trace as _trace
from repro.telemetry.registry import MetricsRegistry

#: Trace track for fleet-level control events.
TRACK_FLEET = "fleet"


@dataclass(frozen=True)
class BrownoutConfig:
    """Hysteresis tuning; shed rates are fractions of offered load."""

    enter_shed_rate: float = 0.05
    exit_shed_rate: float = 0.01
    enter_windows: int = 2
    exit_windows: int = 5
    window_ns: float = 1_000_000.0

    def __post_init__(self) -> None:
        if not 0.0 < self.exit_shed_rate <= self.enter_shed_rate < 1.0:
            raise ConfigError(
                "need 0 < exit_shed_rate <= enter_shed_rate < 1"
            )
        if self.enter_windows < 1 or self.exit_windows < 1:
            raise ConfigError("hysteresis window counts must be >= 1")
        if self.window_ns <= 0:
            raise ConfigError("window_ns must be positive")


class BrownoutController:
    """Shed-rate watcher driving enter/exit degradation actions."""

    def __init__(
        self,
        config: BrownoutConfig,
        on_enter: Optional[Callable[[], None]] = None,
        on_exit: Optional[Callable[[], None]] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config
        self.on_enter = on_enter
        self.on_exit = on_exit
        self.registry = registry if registry is not None else MetricsRegistry()
        self.active = False
        self.entries = 0
        self.exits = 0
        self.residency_ns = 0.0
        self._entered_at_ns = 0.0
        self._over = 0
        self._under = 0
        # Current-window tallies, fed by the frontend per decision.
        self._offered = 0
        self._shed = 0

    # -- per-request feed ---------------------------------------------------

    def record(self, shed: bool) -> None:
        """One admission decision in the current window."""
        self._offered += 1
        if shed:
            self._shed += 1

    # -- windowing ----------------------------------------------------------

    def evaluate_window(self) -> None:
        """Close the current window and run the hysteresis step.

        Called by the owner's periodic tick event; empty windows count
        as zero-shed (they push the exit counter, which is what lets a
        fully-shed-quiet system recover)."""
        rate = self._shed / self._offered if self._offered else 0.0
        self._offered = 0
        self._shed = 0
        if self.active:
            if rate < self.config.exit_shed_rate:
                self._under += 1
                if self._under >= self.config.exit_windows:
                    self._transition(False, rate)
            else:
                self._under = 0
        else:
            if rate > self.config.enter_shed_rate:
                self._over += 1
                if self._over >= self.config.enter_windows:
                    self._transition(True, rate)
            else:
                self._over = 0

    def _transition(self, entering: bool, rate: float) -> None:
        now = _sim_clock.now_ns()
        self.active = entering
        self._over = 0
        self._under = 0
        if entering:
            self.entries += 1
            self._entered_at_ns = now
        else:
            self.exits += 1
            self.residency_ns += now - self._entered_at_ns
        to = "brownout" if entering else "normal"
        self.registry.counter("fleet.brownout.transitions", to=to).inc()
        if _trace.tracing_enabled():
            _trace.instant(
                "fleet_brownout", TRACK_FLEET,
                args={"to": to, "shed_rate": round(rate, 4)},
            )
        action = self.on_enter if entering else self.on_exit
        if action is not None:
            action()

    # -- reporting ----------------------------------------------------------

    def total_residency_ns(self) -> float:
        """Degraded-mode residency including a still-open episode."""
        open_ns = (
            _sim_clock.now_ns() - self._entered_at_ns if self.active else 0.0
        )
        return self.residency_ns + open_ns

    def snapshot(self) -> dict:
        return {
            "active": self.active,
            "entries": self.entries,
            "exits": self.exits,
            "residency_ns": round(self.total_residency_ns(), 1),
        }
