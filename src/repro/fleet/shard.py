"""One fleet shard: an independent TierPipeline behind a bounded queue.

Each shard owns its own three-tier pipeline (with its own metrics
registry and circuit breakers — shard failure domains are independent)
and serves requests through an event-chained pump on the shared
:class:`~repro.sim.events.EventScheduler`: the pump event fires at the
moment the shard goes idle, sheds anything already past its deadline
(shed-before-work — a dead request costs zero service time), serves one
request (the pipeline's modeled codec/device costs advance the shared
clock), and chains the next pump at the completion instant. Arrivals
landing mid-service simply wait in the bounded queue; a full queue
sheds at submit time with a retry-after hint sized from the backlog.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, FrozenSet, Optional

from repro.compression.base import CodecSpec
from repro.compression.deflate import DeflateCodec
from repro.compression.static_tables import StaticTableRegistry
from repro.errors import (
    ConfigError,
    CorruptedBlobError,
    OverloadError,
    SfmError,
    TierUnavailableError,
)
from repro.resilience.breaker import BreakerConfig
from repro.sfm.page import PAGE_SIZE
from repro.sim import CLOCK as _sim_clock
from repro.sim.events import EventScheduler
from repro.telemetry.registry import MetricsRegistry
from repro.tiering.pipeline import TierPipeline
from repro.tiering.policy import LruDemotion, NeverDemote

#: Floor on per-request service time: keeps the pump chain strictly
#: advancing even for requests whose pipeline work is cache-hit cheap
#: (and keeps bare, non-traced unit tests from looping at one tick).
MIN_SERVICE_NS = 200.0

#: Modeled cost of the brownout codec: static Huffman tables skip the
#: per-page dynamic table build, trading ratio for cycles (PR 7's
#: static-table mode; cheaper than stock deflate's 35/9 cycles/byte).
DEGRADED_SPEC = CodecSpec(
    name="deflate-static",
    compress_cycles_per_byte=22.0,
    decompress_cycles_per_byte=7.0,
)


def make_degraded_codec() -> DeflateCodec:
    """The brownout codec: static-table deflate with a cheaper spec.

    Decode-compatible both ways with the shard's normal dynamic
    deflate — mode-3 static blobs are self-describing (decode with no
    registry) and dynamic blobs decode under either codec — so pages
    stored before, during, and after a brownout all stay readable.
    """
    registry = StaticTableRegistry.load_default()
    codec = (
        registry.codec_for("text") if registry is not None else DeflateCodec()
    )
    # Shadow the class-level spec with the degraded-cost instance spec.
    codec.spec = DEGRADED_SPEC
    return codec


@dataclass
class FleetRequest:
    """One serving request, from arrival to terminal state."""

    rid: int
    tenant: str
    op: str  # "store" | "load"
    key: int
    arrival_ns: float
    deadline_ns: float
    data: Optional[bytes] = None
    attempt: int = 0
    # Terminal bookkeeping, filled by the shard/frontend.
    status: str = "pending"  # -> served | shed | failed
    reason: str = ""
    #: Shed hint for the client's retry timer (copied from the
    #: OverloadError that shed this request, when one was raised).
    retry_after_ns: float = 0.0
    shard: str = ""
    done_ns: float = 0.0
    result: Optional[bytes] = field(default=None, repr=False)

    @property
    def latency_ns(self) -> float:
        return self.done_ns - self.arrival_ns


class FleetShard:
    """Bounded-queue serving wrapper around one TierPipeline."""

    def __init__(
        self,
        name: str,
        scheduler: EventScheduler,
        cpu_capacity_bytes: int,
        xfm_capacity_bytes: int,
        dfm_capacity_bytes: int,
        queue_depth: int = 8,
        breaker_config: Optional[BreakerConfig] = None,
        spill: Optional[Dict[int, bytes]] = None,
    ) -> None:
        if queue_depth < 1:
            raise ConfigError("queue_depth must be >= 1")
        from repro.core.backend import XfmBackend
        from repro.dfm.backend import DfmBackend
        from repro.sfm.backend import SfmBackend

        self.name = name
        self.scheduler = scheduler
        self.queue_depth = queue_depth
        #: Fleet-level last-resort spill (shared across shards): pages no
        #: tier would hold stay acknowledged here, never lost.
        self.spill = spill if spill is not None else {}
        #: The shard's own registry — pipeline internals (tier stats,
        #: breakers, demotion counters) stay per-failure-domain.
        self.registry = MetricsRegistry()
        self._codec_normal = DeflateCodec()
        self._codec_degraded = make_degraded_codec()
        tier0 = SfmBackend(
            capacity_bytes=cpu_capacity_bytes,
            codec=self._codec_normal,
            registry=self.registry,
            tier="cpu-zswap",
        )
        self.pipeline = TierPipeline(
            [
                tier0,
                XfmBackend(
                    capacity_bytes=xfm_capacity_bytes,
                    registry=self.registry,
                    tier="xfm",
                ),
                DfmBackend(
                    capacity_bytes=dfm_capacity_bytes,
                    registry=self.registry,
                    tier="dfm",
                ),
            ],
            registry=self.registry,
            demotion=LruDemotion(watermark_fraction=0.75),
            breaker_config=breaker_config,
            spill=self._spill_page,
            trace_labels={"shard": name},
        )
        self._normal_demotion = self.pipeline.demotion
        self.queue: Deque[FleetRequest] = deque()
        #: Simulated instant the shard finishes its in-flight request.
        #: This is what makes the shard a real busy server under the
        #: event scheduler's clock snap-back: an arrival event may fire
        #: at a tick *before* this instant (the serve that set it
        #: advanced the clock, then the scheduler rewound to the next
        #: arrival), and its service must still queue behind it.
        self.busy_until_ns = 0.0
        self.alive = True
        self.degraded = False
        self.degraded_tenants: FrozenSet[str] = frozenset()
        self.degraded_ops = 0
        self._pump_scheduled = False
        #: Completion callback installed by the frontend; receives every
        #: request this shard terminates (served, shed, or failed).
        self.on_complete: Callable[[FleetRequest], None] = lambda req: None
        self._store_est_ns = tier0.swap_latency_s("out") * 1e9
        self._load_est_ns = tier0.swap_latency_s("in") * 1e9

    # -- spill --------------------------------------------------------------

    def _spill_page(self, vaddr: int, data: bytes) -> None:
        self.spill[vaddr // PAGE_SIZE] = data

    # -- admission into the queue -------------------------------------------

    def _estimate_ns(self, op: str) -> float:
        return self._store_est_ns if op == "store" else self._load_est_ns

    def backlog_ns(self) -> float:
        """Rough wait ahead of a new arrival: the remainder of the
        in-flight request plus the queued service estimates."""
        in_flight = max(0.0, self.busy_until_ns - _sim_clock.now_ns())
        return in_flight + sum(self._estimate_ns(r.op) for r in self.queue)

    def submit(self, req: FleetRequest) -> None:
        """Enqueue or shed (queue-full / dead shard raise
        :class:`OverloadError` with a backlog-sized retry-after)."""
        if not self.alive:
            raise OverloadError(
                f"shard {self.name} is dead",
                reason="shard-dead",
                retry_after_ns=self._estimate_ns(req.op),
            )
        if len(self.queue) >= self.queue_depth:
            raise OverloadError(
                f"shard {self.name} queue full ({self.queue_depth})",
                reason="queue-full",
                retry_after_ns=self.backlog_ns() + self._estimate_ns(req.op),
            )
        req.shard = self.name
        self.queue.append(req)
        self._schedule_pump()

    # -- service pump ---------------------------------------------------------

    def _schedule_pump(self) -> None:
        """Chain the next pump firing at the instant the shard is free
        (never earlier — the server is genuinely busy until then)."""
        if self._pump_scheduled or not self.queue or not self.alive:
            return
        self._pump_scheduled = True
        delay = max(0.0, self.busy_until_ns - _sim_clock.now_ns())
        self.scheduler.schedule_after(delay, self._pump)

    def _pump(self) -> None:
        self._pump_scheduled = False
        if not self.alive:
            return
        while self.queue:
            req = self.queue.popleft()
            now = _sim_clock.now_ns()
            # Deadline-aware shed-before-work: a request that cannot
            # finish in time is refused *before* any pipeline work.
            if now + self._estimate_ns(req.op) > req.deadline_ns:
                req.status = "shed"
                req.reason = "deadline"
                req.retry_after_ns = self.backlog_ns()
                req.done_ns = now
                self.on_complete(req)
                continue
            self._serve(req)
            self.busy_until_ns = _sim_clock.now_ns()
            break
        self._schedule_pump()

    def _select_codec(self, req: FleetRequest) -> None:
        tier0 = self.pipeline.tiers[0]
        if self.degraded and req.tenant in self.degraded_tenants:
            tier0.codec = self._codec_degraded
            self.degraded_ops += 1
        else:
            tier0.codec = self._codec_normal

    def _serve(self, req: FleetRequest) -> None:
        start_ns = _sim_clock.now_ns()
        self._select_codec(req)
        try:
            if req.op == "store":
                if req.data is None or len(req.data) != PAGE_SIZE:
                    raise ConfigError("store request needs one page of data")
                accepted = self.pipeline.store(req.key, req.data)
                req.status = "served" if accepted else "failed"
                req.reason = "" if accepted else "store-rejected"
            elif req.op == "load":
                try:
                    req.result = self.pipeline.load(req.key)
                except SfmError:
                    # Spilled mid-cascade: still acknowledged, still ours.
                    req.result = self.spill.pop(req.key, None)
                if req.result is None:
                    req.status = "failed"
                    req.reason = "missing"
                else:
                    req.status = "served"
            else:
                raise ConfigError(f"unknown op {req.op!r}")
        except TierUnavailableError:
            req.status = "failed"
            req.reason = "tier-unavailable"
        except CorruptedBlobError:
            req.status = "failed"
            req.reason = "corrupted"
        # Service-time floor: guarantee the timeline strictly advances
        # per served request, even when the pipeline work was free
        # (digest-cache hit, early reject) or tracing is off.
        elapsed = _sim_clock.now_ns() - start_ns
        if elapsed < MIN_SERVICE_NS:
            _sim_clock.advance_ns(MIN_SERVICE_NS - elapsed)
        req.done_ns = _sim_clock.now_ns()
        self.on_complete(req)

    # -- degraded mode --------------------------------------------------------

    def enter_brownout(self, tenants: FrozenSet[str]) -> None:
        """Degrade: static-table codec for ``tenants``, demotion-cascade
        bypass, and shrunk demotion batches."""
        self.degraded = True
        self.degraded_tenants = tenants
        self.pipeline.demotion = NeverDemote()
        self.pipeline.demote_batch_pages = 2
        self.registry.counter("fleet.shard_brownout", shard=self.name).inc()

    def exit_brownout(self) -> None:
        self.degraded = False
        self.degraded_tenants = frozenset()
        self.pipeline.demotion = self._normal_demotion
        from repro.tiering.pipeline import DEMOTE_BATCH_PAGES

        self.pipeline.demote_batch_pages = DEMOTE_BATCH_PAGES

    # -- failure --------------------------------------------------------------

    def kill(self) -> Deque[FleetRequest]:
        """Mark the shard dead and hand back its queued (unserved)
        requests for the frontend to re-route."""
        self.alive = False
        pending = self.queue
        self.queue = deque()
        return pending
