"""Fleet serving layer: a sharded, overload-robust frontend over
:class:`~repro.tiering.pipeline.TierPipeline`.

The hyperscale framing (ROADMAP item 1, the CXL-adoption and TMTS
papers): far memory is a *service*, and a service survives on how it
behaves at the edge of capacity, not in the middle. This package adds
the machinery that decides viability under pressure:

* :mod:`repro.fleet.frontend` — rendezvous-hash routing across N
  independent pipeline shards, shard kill/failover with
  ``drain_tier``-style page relocation, and the serving counters the
  SLO engine reads.
* :mod:`repro.fleet.admission` — per-tenant token-bucket rate quotas
  and resident-page capacity quotas (shed-before-work).
* :mod:`repro.fleet.shard` — one pipeline shard: bounded queue,
  deadline-aware load shedding, event-chained service pump on the
  shared :class:`~repro.sim.events.EventScheduler`.
* :mod:`repro.fleet.retrybudget` — the global retry-budget governor
  (retries spend a shared budget earned by admitted work; an exhausted
  budget fast-fails instead of amplifying).
* :mod:`repro.fleet.brownout` — degraded-mode controller with
  hysteresis (cheaper static-table codec for degradable tenants,
  demotion-cascade bypass, shrunk demotion batches).
* :mod:`repro.fleet.traffic` — open-loop arrival generation
  (Poisson/Zipf mixes, diurnal curves, overload spikes) scheduled as
  events.
* :mod:`repro.fleet.harness` — the deterministic ``python -m repro
  fleet`` campaign: phases, SLOs, flight-recorder dumps on burn, and a
  byte-stable JSON report.
"""

from repro.fleet.admission import AdmissionController, TenantQuota, TokenBucket
from repro.fleet.brownout import BrownoutConfig, BrownoutController
from repro.fleet.frontend import FleetFrontend
from repro.fleet.harness import FleetConfig, format_report, run_fleet
from repro.fleet.retrybudget import RetryBudget
from repro.fleet.shard import FleetRequest, FleetShard
from repro.fleet.traffic import TrafficPhase, generate_arrivals

__all__ = [
    "AdmissionController",
    "BrownoutConfig",
    "BrownoutController",
    "FleetConfig",
    "FleetFrontend",
    "FleetRequest",
    "FleetShard",
    "RetryBudget",
    "TenantQuota",
    "TokenBucket",
    "TrafficPhase",
    "format_report",
    "generate_arrivals",
    "run_fleet",
]
