"""Per-tenant admission control: token-bucket rate quotas plus
resident-page capacity quotas.

Admission is the outermost shed point — it runs before any queueing or
pipeline work, so a rejected request costs nothing but the bucket math
(shed-before-work). Buckets refill continuously against the shared
simulated clock (:data:`repro.sim.CLOCK`), making every admit/shed
decision a pure function of the arrival timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ConfigError, OverloadError
from repro.sim import CLOCK as _sim_clock
from repro.telemetry.registry import MetricsRegistry


class TokenBucket:
    """Continuous-refill token bucket on the simulated clock."""

    def __init__(self, rate_per_s: float, burst: float) -> None:
        if rate_per_s <= 0 or burst < 1:
            raise ConfigError("token bucket needs rate > 0 and burst >= 1")
        self.rate_per_s = rate_per_s
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last_ns = _sim_clock.now_ns()

    def _refill(self) -> None:
        # The event scheduler may "snap back" the shared clock between
        # events (a handler can advance past the next event's tick), so
        # only credit — and only move the refill cursor — when time has
        # actually progressed; crediting a rewound interval twice would
        # mint tokens from nothing.
        now = _sim_clock.now_ns()
        if now <= self._last_ns:
            return
        self._tokens = min(
            self.burst,
            self._tokens + (now - self._last_ns) * self.rate_per_s / 1e9,
        )
        self._last_ns = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def try_take(self, n: float = 1.0) -> bool:
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False

    def retry_after_ns(self, n: float = 1.0) -> float:
        """Simulated ns until ``n`` tokens will have accumulated."""
        self._refill()
        deficit = max(0.0, n - self._tokens)
        return deficit / self.rate_per_s * 1e9


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's service contract.

    ``qos`` selects degraded-mode treatment: ``"premium"`` tenants keep
    the full-fidelity codec through a brownout; any other class is
    degradable. ``capacity_pages`` caps resident (acknowledged, not yet
    loaded-back) pages — the capacity analogue of the rate quota.
    """

    name: str
    rate_per_s: float
    burst: float = 32.0
    capacity_pages: int = 1 << 30
    qos: str = "standard"

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("tenant quota needs a name")
        if self.capacity_pages < 1:
            raise ConfigError("capacity_pages must be >= 1")


class AdmissionController:
    """Admit-or-shed gate over a set of :class:`TenantQuota`."""

    def __init__(
        self,
        quotas: Tuple[TenantQuota, ...],
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if not quotas:
            raise ConfigError("admission controller needs at least one tenant")
        names = [q.name for q in quotas]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate tenant names: {names}")
        self.quotas: Dict[str, TenantQuota] = {q.name: q for q in quotas}
        self.buckets: Dict[str, TokenBucket] = {
            q.name: TokenBucket(q.rate_per_s, q.burst) for q in quotas
        }
        #: Acknowledged resident pages per tenant (stores minus loads).
        self.resident_pages: Dict[str, int] = {q.name: 0 for q in quotas}
        self.registry = registry if registry is not None else MetricsRegistry()

    def _count(self, tenant: str, result: str) -> None:
        self.registry.counter(
            "fleet.admission", tenant=tenant, result=result
        ).inc()

    def admit(self, tenant: str, op: str) -> None:
        """Shed-before-work gate; raises :class:`OverloadError` on shed.

        The raised error carries a ``retry_after_ns`` hint sized from
        the bucket's refill rate so a well-behaved client retries when
        tokens will actually exist.
        """
        if tenant not in self.quotas:
            raise ConfigError(f"unknown tenant {tenant!r}")
        quota = self.quotas[tenant]
        if (
            op == "store"
            and self.resident_pages[tenant] >= quota.capacity_pages
        ):
            self._count(tenant, "shed-capacity")
            raise OverloadError(
                f"tenant {tenant} at capacity quota "
                f"({quota.capacity_pages} pages)",
                reason="capacity-quota",
                retry_after_ns=self.buckets[tenant].retry_after_ns(),
            )
        bucket = self.buckets[tenant]
        if not bucket.try_take():
            self._count(tenant, "shed-rate")
            raise OverloadError(
                f"tenant {tenant} over rate quota "
                f"({quota.rate_per_s:.0f}/s)",
                reason="rate-quota",
                retry_after_ns=bucket.retry_after_ns(),
            )
        self._count(tenant, "admitted")

    def on_page_stored(self, tenant: str) -> None:
        self.resident_pages[tenant] += 1

    def on_page_released(self, tenant: str) -> None:
        if self.resident_pages[tenant] > 0:
            self.resident_pages[tenant] -= 1

    def degradable_tenants(self) -> Tuple[str, ...]:
        """Tenants the brownout controller may degrade (non-premium)."""
        return tuple(
            sorted(q.name for q in self.quotas.values() if q.qos != "premium")
        )
