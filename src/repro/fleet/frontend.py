"""Sharded fleet frontend: routing, shed accounting, and failover.

Routing is rendezvous (highest-random-weight) hashing over the *live*
shard set: each key scores every shard with a keyed blake2b digest and
goes to the maximum. Rendezvous gives the two properties a far-memory
fleet needs — deterministic placement with no coordination state, and
minimal disruption on membership change (killing one of N shards moves
only that shard's keys, everyone else's placement is untouched).

The frontend also owns the fleet-level serving ledger: admission
(delegated to :class:`~repro.fleet.admission.AdmissionController`),
the shared retry budget, per-op latency quantiles under
``op_latency_ns{op,tier="fleet"}`` (what the SLO engine reads), shed
counters by reason, and an explicit placement map (key -> shard) kept
so failover can enumerate exactly which acknowledged pages lived on a
dead shard and relocate them to siblings.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigError, OverloadError, ReproError
from repro.fleet.admission import AdmissionController, TenantQuota
from repro.fleet.brownout import TRACK_FLEET, BrownoutConfig, BrownoutController
from repro.fleet.retrybudget import RetryBudget
from repro.fleet.shard import FleetRequest, FleetShard
from repro.resilience.breaker import BreakerConfig
from repro.sim import CLOCK as _sim_clock
from repro.sim.events import EventScheduler
from repro.telemetry import trace as _trace
from repro.telemetry.registry import MetricsRegistry


def rendezvous_score(key: int, shard_name: str) -> int:
    """Deterministic 64-bit score of (key, shard) for HRW routing."""
    digest = hashlib.blake2b(
        f"{key}:{shard_name}".encode("ascii"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class FleetFrontend:
    """N independent pipeline shards behind one admission gate."""

    def __init__(
        self,
        shard_names: Tuple[str, ...],
        quotas: Tuple[TenantQuota, ...],
        scheduler: EventScheduler,
        registry: Optional[MetricsRegistry] = None,
        cpu_capacity_bytes: int = 4 * 1024 * 1024,
        xfm_capacity_bytes: int = 4 * 1024 * 1024,
        dfm_capacity_bytes: int = 64 * 1024 * 1024,
        queue_depth: int = 8,
        breaker_config: Optional[BreakerConfig] = None,
        brownout_config: Optional[BrownoutConfig] = None,
        retry_budget: Optional[RetryBudget] = None,
    ) -> None:
        if len(set(shard_names)) != len(shard_names) or not shard_names:
            raise ConfigError("frontend needs uniquely named shards")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.scheduler = scheduler
        #: Fleet-level last-resort spill, shared by every shard: a page
        #: spilled out of any pipeline stays acknowledged here.
        self.spill: Dict[int, bytes] = {}
        self.shards: Dict[str, FleetShard] = {
            name: FleetShard(
                name,
                scheduler,
                cpu_capacity_bytes=cpu_capacity_bytes,
                xfm_capacity_bytes=xfm_capacity_bytes,
                dfm_capacity_bytes=dfm_capacity_bytes,
                queue_depth=queue_depth,
                breaker_config=breaker_config,
                spill=self.spill,
            )
            for name in shard_names
        }
        for shard in self.shards.values():
            shard.on_complete = self._on_shard_complete
        self.admission = AdmissionController(quotas, registry=self.registry)
        self.retry_budget = (
            retry_budget
            if retry_budget is not None
            else RetryBudget(registry=self.registry)
        )
        self.brownout = BrownoutController(
            brownout_config if brownout_config is not None else BrownoutConfig(),
            on_enter=self._enter_brownout,
            on_exit=self._exit_brownout,
            registry=self.registry,
        )
        #: key -> shard name, for every acknowledged resident page.
        self.placement: Dict[int, str] = {}
        #: Failover bookkeeping.
        self.relocated_pages = 0
        self.failover_lost_pages = 0
        #: Completion hook installed by the harness (phase accounting,
        #: shadow checks, retry decisions); receives terminal requests.
        self.on_complete: Callable[[FleetRequest], None] = lambda req: None
        self._lat = {
            op: self.registry.quantile("op_latency_ns", op=op, tier="fleet")
            for op in ("store", "load")
        }

    # -- routing --------------------------------------------------------------

    def live_shards(self) -> List[str]:
        return [name for name, s in self.shards.items() if s.alive]

    def route(self, key: int) -> str:
        """Rendezvous-hash ``key`` across the live shard set."""
        live = self.live_shards()
        if not live:
            raise ConfigError("no live shards")
        return max(live, key=lambda name: rendezvous_score(key, name))

    # -- submission -----------------------------------------------------------

    def _count_shed(self, req: FleetRequest, reason: str) -> None:
        self.registry.counter(
            "fleet.shed", reason=reason, tenant=req.tenant
        ).inc()
        self.brownout.record(shed=True)
        if _trace.tracing_enabled():
            _trace.instant(
                "fleet_shed", TRACK_FLEET,
                args={"tenant": req.tenant, "op": req.op, "reason": reason},
            )

    def submit(self, req: FleetRequest) -> None:
        """Admit-and-enqueue one request; sheds raise
        :class:`OverloadError` (and are fully accounted before raising).

        First attempts earn retry budget on admission; retries
        (``req.attempt > 0``) must have spent budget at the caller via
        :meth:`charge_retry` before re-submitting.
        """
        self.registry.counter("fleet.requests", tenant=req.tenant).inc()
        try:
            self.admission.admit(req.tenant, req.op)
        except OverloadError as exc:
            req.status = "shed"
            req.reason = exc.reason
            req.retry_after_ns = exc.retry_after_ns
            req.done_ns = _sim_clock.now_ns()
            self._count_shed(req, exc.reason)
            raise
        if req.attempt == 0:
            self.retry_budget.earn()
        self._enqueue(req)

    def _enqueue(self, req: FleetRequest) -> None:
        """Route and queue an already-admitted request (also the
        failover re-route path — no second admission charge)."""
        if not self.live_shards():
            req.status = "shed"
            req.reason = "shard-dead"
            req.done_ns = _sim_clock.now_ns()
            self._count_shed(req, "shard-dead")
            raise OverloadError(
                "fleet has no live shards", reason="shard-dead"
            )
        target = self.placement.get(req.key) if req.op == "load" else None
        if target is None or not self.shards[target].alive:
            target = self.route(req.key)
        try:
            self.shards[target].submit(req)
        except OverloadError as exc:
            req.status = "shed"
            req.reason = exc.reason
            req.retry_after_ns = exc.retry_after_ns
            req.done_ns = _sim_clock.now_ns()
            self._count_shed(req, exc.reason)
            raise
        self.brownout.record(shed=False)

    def charge_retry(self, retry_after_ns: float = 0.0) -> None:
        """Spend shared retry budget for one client retry; raises
        :class:`~repro.errors.RetryBudgetExhausted` on an empty balance
        (the caller fast-fails instead of re-offering the request)."""
        self.retry_budget.spend(retry_after_ns=retry_after_ns)

    # -- completion fan-in ----------------------------------------------------

    def _on_shard_complete(self, req: FleetRequest) -> None:
        if req.status == "served":
            self.registry.counter(
                "fleet.served", tenant=req.tenant, op=req.op
            ).inc()
            self._lat[req.op].observe(req.latency_ns)
            if req.op == "store":
                self.placement[req.key] = req.shard
                self.admission.on_page_stored(req.tenant)
            else:
                self.placement.pop(req.key, None)
                self.admission.on_page_released(req.tenant)
        elif req.status == "shed":
            # Queued-then-deadline-shed inside the shard.
            self._count_shed(req, req.reason)
        else:
            self.registry.counter(
                "fleet.failed", tenant=req.tenant, reason=req.reason
            ).inc()
        self.on_complete(req)

    # -- degraded mode --------------------------------------------------------

    def _enter_brownout(self) -> None:
        tenants = frozenset(self.admission.degradable_tenants())
        for shard in self.shards.values():
            if shard.alive:
                shard.enter_brownout(tenants)

    def _exit_brownout(self) -> None:
        for shard in self.shards.values():
            if shard.alive:
                shard.exit_brownout()

    # -- failover -------------------------------------------------------------

    def kill_shard(self, name: str) -> Dict[str, int]:
        """Chaos-kill ``name``: re-route its queued work, then relocate
        every acknowledged resident page to rendezvous-chosen siblings
        (``drain_tier``-style: load from the dying pipeline, store into
        a live one, spill as last resort — never silently dropped).

        Queued requests are re-submitted *before* the relocation work so
        their service events land at the kill instant, not after the
        relocation's clock charge (chain successors before doing
        clock-advancing work, per the scheduler contract).
        """
        if name not in self.shards:
            raise ConfigError(f"unknown shard {name!r}")
        victim = self.shards[name]
        pending = victim.kill()
        if _trace.tracing_enabled():
            _trace.instant(
                "fleet_failover", TRACK_FLEET,
                args={"shard": name, "queued": len(pending)},
            )
        self.registry.counter("fleet.failover", shard=name).inc()
        for req in pending:
            try:
                self._enqueue(req)
            except OverloadError:
                pass  # accounted by _enqueue; client retry logic applies
        stats = {"relocated": 0, "spilled": 0, "lost": 0}
        doomed = sorted(
            key for key, where in self.placement.items() if where == name
        )
        survivors = bool(self.live_shards())
        for key in doomed:
            data = self._extract(victim, key)
            if data is None:
                stats["lost"] += 1
                self.failover_lost_pages += 1
                self.placement.pop(key, None)
                continue
            if not survivors:
                # Last shard standing died: the spill is the only
                # acknowledged home left.
                self.spill[key] = data
                self.placement.pop(key, None)
                stats["spilled"] += 1
                stats["relocated"] += 1
                self.relocated_pages += 1
                continue
            target = self.route(key)
            if self.shards[target].pipeline.store(key, data):
                self.placement[key] = target
            else:
                self.spill[key] = data
                self.placement.pop(key, None)
                stats["spilled"] += 1
            stats["relocated"] += 1
            self.relocated_pages += 1
        self.registry.counter("fleet.relocated_pages").inc(stats["relocated"])
        return stats

    def _extract(self, shard: FleetShard, key: int) -> Optional[bytes]:
        try:
            data = shard.pipeline.load(key)
        except ReproError:
            data = None
        if data is None:
            data = self.spill.pop(key, None)
        return data

    # -- direct access (final sweeps, diagnostics) ----------------------------

    def lookup(self, key: int) -> Optional[bytes]:
        """Out-of-band exclusive load, bypassing admission/queues (the
        harness's zero-acknowledged-loss sweep)."""
        if key in self.spill:
            return self.spill.pop(key)
        where = self.placement.get(key)
        if where is None:
            return None
        try:
            data = self.shards[where].pipeline.load(key)
        except ReproError:
            return None
        if data is not None:
            self.placement.pop(key, None)
        return data

    def snapshot(self) -> Dict[str, object]:
        return {
            "live_shards": sorted(self.live_shards()),
            "placement_entries": len(self.placement),
            "spill_entries": len(self.spill),
            "relocated_pages": self.relocated_pages,
            "failover_lost_pages": self.failover_lost_pages,
            "retry_budget": self.retry_budget.snapshot(),
            "brownout": self.brownout.snapshot(),
        }
