"""Open-loop traffic generation for the fleet harness.

Open-loop is the property that makes overload *real*: arrivals are
scheduled from an external Poisson process that does not slow down when
the service struggles (closed-loop generators self-throttle and hide
the very overload this PR exists to survive). The whole arrival
timeline is generated up front from one seeded RNG — a pure function of
the config — and scheduled as events on the shared
:class:`~repro.sim.events.EventScheduler`, so a campaign is
byte-reproducible.

Shape knobs: a piecewise-constant phase rate curve (steady / spike /
recovery), an optional diurnal sinusoid multiplying it, per-tenant
traffic shares, a store/load op mix, and Zipf-skewed key popularity for
loads (hot pages get re-faulted, like real swap traffic).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigError
from repro.sfm.page import PAGE_SIZE

#: Key-space stride separating tenants (keys stay globally unique).
TENANT_KEY_STRIDE = 1 << 24


@dataclass(frozen=True)
class TrafficPhase:
    """One piecewise-constant segment of the arrival-rate curve."""

    name: str
    duration_ns: float
    rate_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.duration_ns <= 0 or self.rate_multiplier <= 0:
            raise ConfigError("phase needs positive duration and multiplier")


@dataclass(frozen=True)
class Arrival:
    """One scheduled request-to-be: everything but the page bytes."""

    t_ns: float
    tenant: str
    op: str
    phase: str


def page_for(seed: int, key: int) -> bytes:
    """Deterministic page content keyed by (seed, key); every 5th page
    is incompressible noise so stores exercise tier fall-through."""
    if key % 5 == 4:
        state = ((seed * 1_000_003 + key) * 2654435761 + 1) & 0xFFFFFFFF
        out = bytearray(PAGE_SIZE)
        for i in range(PAGE_SIZE):
            state ^= (state << 13) & 0xFFFFFFFF
            state ^= state >> 17
            state ^= (state << 5) & 0xFFFFFFFF
            out[i] = state & 0xFF
        return bytes(out)
    unit = bytes([(seed + key * 7 + j) % 251 for j in range(64)])
    return (unit * (PAGE_SIZE // len(unit)))[:PAGE_SIZE]


def generate_arrivals(
    phases: Tuple[TrafficPhase, ...],
    base_rate_rps: float,
    tenant_shares: Dict[str, float],
    store_fraction: float,
    seed: int,
    diurnal_amplitude: float = 0.0,
    diurnal_period_ns: float = 50e6,
) -> List[Arrival]:
    """The full arrival schedule, sorted by time.

    Inter-arrival gaps are exponential at the *instantaneous* rate
    ``base_rate_rps * phase.multiplier * diurnal(t)``; tenant and op are
    i.i.d. draws from the shares / store fraction. Deterministic in
    ``seed``.
    """
    if base_rate_rps <= 0:
        raise ConfigError("base_rate_rps must be positive")
    if not 0.0 < store_fraction < 1.0:
        raise ConfigError("store_fraction must be in (0, 1)")
    if not phases:
        raise ConfigError("need at least one traffic phase")
    if not tenant_shares or any(v <= 0 for v in tenant_shares.values()):
        raise ConfigError("tenant shares must be positive")
    if not 0.0 <= diurnal_amplitude < 1.0:
        raise ConfigError("diurnal_amplitude must be in [0, 1)")
    rng = random.Random(seed)
    tenants = sorted(tenant_shares)
    weights = [tenant_shares[t] for t in tenants]
    arrivals: List[Arrival] = []
    t = 0.0
    phase_start = 0.0
    for phase in phases:
        phase_end = phase_start + phase.duration_ns
        if t < phase_start:
            t = phase_start
        while True:
            diurnal = 1.0 + diurnal_amplitude * math.sin(
                2.0 * math.pi * t / diurnal_period_ns
            )
            rate_per_ns = (
                base_rate_rps * phase.rate_multiplier * diurnal / 1e9
            )
            t += rng.expovariate(rate_per_ns)
            if t >= phase_end:
                break
            tenant = rng.choices(tenants, weights=weights)[0]
            op = "store" if rng.random() < store_fraction else "load"
            arrivals.append(
                Arrival(t_ns=t, tenant=tenant, op=op, phase=phase.name)
            )
        phase_start = phase_end
    return arrivals
