"""Capital cost of DFM and SFM over time (EQ2 and EQ3).

DFM pays its memory up front and then PCIe transfer energy plus static
DIMM power; SFM pays a provisioned-CPU share up front (EQ3.1) and then
(de)compression energy proportional to the swap rate. The paper's EQ2.2
scales idle-DIMM energy by ``GBSwappedPerMin / DIMMSIZE``; we charge the
physically meaningful static power of every provisioned DIMM instead and
note the deviation here (it is small either way: tens of dollars/year).
"""

from __future__ import annotations

from repro.costmodel.params import (
    HOURS_PER_YEAR,
    MINUTES_PER_YEAR,
    CostParams,
    MemoryKind,
)
from repro.errors import ConfigError


def _check_years(years: float) -> None:
    if years < 0:
        raise ConfigError("years must be non-negative")


def dfm_pcie_energy_kwh(
    params: CostParams, promotion_rate: float, years: float
) -> float:
    """EQ2.1: PCIe transfer energy for all swapped bytes."""
    _check_years(years)
    return (
        params.pcie_kwh_per_gb
        * params.gb_swapped_per_min(promotion_rate)
        * MINUTES_PER_YEAR
        * years
    )


def dfm_idle_energy_kwh(
    params: CostParams, kind: MemoryKind, years: float
) -> float:
    """Static power of the provisioned extra DIMMs (EQ2.2, see module
    docstring for the deviation from the printed form)."""
    _check_years(years)
    dimms = params.dfm_dimm_count(kind)
    return dimms * params.idle_dimm_w / 1000.0 * HOURS_PER_YEAR * years


def dfm_cost_usd(
    params: CostParams,
    promotion_rate: float,
    years: float,
    kind: MemoryKind = MemoryKind.DRAM,
) -> float:
    """EQ2: upfront memory purchase + operational energy cost."""
    upfront = params.extra_gb * params.memory_cost_per_gb(kind)
    energy_kwh = dfm_pcie_energy_kwh(
        params, promotion_rate, years
    ) + dfm_idle_energy_kwh(params, kind, years)
    return upfront + energy_kwh * params.electricity_cost_per_kwh


def sfm_cpu_cost_usd(params: CostParams, promotion_rate: float) -> float:
    """EQ3.1: provisioned-CPU cost, %CPUNeeded x purchase price."""
    return params.cpu_fraction_needed(promotion_rate) * params.cpu_purchase_price


def sfm_cost_usd(
    params: CostParams,
    promotion_rate: float,
    years: float,
    accelerated: bool = False,
) -> float:
    """EQ3: (de)compression energy over time + provisioned compute.

    ``accelerated=True`` prices the XFM variant: the NMA's power/throughput
    replace the CPU's, and no extra CPU is provisioned (offloads ride the
    refresh channel; the control plane is negligible).
    """
    _check_years(years)
    if accelerated:
        energy_per_gb = params.nma_energy_kwh_per_gb()
        compute_cost = 0.0
    else:
        energy_per_gb = params.cpu_energy_kwh_per_gb()
        compute_cost = sfm_cpu_cost_usd(params, promotion_rate)
    operational = (
        energy_per_gb
        * params.gb_swapped_per_min(promotion_rate)
        * MINUTES_PER_YEAR
        * years
        * params.electricity_cost_per_kwh
    )
    return compute_cost + operational
