"""Fleet-scale savings: the paper's motivation, quantified.

The introduction motivates XFM with fleet economics: DRAM is over 50% of
server cost and 75% of embodied carbon (§1), ~30% of fleet memory is cold
at a 120 s age threshold, and zswap-class compression roughly triples the
density of that cold data (§3.1, Google's deployment). This module turns
those constants into the questions an operator asks: across N servers,
how much DRAM does an SFM tier avoid buying, what does that save in
dollars and CO2e, and what does the data plane cost — CPU cycles priced
via EQ3, or an XFM accelerator per DIMM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.costmodel.capital import sfm_cost_usd
from repro.costmodel.carbon import sfm_emission_kg
from repro.costmodel.params import CostParams
from repro.errors import ConfigError


@dataclass(frozen=True)
class FleetConfig:
    """One homogeneous server fleet."""

    num_servers: int = 10_000
    dram_per_server_gb: float = 512.0
    #: Fraction of memory cold at the chosen age threshold (§3.1: ~30%).
    cold_fraction: float = 0.30
    #: Compression ratio achieved on cold pages (zstd-class: ~3x).
    compression_ratio: float = 3.0
    #: Fleet-average promotion rate (§3.1: ~15% at 120 s cold age).
    promotion_rate: float = 0.15
    #: DRAM share of server capital cost (§1: >50%).
    dram_cost_share: float = 0.50
    #: DRAM share of server embodied carbon (§1: ~75%).
    dram_carbon_share: float = 0.75

    def __post_init__(self) -> None:
        if self.num_servers < 1:
            raise ConfigError("num_servers must be >= 1")
        for name in ("cold_fraction", "dram_cost_share", "dram_carbon_share"):
            if not 0.0 < getattr(self, name) <= 1.0:
                raise ConfigError(f"{name} must be in (0, 1]")
        if self.compression_ratio <= 1.0:
            raise ConfigError("compression_ratio must exceed 1")


@dataclass
class FleetReport:
    """Fleet-wide savings over a deployment horizon."""

    config: FleetConfig
    horizon_years: float
    #: GB of DRAM purchases avoided fleet-wide.
    dram_avoided_gb: float
    #: Capital saved on that DRAM.
    capital_saved_usd: float
    #: Embodied emissions avoided on that DRAM.
    embodied_saved_kg: float
    #: Data-plane cost over the horizon (CPU or NMA).
    dataplane_cost_usd: float
    dataplane_emission_kg: float

    @property
    def net_usd(self) -> float:
        return self.capital_saved_usd - self.dataplane_cost_usd

    @property
    def net_kg(self) -> float:
        return self.embodied_saved_kg - self.dataplane_emission_kg

    @property
    def per_server_dram_saved_gb(self) -> float:
        return self.dram_avoided_gb / self.config.num_servers


def dram_avoided_per_server_gb(config: FleetConfig) -> float:
    """Memory an SFM tier frees on one server.

    Cold bytes shrink by the compression ratio: cold * (1 - 1/ratio) of
    each server's DRAM no longer needs to exist to hold the same data.
    """
    return (
        config.dram_per_server_gb
        * config.cold_fraction
        * (1.0 - 1.0 / config.compression_ratio)
    )


def fleet_savings(
    config: FleetConfig,
    params: CostParams = None,
    horizon_years: float = 5.0,
    accelerated: bool = False,
) -> FleetReport:
    """Fleet-wide dollars and CO2e over ``horizon_years``.

    ``accelerated=True`` prices the data plane as XFM (NMA energy, no
    provisioned CPUs); otherwise as the EQ3 CPU data plane.
    """
    if params is None:
        params = CostParams()
    if horizon_years <= 0:
        raise ConfigError("horizon must be positive")
    per_server_gb = dram_avoided_per_server_gb(config)
    total_gb = per_server_gb * config.num_servers
    capital = total_gb * params.dram_cost_per_gb
    embodied = total_gb * params.dram_kg_per_gb

    # Each server's SFM manages its cold region at the fleet promotion
    # rate; EQ3/EQ5 price its data plane.
    from dataclasses import replace

    server_params = replace(
        params, extra_gb=config.dram_per_server_gb * config.cold_fraction
    )
    dataplane_usd = config.num_servers * sfm_cost_usd(
        server_params, config.promotion_rate, horizon_years, accelerated
    )
    dataplane_kg = config.num_servers * sfm_emission_kg(
        server_params, config.promotion_rate, horizon_years, accelerated
    )
    return FleetReport(
        config=config,
        horizon_years=horizon_years,
        dram_avoided_gb=total_gb,
        capital_saved_usd=capital,
        embodied_saved_kg=embodied,
        dataplane_cost_usd=dataplane_usd,
        dataplane_emission_kg=dataplane_kg,
    )


def savings_summary(
    config: FleetConfig = None, horizon_years: float = 5.0
) -> Dict[str, FleetReport]:
    """CPU-SFM vs XFM-SFM fleet reports, side by side."""
    if config is None:
        config = FleetConfig()
    return {
        "sfm-cpu": fleet_savings(
            config, horizon_years=horizon_years, accelerated=False
        ),
        "sfm-xfm": fleet_savings(
            config, horizon_years=horizon_years, accelerated=True
        ),
    }
