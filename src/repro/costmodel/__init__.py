"""First-order cost and carbon model for DFM vs SFM (system S11, §3).

Implements EQ1–EQ5 of the paper with explicit, documented parameters:
capital cost of DRAM/PMem-based disaggregated far memory versus the
CPU-cycle (or accelerator) cost of software-defined far memory, and the
embodied + operational carbon of both. Constants stated in the paper are
used verbatim; the handful it omits (memory $/GB, CPU purchase price) are
calibrated so the published break-even claims hold — see
:mod:`~repro.costmodel.params` and DESIGN.md.
"""

from repro.costmodel.accel import integrated_accel_breakeven_promotion
from repro.costmodel.breakeven import breakeven_years, fig3_series
from repro.costmodel.capital import dfm_cost_usd, sfm_cost_usd
from repro.costmodel.carbon import dfm_emission_kg, sfm_emission_kg
from repro.costmodel.params import CostParams, MemoryKind

__all__ = [
    "CostParams",
    "MemoryKind",
    "breakeven_years",
    "dfm_cost_usd",
    "dfm_emission_kg",
    "fig3_series",
    "integrated_accel_breakeven_promotion",
    "sfm_cost_usd",
    "sfm_emission_kg",
]
