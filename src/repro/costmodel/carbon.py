"""Carbon footprint of DFM and SFM over time (EQ4 and EQ5).

Embodied emissions use Boavizta-derived constants (1.01 kg/GB DRAM,
0.62 kg/GB PMem, 0.625 kg per CPU core); operational emissions use the
2022 Southwest Power Pool grid intensity (479 g/kWh). Manufacturing
emissions of the *local* DRAM are excluded — identical on both sides.
"""

from __future__ import annotations

from repro.costmodel.capital import dfm_idle_energy_kwh
from repro.costmodel.params import MINUTES_PER_YEAR, CostParams, MemoryKind


def dfm_emission_kg(
    params: CostParams,
    promotion_rate: float,
    years: float,
    kind: MemoryKind = MemoryKind.DRAM,
) -> float:
    """EQ4: embodied memory emissions + operational idle-DIMM emissions."""
    embodied = params.extra_gb * params.memory_kg_per_gb(kind)
    operational = (
        dfm_idle_energy_kwh(params, kind, years) * params.grid_kg_per_kwh
    )
    return embodied + operational


def sfm_emission_kg(
    params: CostParams,
    promotion_rate: float,
    years: float,
    accelerated: bool = False,
) -> float:
    """EQ5: embodied provisioned-CPU emissions + (de)compression energy
    emissions.

    ``accelerated=True`` gives the XFM variant (the "ideal, accelerated
    SFM" of §3.1): NMA energy instead of CPU energy, and the buffer-device
    accelerator's embodied share is treated as negligible next to DRAM
    manufacturing (logic has an order of magnitude lower emissions, §1).
    """
    if accelerated:
        embodied = 0.0
        energy_per_gb = params.nma_energy_kwh_per_gb()
    else:
        embodied = (
            params.cpu_fraction_needed(promotion_rate)
            * params.cpu_cores
            * params.cpu_kg_per_core
        )
        energy_per_gb = params.cpu_energy_kwh_per_gb()
    operational = (
        energy_per_gb
        * params.gb_swapped_per_min(promotion_rate)
        * MINUTES_PER_YEAR
        * years
        * params.grid_kg_per_kwh
    )
    return embodied + operational
