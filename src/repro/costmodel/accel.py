"""On-chip accelerator offload model (§3.2's QAT discussion, experiment X1).

An integrated compression accelerator (QAT-class: 9.8 GBps compression,
13.3 GBps decompression measured in §3.2) removes the compression cycles
from the CPU but "comes at the cost of consuming a physical core to manage
the offload operations". It becomes worthwhile once the CPU cycles it
frees exceed one core's worth — the paper puts that crossover at a ~6%
average promotion rate for a 512 GB SFM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.costmodel.params import CostParams
from repro.errors import ConfigError

QAT_COMPRESS_GBPS = 9.8
QAT_DECOMPRESS_GBPS = 13.3


@dataclass(frozen=True)
class IntegratedAccelerator:
    """An on-chip (QAT-class) compression accelerator."""

    compress_gbps: float = QAT_COMPRESS_GBPS
    decompress_gbps: float = QAT_DECOMPRESS_GBPS
    #: Physical cores consumed driving the offload queue.
    management_cores: float = 1.0

    def can_sustain(self, params: CostParams, promotion_rate: float) -> bool:
        """Whether the engine keeps up with the swap rate (§3.2: a QAT can
        absorb a 512 GB SFM even at 100% promotion)."""
        gbps = params.gb_swapped_per_min(promotion_rate) / 60.0
        return gbps <= min(self.compress_gbps, self.decompress_gbps)


def cores_needed_for_sfm(params: CostParams, promotion_rate: float) -> float:
    """CPU cores the software data plane consumes at this promotion rate."""
    return params.cpu_fraction_needed(promotion_rate) * params.cpu_cores


def integrated_accel_breakeven_promotion(
    params: Optional[CostParams] = None,
    accelerator: Optional[IntegratedAccelerator] = None,
) -> float:
    """Promotion rate above which the integrated accelerator pays off:
    the software data plane's core consumption exceeds the accelerator's
    management-core cost. ~5% with the paper's constants (the paper quotes
    6% from its cost model)."""
    if params is None:
        params = CostParams()
    if accelerator is None:
        accelerator = IntegratedAccelerator()
    # cores(promo) is linear in promo: solve cores(promo) = management_cores.
    cores_at_full = cores_needed_for_sfm(params, 1.0)
    if cores_at_full <= 0:
        raise ConfigError("degenerate CPU parameters")
    return accelerator.management_cores / cores_at_full
