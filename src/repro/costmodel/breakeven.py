"""Break-even solver and the Fig. 3 series generator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.costmodel.capital import dfm_cost_usd, sfm_cost_usd
from repro.costmodel.carbon import dfm_emission_kg, sfm_emission_kg
from repro.costmodel.params import CostParams, MemoryKind
from repro.errors import ConfigError


def breakeven_years(
    cost_a: Callable[[float], float],
    cost_b: Callable[[float], float],
    horizon_years: float = 50.0,
    tolerance: float = 1e-4,
) -> Optional[float]:
    """First year at which ``cost_a`` (initially cheaper) reaches
    ``cost_b``; None if it never does within the horizon."""
    lo, hi = 0.0, horizon_years
    gap = lambda t: cost_a(t) - cost_b(t)  # noqa: E731 - local one-liner
    if gap(lo) > 0:
        return 0.0
    if gap(hi) < 0:
        return None
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if gap(mid) < 0:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def sfm_vs_dfm_cost_breakeven(
    params: CostParams,
    promotion_rate: float,
    kind: MemoryKind = MemoryKind.DRAM,
    accelerated: bool = False,
) -> Optional[float]:
    """Years until the SFM's cumulative cost reaches the DFM's (8.5 years
    at 100% promotion vs DRAM DFM with the calibrated defaults)."""
    return breakeven_years(
        lambda t: sfm_cost_usd(params, promotion_rate, t, accelerated),
        lambda t: dfm_cost_usd(params, promotion_rate, t, kind),
    )


def sfm_vs_dfm_emission_breakeven(
    params: CostParams,
    promotion_rate: float,
    kind: MemoryKind = MemoryKind.DRAM,
    accelerated: bool = False,
) -> Optional[float]:
    """Years until the SFM's cumulative emissions reach the DFM's."""
    return breakeven_years(
        lambda t: sfm_emission_kg(params, promotion_rate, t, accelerated),
        lambda t: dfm_emission_kg(params, promotion_rate, t, kind),
    )


@dataclass
class Fig3Series:
    """One normalized line of Fig. 3."""

    label: str
    years: List[float]
    #: Value normalized to the DRAM-DFM at the same year.
    normalized: List[float]


def fig3_series(
    params: Optional[CostParams] = None,
    years: Sequence[float] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
    promotion_rates: Sequence[float] = (0.2, 1.0),
    metric: str = "cost",
) -> Dict[str, Fig3Series]:
    """Regenerate Fig. 3's series, normalized to the DRAM-based DFM.

    ``metric`` is ``"cost"`` (capital, USD) or ``"emission"`` (kgCO2e).
    Series: DFM-DRAM (the 1.0 reference), DFM-PMem, and SFM at each
    promotion rate, CPU and XFM-accelerated variants.
    """
    if params is None:
        params = CostParams()
    if metric == "cost":
        dfm_fn, sfm_fn = dfm_cost_usd, sfm_cost_usd
    elif metric == "emission":
        dfm_fn, sfm_fn = dfm_emission_kg, sfm_emission_kg
    else:
        raise ConfigError(f"metric must be cost/emission, got {metric!r}")

    year_list = list(years)
    reference = [
        dfm_fn(params, 1.0, t, MemoryKind.DRAM) for t in year_list
    ]
    out: Dict[str, Fig3Series] = {
        "dfm-dram": Fig3Series(
            "DFM (DRAM)", year_list, [1.0] * len(year_list)
        ),
        "dfm-pmem": Fig3Series(
            "DFM (PMem)",
            year_list,
            [
                dfm_fn(params, 1.0, t, MemoryKind.PMEM) / ref
                for t, ref in zip(year_list, reference)
            ],
        ),
    }
    for rate in promotion_rates:
        pct = int(round(rate * 100))
        out[f"sfm-{pct}"] = Fig3Series(
            f"SFM ({pct}% promotion)",
            year_list,
            [
                sfm_fn(params, rate, t, False) / ref
                for t, ref in zip(year_list, reference)
            ],
        )
        out[f"sfm-xfm-{pct}"] = Fig3Series(
            f"XFM-accelerated SFM ({pct}% promotion)",
            year_list,
            [
                sfm_fn(params, rate, t, True) / ref
                for t, ref in zip(year_list, reference)
            ],
        )
    return out
