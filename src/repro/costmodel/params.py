"""Parameters of the §3 analytical model.

Constants the paper states explicitly (and we use verbatim):

* PCIe access energy 88 pJ/B = 2.44e-8 kWh/GB (EQ2.1);
* 4 W static power per extra DIMM (EQ2.2);
* $0.12/kWh electricity (EnergyBot);
* Xeon E5-2670: 115 W TDP, 2.6 GHz, 8 cores;
* CCPerGB = 7.65e9 cycles/GB, the zstd/lzo average;
* 64 GB DRAM DIMMs, 512 GB PMem DIMMs;
* emissions: 1.01 kgCO2e/GB DRAM, 0.62 kgCO2e/GB PMem, 0.625 kgCO2e per
  CPU core (Boavizta), 479 gCO2e/kWh grid (Southwest Power Pool, 2022).

Constants the paper uses but does not print (calibrated; see DESIGN.md):

* DRAM price $8.79/GB — 2023 server-RDIMM street price; with the $500 CPU
  price below, this reproduces the paper's 8.5-year cost break-even of a
  100%-promotion SFM against a DRAM DFM.
* PMem price $4.00/GB — half of DRAM, matching the paper's 2x-density
  assumption and Optane street prices.
* CPU purchase price $500 per 8-core E5-2670-class socket.

The accelerated-SFM (XFM) variant uses the prototype's 7.024 W power
(Table 3) at the 14.8 GBps memory-customized engine rate (§7).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro._units import (
    DAYS_PER_YEAR,
    HOURS_PER_DAY,
    MINUTES_PER_HOUR,
)
from repro.errors import ConfigError

MINUTES_PER_YEAR = MINUTES_PER_HOUR * HOURS_PER_DAY * DAYS_PER_YEAR
HOURS_PER_YEAR = HOURS_PER_DAY * DAYS_PER_YEAR


class MemoryKind(enum.Enum):
    DRAM = "dram"
    PMEM = "pmem"


@dataclass(frozen=True)
class CostParams:
    """All knobs of the first-order model, with paper-faithful defaults."""

    # -- far memory sizing -------------------------------------------------
    extra_gb: float = 512.0
    dram_dimm_gb: float = 64.0
    pmem_dimm_gb: float = 512.0

    # -- prices --------------------------------------------------------------
    dram_cost_per_gb: float = 8.79
    pmem_cost_per_gb: float = 4.00
    cpu_purchase_price: float = 500.0
    electricity_cost_per_kwh: float = 0.12

    # -- energies ---------------------------------------------------------------
    pcie_kwh_per_gb: float = 2.44e-8
    idle_dimm_w: float = 4.0

    # -- CPU (Xeon E5-2670) ---------------------------------------------------
    cpu_freq_hz: float = 2.6e9
    cpu_cores: int = 8
    cpu_tdp_w: float = 115.0
    #: Average cycles to (de)compress one GB (zstd/lzo mean, EQ3.4).
    cc_per_gb: float = 7.65e9

    # -- XFM accelerator variant --------------------------------------------------
    nma_power_w: float = 7.024
    nma_throughput_gbps: float = 14.8

    # -- emissions -------------------------------------------------------------------
    dram_kg_per_gb: float = 1.01
    pmem_kg_per_gb: float = 0.62
    cpu_kg_per_core: float = 0.625
    grid_kg_per_kwh: float = 0.479

    def __post_init__(self) -> None:
        if self.extra_gb <= 0:
            raise ConfigError("extra_gb must be positive")
        if self.cpu_cores < 1:
            raise ConfigError("cpu_cores must be >= 1")

    # -- EQ1 ---------------------------------------------------------------------------

    def gb_swapped_per_min(self, promotion_rate: float) -> float:
        """EQ1: GBSwappedPerMin = ExtraGB x PromotionRate."""
        if not 0.0 <= promotion_rate <= 1.0:
            raise ConfigError("promotion rate must be in [0, 1]")
        return self.extra_gb * promotion_rate

    def gb_swapped_per_year(self, promotion_rate: float) -> float:
        return self.gb_swapped_per_min(promotion_rate) * MINUTES_PER_YEAR

    # -- derived CPU quantities (EQ3.2-3.4) -----------------------------------------------

    def cc_available_per_min(self) -> float:
        """EQ3.3: cycles one CPU provides per minute."""
        return self.cpu_freq_hz * self.cpu_cores * 60.0

    def cc_needed_per_min(self, promotion_rate: float) -> float:
        """EQ3.4: cycles needed per minute for (de)compression."""
        return self.gb_swapped_per_min(promotion_rate) * self.cc_per_gb

    def cpu_fraction_needed(self, promotion_rate: float) -> float:
        """EQ3.2: %CPUNeeded (may exceed 1: multiple sockets)."""
        return self.cc_needed_per_min(promotion_rate) / self.cc_available_per_min()

    def cpu_compress_throughput_gbps(self) -> float:
        """Whole-socket (de)compression throughput."""
        return self.cpu_freq_hz * self.cpu_cores / self.cc_per_gb

    def cpu_energy_kwh_per_gb(self) -> float:
        """EnergyPerGB for the CPU data plane (EQ3's prefactor)."""
        joules_per_gb = self.cpu_tdp_w / self.cpu_compress_throughput_gbps()
        return joules_per_gb / 3.6e6

    def nma_energy_kwh_per_gb(self) -> float:
        """EnergyPerGB when XFM's NMA performs the (de)compression."""
        joules_per_gb = self.nma_power_w / self.nma_throughput_gbps
        return joules_per_gb / 3.6e6

    # -- DFM DIMM counts ----------------------------------------------------------------------

    def dfm_dimm_count(self, kind: MemoryKind) -> int:
        size = (
            self.dram_dimm_gb if kind is MemoryKind.DRAM else self.pmem_dimm_gb
        )
        return int(-(-self.extra_gb // size))

    def memory_cost_per_gb(self, kind: MemoryKind) -> float:
        return (
            self.dram_cost_per_gb
            if kind is MemoryKind.DRAM
            else self.pmem_cost_per_gb
        )

    def memory_kg_per_gb(self, kind: MemoryKind) -> float:
        return (
            self.dram_kg_per_gb
            if kind is MemoryKind.DRAM
            else self.pmem_kg_per_gb
        )
