"""Golden-snapshot renderers for the analysis layer.

The fig. 8 and fig. 12 benches and the ``tests/validation`` golden
tests must render byte-identical text from the same report objects, so
the table formatting lives here rather than in the bench bodies. A
refactor that shifts any number in these tables shows up as a golden
diff against ``benchmarks/results/*.txt`` instead of silently drifting
the paper reproduction.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.report import format_table
from repro.core.emulator import EmulatorReport
from repro.core.multichannel import MultiChannelReport

#: The exact parameters the committed golden files were generated with.
FIG8_GOLDEN_KWARGS = {"pages_per_corpus": 6}
FIG12_GOLDEN_KWARGS = {
    "promotion_rates": (0.5, 1.0),
    "spm_sizes_mib": (1, 2, 4, 8),
    "accesses_per_ref": (1, 2, 3),
    "sim_time_s": 0.08,
}


#: The exact target config the committed replay goldens were replayed
#: against (``benchmarks/results/replay_*.txt``): a deliberately small
#: pipeline (5/5/30 pages via the factory's 1/8-1/8-3/4 split) so the
#: pinned numbers cover demotion cascades through all three tiers.
REPLAY_GOLDEN_BACKEND = "pipeline"
REPLAY_GOLDEN_KWARGS = {"capacity_bytes": 40 * 4096}

#: Scenarios with committed replay goldens -> their golden filenames.
REPLAY_GOLDEN_FILES = {
    "kv-cache": "replay_kv_cache.txt",
    "web-session": "replay_web_session.txt",
}


def replay_summary(report) -> str:
    """The replay golden exactly as the snapshot tests pin it: the CLI's
    :func:`repro.scenarios.replayer.format_report` rendering. A diff
    against ``benchmarks/results/replay_*.txt`` means replay semantics,
    the shipped artifact, or a backend's accounting moved."""
    from repro.scenarios.replayer import format_report

    return format_report(report)


def fig8_table(reports: Sequence[MultiChannelReport]) -> str:
    """The Fig. 8 table exactly as ``bench_fig08`` writes it."""
    rows = []
    for report in reports:
        rows.append(
            [
                report.corpus,
                round(report.stored_ratio[1], 2),
                round(report.stored_ratio[2], 2),
                round(report.stored_ratio[4], 2),
                round(100 * report.ratio_retention(4), 1),
                round(100 * report.savings_reduction_vs_inorder(2), 1),
                round(100 * report.savings_reduction_vs_inorder(4), 1),
            ]
        )
    compressible = [r for r in reports if r.stored_ratio[1] > 1.3]
    mean_retention = sum(
        r.ratio_retention(4) for r in compressible
    ) / len(compressible)
    mean_red2 = sum(
        r.savings_reduction_vs_inorder(2) for r in compressible
    ) / len(compressible)
    mean_red4 = sum(
        r.savings_reduction_vs_inorder(4) for r in compressible
    ) / len(compressible)
    table = format_table(
        [
            "corpus",
            "ratio 1-DIMM",
            "ratio 2-DIMM",
            "ratio 4-DIMM",
            "retained@4 %",
            "savings loss@2 %",
            "savings loss@4 %",
        ],
        rows,
        title="Fig. 8 — multi-channel compression ratios (deflate)",
    )
    table += (
        f"\nmean ratio retained @4 DIMMs (compressible corpora):"
        f" {100 * mean_retention:.1f}% (paper: 86.2%)"
        f"\nmean savings reduction @2: {100 * mean_red2:.1f}% (paper: ~5%)"
        f"\nmean savings reduction @4: {100 * mean_red4:.1f}% (paper: ~14%)"
    )
    return table


def fig12_table(grid: Dict[float, List[EmulatorReport]]) -> str:
    """The Fig. 12 table exactly as ``bench_fig12`` writes it."""
    rows = []
    for promo, reports in grid.items():
        for report in reports:
            cfg = report.config
            p95 = report.latency_percentiles_ms.get(95, 0.0)
            rows.append(
                [
                    f"{int(promo * 100)}%",
                    cfg.spm_bytes >> 20,
                    cfg.accesses_per_ref,
                    round(100 * report.fallback_fraction, 2),
                    round(100 * report.random_fraction, 1),
                    round(report.nma_bandwidth_bps / 1e9, 3),
                    round(100 * report.conditional_energy_saving, 2),
                    round(p95 * 1000, 1),
                ]
            )
    return format_table(
        [
            "promotion",
            "SPM MiB",
            "acc/REF",
            "fallback %",
            "random %",
            "NMA GBps",
            "energy saved %",
            "p95 latency us",
        ],
        rows,
        title="Fig. 12 — CPU fallbacks (512 GB SFM, per-rank emulation)",
    )
