"""Figure/table data generators shared by the benchmarks and examples."""

from repro.analysis.figures import (
    fig1_bandwidth_series,
    fig8_ratios,
    fig11_interference,
    fig12_fallbacks,
    max_supported_sfm_gb,
    refresh_budget_summary,
)
from repro.analysis.report import format_table
from repro.analysis.tables import table1_rows, table2_rows, table3_rows

__all__ = [
    "fig11_interference",
    "fig12_fallbacks",
    "fig1_bandwidth_series",
    "fig8_ratios",
    "format_table",
    "max_supported_sfm_gb",
    "refresh_budget_summary",
    "table1_rows",
    "table2_rows",
    "table3_rows",
]
