"""Data generators for each figure of the paper's evaluation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro._units import SECONDS_PER_MINUTE
from repro.core.emulator import EmulatorReport, fallback_sweep
from repro.core.multichannel import MultiChannelReport, measure_corpus
from repro.dram.device import DDR5_32GB, PAGE_SIZE, DramDeviceConfig, timings_for_device
from repro.interference.corun import (
    CorunConfig,
    CorunResult,
    SfmMode,
    simulate_corun,
)
from repro.workloads.corpus import CORPUS_NAMES, corpus_pages


# -- Fig. 1: SFM bandwidth vs rank count ------------------------------------


@dataclass
class Fig1Point:
    """One rank-count point of Fig. 1."""

    num_ranks: int
    sfm_capacity_gb: float
    #: DDR-channel traffic of a CPU-side SFM (GBps) — grows with capacity.
    cpu_sfm_channel_gbps: float
    #: Available DDR channel bandwidth (GBps).
    channel_peak_gbps: float
    #: Per-rank NMA demand under XFM (GBps) — constant per rank.
    xfm_per_rank_gbps: float
    #: Per-rank refresh side-channel budget (GBps).
    side_channel_per_rank_gbps: float

    @property
    def cpu_utilization(self) -> float:
        return self.cpu_sfm_channel_gbps / self.channel_peak_gbps

    @property
    def xfm_utilization(self) -> float:
        return self.xfm_per_rank_gbps / self.side_channel_per_rank_gbps


def side_channel_gbps(
    device: DramDeviceConfig = DDR5_32GB,
    accesses_per_ref: Optional[int] = None,
) -> float:
    """Per-rank NMA bandwidth from refresh-window accesses."""
    timings = timings_for_device(device)
    budget = (
        accesses_per_ref
        if accesses_per_ref is not None
        else device.conditional_accesses_per_trfc(timings)
    )
    return device.nma_bandwidth_bps(timings, budget) / 1e9


def fig1_bandwidth_series(
    rank_counts: Sequence[int] = (4, 8, 16, 32, 64),
    gb_per_rank: float = 32.0,
    sfm_fraction: float = 0.5,
    promotion_rate: float = 1.0,
    compression_ratio: float = 3.0,
    channel_gbps: float = 25.0,
    num_channels: int = 4,
    device: DramDeviceConfig = DDR5_32GB,
) -> List[Fig1Point]:
    """Fig. 1: with the channel count fixed, CPU-side SFM traffic grows
    with rank count (and hence SFM capacity) toward the DDR channel limit;
    XFM's per-rank side channel scales with the ranks instead."""
    side = side_channel_gbps(device)
    out = []
    for ranks in rank_counts:
        capacity_gb = ranks * gb_per_rank * sfm_fraction
        swap_gbps = capacity_gb * promotion_rate / SECONDS_PER_MINUTE
        channel_traffic = 2.0 * swap_gbps * (1.0 + 1.0 / compression_ratio)
        channels = num_channels
        per_rank = channel_traffic / ranks
        out.append(
            Fig1Point(
                num_ranks=ranks,
                sfm_capacity_gb=capacity_gb,
                cpu_sfm_channel_gbps=channel_traffic,
                channel_peak_gbps=channels * channel_gbps,
                xfm_per_rank_gbps=per_rank,
                side_channel_per_rank_gbps=side,
            )
        )
    return out


def max_supported_sfm_gb(
    num_ranks: int = 16,
    promotion_rate: float = 1.0,
    compression_ratio: float = 3.0,
    device: DramDeviceConfig = DDR5_32GB,
    accesses_per_ref: Optional[int] = None,
) -> float:
    """Largest SFM capacity whose NMA traffic fits in the refresh side
    channel (the paper's "up to 1 TB" claim for a two-DIMM-per-channel,
    four-channel class server)."""
    side = side_channel_gbps(device, accesses_per_ref)
    traffic_per_gb = (
        2.0 * (1.0 + 1.0 / compression_ratio) / SECONDS_PER_MINUTE
    ) * promotion_rate
    return num_ranks * side / traffic_per_gb


# -- Fig. 8: multi-channel compression ratios -----------------------------------


def fig8_ratios(
    corpora: Sequence[str] = tuple(CORPUS_NAMES),
    pages_per_corpus: int = 8,
    dimm_counts: Sequence[int] = (1, 2, 4),
    seed: int = 42,
) -> List[MultiChannelReport]:
    """Compression ratio of page-divided corpora at interleave granularity."""
    return [
        measure_corpus(
            corpus,
            corpus_pages(corpus, pages_per_corpus, seed=seed),
            dimm_counts=dimm_counts,
        )
        for corpus in corpora
    ]


# -- Fig. 11: co-run interference ---------------------------------------------------


def fig11_interference(
    configs: Optional[Dict[str, CorunConfig]] = None,
) -> Dict[str, Dict[SfmMode, CorunResult]]:
    """SPEC + SFM antagonist co-runs under the three configurations."""
    if configs is None:
        configs = {"default-mix": CorunConfig()}
    return {
        name: {mode: simulate_corun(config, mode) for mode in SfmMode}
        for name, config in configs.items()
    }


# -- Fig. 12: CPU fallbacks ------------------------------------------------------------


def fig12_fallbacks(
    promotion_rates: Sequence[float] = (0.5, 1.0),
    spm_sizes_mib: Sequence[int] = (1, 2, 4, 8),
    accesses_per_ref: Sequence[int] = (1, 2, 3),
    sim_time_s: float = 0.1,
) -> Dict[float, List[EmulatorReport]]:
    """The Fig. 12 grid: fallback rate vs SPM size x access budget."""
    return {
        rate: fallback_sweep(
            spm_sizes_mib=spm_sizes_mib,
            accesses_per_ref=accesses_per_ref,
            promotion_rate=rate,
            sim_time_s=sim_time_s,
        )
        for rate in promotion_rates
    }


# -- §4.3 refresh-budget arithmetic (experiment X4) --------------------------------------


def refresh_budget_summary(
    trfc_ns: float = 300.0,
    retention_ms: float = 32.0,
    sfm_capacity_gb: float = 512.0,
    promotion_rate: float = 0.2,
    num_dimms: int = 8,
    compression_ratio: float = 3.0,
) -> Dict[str, float]:
    """The §4.3 worked numbers: ~2.46 ms locked per retention (~8%), and
    ~426 MBps of NMA bandwidth needed per DIMM for a 512 GB SFM."""
    refs = 8192
    locked_ms = refs * trfc_ns / 1e6
    swap_gbps = sfm_capacity_gb * promotion_rate / SECONDS_PER_MINUTE
    # The paper's 426 MBps counts the page read + page write per swap;
    # the ratio-adjusted figure additionally counts compressed blobs.
    per_dimm_mbps = 2.0 * swap_gbps / num_dimms * 1000.0
    per_dimm_with_blobs_mbps = (
        2.0 * swap_gbps * (1.0 + 1.0 / compression_ratio) / num_dimms * 1000.0
    )
    return {
        "locked_ms_per_retention": locked_ms,
        "locked_fraction": locked_ms / retention_ms,
        "trefi_us": retention_ms * 1000.0 / refs,
        "per_dimm_nma_mbps": per_dimm_mbps,
        "per_dimm_with_blobs_mbps": per_dimm_with_blobs_mbps,
        "page_batch_delay_us": retention_ms * 1000.0 / refs,
    }
