"""Plot-ready export of figure data (CSV / JSON).

The benches render ASCII tables; downstream users replotting the figures
want raw series. These helpers dump each figure's data as CSV rows or a
JSON document, with stable column names.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Sequence

from repro.errors import ConfigError


def rows_to_csv(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render rows as CSV text."""
    if any(len(row) != len(headers) for row in rows):
        raise ConfigError("row width does not match headers")
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    writer.writerows(rows)
    return buffer.getvalue()


def fig1_csv(**kwargs) -> str:
    from repro.analysis.figures import fig1_bandwidth_series

    points = fig1_bandwidth_series(**kwargs)
    return rows_to_csv(
        [
            "num_ranks",
            "sfm_capacity_gb",
            "cpu_sfm_channel_gbps",
            "channel_peak_gbps",
            "xfm_per_rank_gbps",
            "side_channel_per_rank_gbps",
        ],
        [
            [
                p.num_ranks,
                p.sfm_capacity_gb,
                p.cpu_sfm_channel_gbps,
                p.channel_peak_gbps,
                p.xfm_per_rank_gbps,
                p.side_channel_per_rank_gbps,
            ]
            for p in points
        ],
    )


def fig3_json(metric: str = "cost", **kwargs) -> str:
    from repro.costmodel import fig3_series

    series = fig3_series(metric=metric, **kwargs)
    return json.dumps(
        {
            key: {
                "label": value.label,
                "years": value.years,
                "normalized": value.normalized,
            }
            for key, value in series.items()
        },
        indent=2,
    )


def fig8_csv(**kwargs) -> str:
    from repro.analysis.figures import fig8_ratios

    reports = fig8_ratios(**kwargs)
    rows: List[list] = []
    for report in reports:
        for dimms, ratio in sorted(report.stored_ratio.items()):
            rows.append(
                [
                    report.corpus,
                    dimms,
                    ratio,
                    report.payload_ratio[dimms],
                    report.savings(dimms),
                ]
            )
    return rows_to_csv(
        ["corpus", "num_dimms", "stored_ratio", "payload_ratio", "savings"],
        rows,
    )


def fig11_json(**kwargs) -> str:
    from repro.analysis.figures import fig11_interference

    results = fig11_interference(**kwargs)
    return json.dumps(
        {
            mix: {
                mode.value: {
                    "spec_mean_degradation_pct": result.spec_mean_degradation_pct,
                    "spec_max_degradation_pct": result.spec_max_degradation_pct,
                    "sfm_degradation_pct": result.sfm_degradation_pct,
                    "combined_throughput": result.combined_throughput(),
                    "workloads": {
                        w.name: w.degradation_pct for w in result.workloads
                    },
                }
                for mode, result in by_mode.items()
            }
            for mix, by_mode in results.items()
        },
        indent=2,
    )


def fig12_csv(**kwargs) -> str:
    from repro.analysis.figures import fig12_fallbacks

    grid = fig12_fallbacks(**kwargs)
    rows = []
    for promotion, reports in grid.items():
        for report in reports:
            rows.append(
                [
                    promotion,
                    report.config.spm_bytes,
                    report.config.accesses_per_ref,
                    report.fallback_fraction,
                    report.random_fraction,
                    report.nma_bandwidth_bps,
                    report.conditional_energy_saving,
                ]
            )
    return rows_to_csv(
        [
            "promotion_rate",
            "spm_bytes",
            "accesses_per_ref",
            "fallback_fraction",
            "random_fraction",
            "nma_bandwidth_bps",
            "conditional_energy_saving",
        ],
        rows,
    )


EXPORTERS: Dict[str, object] = {
    "fig1.csv": fig1_csv,
    "fig3.json": fig3_json,
    "fig8.csv": fig8_csv,
    "fig11.json": fig11_json,
    "fig12.csv": fig12_csv,
}
