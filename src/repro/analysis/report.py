"""Plain-text table rendering for bench/example output."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_stats(stats: Union[object, Sequence], title: str = "") -> str:
    """Render one stats facade — or merge a sequence of same-typed ones —
    as a two-column table.

    This is the single stats-aggregation path for report output: callers
    hand over :class:`~repro.telemetry.stats.StatsFacade` instances
    (``SwapStats``, ``DriverStats``, ...) and the facade's ``merged`` /
    ``as_dict`` do the combining, instead of each report re-summing
    fields by hand.
    """
    if isinstance(stats, (list, tuple)):
        if not stats:
            raise ValueError("format_stats needs at least one stats object")
        stats = type(stats[0]).merged(stats)
    return format_table(
        ["counter", "value"],
        [[name, value] for name, value in stats.as_dict().items()],
        title=title,
    )


def format_latency_table(rows: Sequence[dict], title: str = "") -> str:
    """Render op-class x tier latency percentiles (microseconds).

    ``rows`` are :func:`repro.telemetry.quantiles.collect_percentiles`
    dicts: ``op``/``tier``/``count``/``mean`` plus the standard
    percentile keys in nanoseconds; rendered in us so the pipeline rows
    and device rows share a readable scale.
    """
    if not rows:
        return "(no latency observations recorded)"
    quantile_keys = [
        key
        for key in rows[0]
        if key not in ("op", "tier", "count", "mean")
    ]
    headers = ["op", "tier", "count", "mean_us"] + [
        f"{key}_us" for key in quantile_keys
    ]
    table_rows = [
        [row["op"], row["tier"], row["count"], row["mean"] / 1e3]
        + [row[key] / 1e3 for key in quantile_keys]
        for row in rows
    ]
    return format_table(headers, table_rows, title=title)


def format_tier_stats(pipeline, title: str = "") -> str:
    """Render a :class:`~repro.tiering.pipeline.TierPipeline` as one
    column per tier (plus a merged total), one row per swap counter and
    occupancy figure — the per-tier companion of :func:`format_stats`."""
    names = list(pipeline.tier_names)
    tiers = list(pipeline.tiers)
    per_tier = [tier.stats.as_dict() for tier in tiers]
    rows: List[List] = []
    for field in per_tier[0]:
        values = [stats[field] for stats in per_tier]
        if not any(values):
            continue
        rows.append([field] + values + [sum(values)])
    rows.append(
        ["stored_pages"]
        + [tier.stored_pages() for tier in tiers]
        + [pipeline.stored_pages()]
    )
    rows.append(
        ["used_bytes"]
        + [tier.used_bytes() for tier in tiers]
        + [pipeline.used_bytes()]
    )
    rows.append(
        ["capacity_bytes"]
        + [tier.capacity_bytes for tier in tiers]
        + [pipeline.capacity_bytes]
    )
    rows.append(
        ["ledger_bytes"]
        + [sum(tier.ledger.snapshot().values()) for tier in tiers]
        + [sum(pipeline.ledger.snapshot().values())]
    )
    return format_table(["counter"] + names + ["total"], rows, title=title)
