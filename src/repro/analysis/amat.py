"""Average memory access time (AMAT) across far-memory tiers.

The qualitative latency story of §2/§3 — local DRAM, then DFM's one link
round trip, then SFM's decompression on the fault path, with prefetching
hiding far-memory latency for predictable patterns — expressed as the
standard hierarchical AMAT so configurations can be compared numerically.

``AMAT = local_hit * t_local + far_access * (prefetch_hit * t_local +
(1 - prefetch_hit) * t_fault)`` where ``t_fault`` is tier-specific.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dfm.interconnect import CXL_LINK, InterconnectModel
from repro.errors import ConfigError
from repro.sfm.page import PAGE_SIZE


@dataclass(frozen=True)
class TierLatency:
    """Fault-path service time of one far-memory tier, per 4 KiB page."""

    name: str
    fault_latency_s: float

    def __post_init__(self) -> None:
        if self.fault_latency_s < 0:
            raise ConfigError("fault latency must be non-negative")


def sfm_tier(
    decompress_cycles_per_byte: float = 2.0,
    cpu_freq_hz: float = 2.6e9,
    fault_overhead_s: float = 5e-6,
) -> TierLatency:
    """CPU-SFM fault: page-fault plumbing + software decompression (the
    §6 CPU_Fallback path; zstd-class decode)."""
    decompress = decompress_cycles_per_byte * PAGE_SIZE / cpu_freq_hz
    return TierLatency(name="sfm-cpu", fault_latency_s=fault_overhead_s + decompress)


def dfm_tier(
    link: InterconnectModel = CXL_LINK, fault_overhead_s: float = 1e-6
) -> TierLatency:
    """DFM fault: one link transfer (CXL-class loads may even avoid the
    fault entirely; the overhead term covers the mapping path)."""
    return TierLatency(
        name=f"dfm-{link.name}",
        fault_latency_s=fault_overhead_s + link.page_swap_latency_s(PAGE_SIZE),
    )


def xfm_tier(
    sfm: TierLatency = None,
) -> TierLatency:
    """XFM's *fault* path is the CPU's (§6: do_offload defaults off on
    demand faults) — XFM wins by raising the prefetch hit rate, not by
    shortening the miss."""
    base = sfm if sfm is not None else sfm_tier()
    return TierLatency(name="xfm", fault_latency_s=base.fault_latency_s)


@dataclass(frozen=True)
class AmatConfig:
    """Access mix over the memory hierarchy."""

    local_latency_s: float = 90e-9
    #: Fraction of page-touches that land in far memory.
    far_access_fraction: float = 0.02
    #: Fraction of far touches a prefetcher promoted in time.
    prefetch_hit_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("far_access_fraction", "prefetch_hit_rate"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1]")


def amat_s(config: AmatConfig, tier: TierLatency) -> float:
    """Average access latency for the given mix and tier."""
    fault = (1.0 - config.prefetch_hit_rate) * tier.fault_latency_s
    hidden = config.prefetch_hit_rate * config.local_latency_s
    return (
        (1.0 - config.far_access_fraction) * config.local_latency_s
        + config.far_access_fraction * (hidden + fault)
    )


def slowdown_vs_local(config: AmatConfig, tier: TierLatency) -> float:
    """AMAT relative to an all-local configuration (>= 1)."""
    return amat_s(config, tier) / config.local_latency_s
