"""Row generators for the paper's tables."""

from __future__ import annotations

from typing import List, Sequence

from repro.dram.device import (
    DDR5_16GB,
    DDR5_32GB,
    DDR5_8GB,
    DEVICE_TRFC_NS,
    DramDeviceConfig,
    timings_for_device,
)
from repro.hwmodel.fpga import FpgaDesign, xfm_fpga_design

TABLE1_HEADERS = [
    "Device",
    "#Rows per bank",
    "#Banks per chip",
    "tRFC (ns)",
    "#Rows ref'd per tRFC",
    "#Subarrays per bank",
    "Cond. 4KiB accesses per tRFC",
]


def table1_rows(
    devices: Sequence[DramDeviceConfig] = (DDR5_8GB, DDR5_16GB, DDR5_32GB),
) -> List[list]:
    """Table 1 plus the §5 conditional-access capacity column."""
    rows = []
    for device in devices:
        timings = timings_for_device(device)
        rows.append(
            [
                device.name,
                f"{device.rows_per_bank // 1024}K",
                device.banks_per_chip,
                DEVICE_TRFC_NS[device.name],
                device.rows_refreshed_per_trfc,
                device.subarrays_per_bank,
                device.conditional_accesses_per_trfc(timings),
            ]
        )
    return rows


TABLE2_HEADERS = ["Resource", "Used", "Total", "Percent"]


def table2_rows(design: FpgaDesign = None) -> List[list]:
    """Table 2: FPGA resource utilization."""
    if design is None:
        design = xfm_fpga_design()
    rows = []
    for resource, cells in design.utilization().items():
        rows.append(
            [
                resource,
                int(cells["used"]),
                int(cells["total"]),
                f"{cells['percent']:.2f}%",
            ]
        )
    return rows


TABLE3_HEADERS = ["Power", "Watts", "%"]


def table3_rows(design: FpgaDesign = None) -> List[list]:
    """Table 3: power consumption breakdown."""
    if design is None:
        design = xfm_fpga_design()
    power = design.power()
    return [
        ["Dynamic", f"{power['dynamic_w']:.3f}", f"{power['dynamic_pct']:.0f}"],
        ["Static", f"{power['static_w']:.3f}", f"{power['static_pct']:.0f}"],
        ["Total", f"{power['total_w']:.3f}", "100"],
    ]
