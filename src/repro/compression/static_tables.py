"""Corpus-trained static Huffman tables: registry + persistence.

The deflate codec's dynamic mode spends header bytes and a table build on
every page. For pages that look like a known corpus (this repository's own
source tree is the first one, via :mod:`repro.scenarios.ingest`), a table
pair trained once over the whole corpus amortizes that cost to zero: the
encoder reuses the pre-rendered header and pre-built codes (blob mode 3),
and skips the per-page dynamic table build entirely.

This module owns everything *around* the tables: training them from an
ingested :class:`~repro.scenarios.ingest.CorpusManifest`, persisting them
(one deterministic JSON document holding code lengths, tuning parameters,
and provenance), and looking them up per domain. The blob format itself —
how a mode-3 blob embeds its own table header so it decodes *without* this
registry — lives in :mod:`repro.compression.deflate`.

The persisted document is deterministic (sorted keys, no timestamps): two
trainings over the same corpus with the same tuning produce byte-identical
files, which makes the artifact diffable and CI-comparable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.compression.deflate import (
    DeflateCodec,
    StaticTableSet,
    train_static_tables,
)
from repro.errors import ConfigError, ManifestError

#: Bumped only for changes an old reader would misinterpret.
TABLES_SCHEMA_VERSION = 1

#: Default artifact shipped with the package (trained on this repo's own
#: source tree; regenerate with ``python -m repro codectune``).
DEFAULT_TABLES_PATH = Path(__file__).with_name("data") / "static_tables.json"


@dataclass(frozen=True)
class TableEntry:
    """One domain's trained tables plus the tuning that produced them.

    The matcher parameters are part of the artifact on purpose: a static
    table is only as good as the token distribution it was trained on, so
    an encoder using the tables should tokenize with the same window and
    search depth the trainer (or the auto-tuner) chose.
    """

    tables: StaticTableSet
    window_size: int
    max_chain: int
    lazy: bool
    #: Where the training pages came from (e.g. the manifest root label).
    source_label: str
    num_pages: int

    @property
    def domain(self) -> str:
        return self.tables.domain

    def to_json(self) -> Dict[str, object]:
        return {
            "domain": self.domain,
            "table_id": self.tables.table_id,
            "litlen_lengths": list(self.tables.litlen_table.lengths),
            "dist_lengths": list(self.tables.dist_table.lengths),
            "tuning": {
                "window_size": self.window_size,
                "max_chain": self.max_chain,
                "lazy": self.lazy,
            },
            "provenance": {
                "source_label": self.source_label,
                "num_pages": self.num_pages,
            },
        }

    @classmethod
    def from_json(cls, doc: Dict[str, object]) -> "TableEntry":
        try:
            tables = StaticTableSet(
                list(doc["litlen_lengths"]),
                list(doc["dist_lengths"]),
                domain=str(doc["domain"]),
            )
            tuning = doc["tuning"]
            entry = cls(
                tables=tables,
                window_size=int(tuning["window_size"]),
                max_chain=int(tuning["max_chain"]),
                lazy=bool(tuning["lazy"]),
                source_label=str(doc["provenance"]["source_label"]),
                num_pages=int(doc["provenance"]["num_pages"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestError(f"malformed table entry: {exc}") from exc
        if int(doc["table_id"]) != tables.table_id:
            # Lengths are the identity; a stale id means the file was
            # hand-edited or truncated.
            raise ManifestError(
                f"table entry {tables.domain!r}: declared id "
                f"{doc['table_id']:#x} != derived {tables.table_id:#x}"
            )
        return entry


class StaticTableRegistry:
    """Per-domain lookup of trained static tables.

    Purely an encode-side construct: mode-3 blobs are self-describing,
    so decode never consults a registry. The registry exists so swap
    paths and benchmarks can ask "which tables (and which matcher
    tuning) should pages of domain X use?" and get one answer that
    survives process restarts via :meth:`save`/:meth:`load`.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, TableEntry] = {}

    # -- population ----------------------------------------------------------

    def register(self, entry: TableEntry) -> None:
        self._entries[entry.domain] = entry

    def train(
        self,
        pages: Sequence[bytes],
        domain: str,
        window_size: int = 4096,
        max_chain: int = 64,
        lazy: bool = True,
        source_label: str = "unspecified",
    ) -> TableEntry:
        """Train tables for ``domain`` over ``pages`` and register them."""
        if not pages:
            raise ConfigError(f"domain {domain!r}: no pages to train on")
        tables = train_static_tables(
            pages,
            domain=domain,
            window_size=window_size,
            max_chain=max_chain,
            lazy=lazy,
        )
        entry = TableEntry(
            tables=tables,
            window_size=window_size,
            max_chain=max_chain,
            lazy=lazy,
            source_label=source_label,
            num_pages=len(pages),
        )
        self.register(entry)
        return entry

    def train_from_manifest(
        self,
        manifest,
        domains: Optional[Sequence[str]] = None,
        tuner=None,
    ) -> List[TableEntry]:
        """Train one entry per corpus domain of an ingested manifest.

        ``manifest`` is a :class:`~repro.scenarios.ingest.CorpusManifest`
        (typed loosely to keep this module import-light). When ``tuner``
        is given (see :mod:`repro.compression.tuning`), it picks the
        matcher parameters per domain; otherwise the training defaults
        apply.
        """
        wanted = sorted(manifest.domains) if domains is None else list(domains)
        entries = []
        for domain in wanted:
            pages = manifest.load_pages(domain)
            if not pages:
                continue
            if tuner is not None:
                choice = tuner(domain, pages)
                window_size = choice.window_size
                max_chain = choice.max_chain
                lazy = choice.lazy
            else:
                window_size, max_chain, lazy = 4096, 64, True
            entries.append(
                self.train(
                    pages,
                    domain,
                    window_size=window_size,
                    max_chain=max_chain,
                    lazy=lazy,
                    source_label=manifest.root_label,
                )
            )
        return entries

    # -- lookup --------------------------------------------------------------

    def domains(self) -> List[str]:
        return sorted(self._entries)

    def get(self, domain: str) -> TableEntry:
        try:
            return self._entries[domain]
        except KeyError:
            raise ConfigError(
                f"no static tables for domain {domain!r}; "
                f"have {self.domains()}"
            ) from None

    def find(self, domain: str) -> Optional[TableEntry]:
        return self._entries.get(domain)

    def by_table_id(self, table_id: int) -> Optional[TableEntry]:
        """Reverse lookup for tooling (blob forensics); decode does not
        need it — mode-3 blobs carry their own header."""
        for entry in self._entries.values():
            if entry.tables.table_id == table_id:
                return entry
        return None

    def codec_for(self, domain: str) -> DeflateCodec:
        """A deflate codec wired with ``domain``'s tables *and* the
        matcher tuning they were trained under."""
        entry = self.get(domain)
        return DeflateCodec(
            window_size=entry.window_size,
            max_chain=entry.max_chain,
            lazy=entry.lazy,
            static_tables=entry.tables,
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, domain: str) -> bool:
        return domain in self._entries

    # -- persistence ---------------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": TABLES_SCHEMA_VERSION,
            "entries": {
                domain: entry.to_json()
                for domain, entry in sorted(self._entries.items())
            },
        }

    def save(self, path: Union[str, Path]) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return target

    @classmethod
    def load(cls, path: Union[str, Path]) -> "StaticTableRegistry":
        source = Path(path)
        if not source.exists():
            raise ManifestError(f"no static-tables file at {source}")
        try:
            doc = json.loads(source.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ManifestError(f"{source} is corrupt JSON: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("schema") != TABLES_SCHEMA_VERSION:
            raise ManifestError(
                f"{source}: unsupported schema {doc.get('schema')!r} "
                f"(expected {TABLES_SCHEMA_VERSION})"
            )
        registry = cls()
        for domain, entry_doc in doc.get("entries", {}).items():
            entry = TableEntry.from_json(entry_doc)
            if entry.domain != domain:
                raise ManifestError(
                    f"{source}: entry keyed {domain!r} declares domain "
                    f"{entry.domain!r}"
                )
            registry.register(entry)
        return registry

    @classmethod
    def load_default(cls) -> Optional["StaticTableRegistry"]:
        """The packaged artifact, or ``None`` when it is not present
        (callers fall back to dynamic-mode deflate)."""
        if not DEFAULT_TABLES_PATH.exists():
            return None
        return cls.load(DEFAULT_TABLES_PATH)
