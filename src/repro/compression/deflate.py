"""Deflate-style codec: LZ77 + two-level canonical Huffman.

This is the algorithm family the paper's FPGA accelerator implements
(an open-source Deflate core, §7). The stream layout follows RFC 1951's
structure — dynamic literal/length and distance trees whose code-length
vectors are themselves RLE'd and Huffman-coded — without the zlib container.
Window size is a constructor parameter because Fig. 8 studies ratio loss as
the window shrinks under multi-DIMM interleaving.

Blob layout::

    magic(1) | mode(1) | orig_len(varint) | payload

``mode`` 0 = stored (incompressible input), 1 = huffman block.
"""

from __future__ import annotations

import zlib
from typing import List, Sequence, Tuple

from repro.compression.base import Codec, CodecSpec, register_codec
from repro.compression.bitio import BitReader, BitWriter
from repro.compression.huffman import HuffmanTable
from repro.compression.lz77 import (
    PACKED_LENGTH_BITS,
    PACKED_LENGTH_MASK,
    Literal,
    Lz77Matcher,
    Match,
    Token,
    extend_match,
)
from repro.errors import ConfigError, CorruptStreamError

_MAGIC = 0xD5
_MODE_STORED = 0
_MODE_HUFFMAN = 1
#: RFC 1951 BTYPE=01: pre-agreed fixed trees, no header — wins on small
#: inputs (the 1 KiB per-DIMM stripes of multi-channel mode).
_MODE_HUFFMAN_FIXED = 2

_EOB = 256
_NUM_LITLEN = 286
_NUM_DIST = 30
_NUM_CODELEN = 19

# RFC 1951 length-code table: (base_length, extra_bits) for codes 257..285.
_LENGTH_CODES: List[Tuple[int, int]] = (
    [(3 + i, 0) for i in range(8)]
    + [(11 + 2 * i, 1) for i in range(4)]
    + [(19 + 4 * i, 2) for i in range(4)]
    + [(35 + 8 * i, 3) for i in range(4)]
    + [(67 + 16 * i, 4) for i in range(4)]
    + [(131 + 32 * i, 5) for i in range(4)]
    + [(258, 0)]
)

# RFC 1951 distance-code table: (base_distance, extra_bits) for codes 0..29.
_DIST_CODES: List[Tuple[int, int]] = [(1, 0), (2, 0), (3, 0), (4, 0)] + [
    (base, extra)
    for extra in range(1, 14)
    for base in (
        (1 << (extra + 1)) + 1,
        (1 << (extra + 1)) + (1 << extra) + 1,
    )
]


def _length_to_code(length: int) -> Tuple[int, int, int]:
    """Map a match length to (litlen symbol, extra value, extra bits)."""
    if length == 258:
        return 285, 0, 0
    for code_index in range(len(_LENGTH_CODES) - 1, -1, -1):
        base, extra = _LENGTH_CODES[code_index]
        if length >= base:
            return 257 + code_index, length - base, extra
    raise ValueError(f"unencodable match length {length}")


def _distance_to_code(distance: int) -> Tuple[int, int, int]:
    """Map a match distance to (dist symbol, extra value, extra bits)."""
    for code_index in range(len(_DIST_CODES) - 1, -1, -1):
        base, extra = _DIST_CODES[code_index]
        if distance >= base:
            return code_index, distance - base, extra
    raise ValueError(f"unencodable match distance {distance}")


# Hot-path lookup tables replacing the linear scans above. Lengths are a
# direct table over 3..258. Distances use two levels: a direct table for
# 1..256, and a 128-distance-granular table beyond that — valid because
# every distance code past 256 carries >= 7 extra bits, so its range is
# aligned to and spans whole 128-distance slots.
_LEN_TO_CODE: Tuple[Tuple[int, int, int], ...] = tuple(
    _length_to_code(length) if length >= 3 else (0, 0, 0)
    for length in range(259)
)

# (symbol, base, extra_bits) per distance 1..256 (index 0 unused).
_DIST_LO: Tuple[Tuple[int, int, int], ...] = tuple(
    (sym, _DIST_CODES[sym][0], _DIST_CODES[sym][1])
    for d in range(257)
    for sym in (_distance_to_code(d)[0] if d else 0,)
)

# (symbol, base, extra_bits) per 128-distance slot for distances > 256:
# slot = (distance - 1) >> 7. Slots 0/1 cover distances <= 256 and are
# only present so the index needs no offset.
_DIST_HIGH: Tuple[Tuple[int, int, int], ...] = tuple(
    (sym, _DIST_CODES[sym][0], _DIST_CODES[sym][1])
    for slot in range(256)
    for sym in (_distance_to_code(max((slot << 7) + 1, 1))[0],)
)


def _write_varint(writer: BitWriter, value: int) -> None:
    """LEB128-style varint, written byte-aligned."""
    if value < 0:
        raise ValueError("varint must be non-negative")
    while True:
        chunk = value & 0x7F
        value >>= 7
        writer.write_bits(chunk | (0x80 if value else 0), 8)
        if not value:
            return


def _read_varint(reader: BitReader) -> int:
    value = 0
    shift = 0
    while True:
        byte = reader.read_bits(8)
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value
        shift += 7
        if shift > 35:
            raise CorruptStreamError("varint too long")


def _rle_code_lengths(lengths: Sequence[int]) -> List[Tuple[int, int]]:
    """RLE a code-length vector into (symbol, extra) pairs per RFC 1951.

    Symbols 0..15 are literal lengths; 16 repeats the previous length 3-6
    times; 17 emits 3-10 zeros; 18 emits 11-138 zeros.
    """
    out: List[Tuple[int, int]] = []
    i = 0
    n = len(lengths)
    prev = -1
    while i < n:
        value = lengths[i]
        run = 1
        while i + run < n and lengths[i + run] == value:
            run += 1
        if value == 0:
            remaining = run
            while remaining >= 11:
                chunk = min(remaining, 138)
                out.append((18, chunk - 11))
                remaining -= chunk
            while remaining >= 3:
                chunk = min(remaining, 10)
                out.append((17, chunk - 3))
                remaining -= chunk
            for _ in range(remaining):
                out.append((0, 0))
        else:
            start = 0
            if value != prev:
                out.append((value, 0))
                start = 1
            remaining = run - start
            while remaining >= 3:
                chunk = min(remaining, 6)
                out.append((16, chunk - 3))
                remaining -= chunk
            for _ in range(remaining):
                out.append((value, 0))
        prev = value
        i += run
    return out


_CL_EXTRA_BITS = {16: 2, 17: 3, 18: 7}


def _varint_bits(value: int) -> int:
    """Bit cost of ``_write_varint_bits(value)``: 8 bits per 7-bit group."""
    bits = 8
    value >>= 7
    while value:
        bits += 8
        value >>= 7
    return bits


def _symbol_bits(litlen_freq, dist_freq, extra_bits, ll_lengths, d_lengths):
    """Exact bit cost of ``_write_symbols`` under the given code lengths.

    ``litlen_freq`` already counts the end-of-block symbol, and
    ``extra_bits`` is the total extra-bit payload accumulated while
    encoding, so this predicts the written stream to the bit.
    """
    bits = extra_bits
    for symbol, freq in enumerate(litlen_freq):
        if freq:
            bits += freq * ll_lengths[symbol]
    for symbol, freq in enumerate(dist_freq):
        if freq:
            bits += freq * d_lengths[symbol]
    return bits


def _fixed_litlen_lengths() -> List[int]:
    """RFC 1951 fixed literal/length code lengths (3.2.6)."""
    lengths = [8] * 144 + [9] * 112 + [7] * 24 + [8] * 8
    return lengths[:_NUM_LITLEN]


def _fixed_dist_lengths() -> List[int]:
    """RFC 1951 fixed distance code lengths: all 5 bits."""
    return [5] * _NUM_DIST


_FIXED_LITLEN_TABLE = HuffmanTable.from_lengths(_fixed_litlen_lengths())
_FIXED_DIST_TABLE = HuffmanTable.from_lengths(_fixed_dist_lengths())


@register_codec
class DeflateCodec(Codec):
    """Deflate-style codec; the paper's accelerated algorithm family."""

    name = "deflate"
    # Software deflate (zlib -6) runs ~50-90 MBps/core compress and
    # ~300 MBps/core decompress on a ~2.6 GHz server core.
    spec = CodecSpec(
        name="deflate",
        compress_cycles_per_byte=35.0,
        decompress_cycles_per_byte=9.0,
    )

    def __init__(
        self,
        window_size: int = 32 * 1024,
        max_chain: int = 64,
        lazy: bool = True,
    ) -> None:
        if window_size > 32 * 1024:
            raise ConfigError(
                f"deflate window cannot exceed 32 KiB, got {window_size}"
            )
        self._matcher = Lz77Matcher(
            window_size=window_size, max_chain=max_chain, lazy=lazy
        )
        self.window_size = window_size

    # -- encode ----------------------------------------------------------

    def compress(self, data: bytes) -> bytes:
        mode, body = _MODE_STORED, data
        if data:
            encoded, litlen_freq, dist_freq, extra_bits = self._encode_tokens(
                data
            )
            litlen_table = HuffmanTable.from_frequencies(litlen_freq)
            dist_table = HuffmanTable.from_frequencies(dist_freq)
            combined = list(litlen_table.lengths) + list(dist_table.lengths)
            rle = _rle_code_lengths(combined)
            cl_freq = [0] * _NUM_CODELEN
            for symbol, _ in rle:
                cl_freq[symbol] += 1
            cl_table = HuffmanTable.from_frequencies(cl_freq, max_length=7)

            # Candidate sizes are computed analytically so only the winning
            # body is rendered; the selection (first strictly smaller in
            # stored/dynamic/fixed order) matches the historical behavior
            # of building all three and taking the min.
            dyn_bits = 3 * _NUM_CODELEN + _varint_bits(len(rle))
            cl_lengths = cl_table.lengths
            for symbol, _ in rle:
                dyn_bits += cl_lengths[symbol] + _CL_EXTRA_BITS.get(symbol, 0)
            dyn_bits += _symbol_bits(
                litlen_freq,
                dist_freq,
                extra_bits,
                litlen_table.lengths,
                dist_table.lengths,
            )
            fixed_bits = _symbol_bits(
                litlen_freq,
                dist_freq,
                extra_bits,
                _FIXED_LITLEN_TABLE.lengths,
                _FIXED_DIST_TABLE.lengths,
            )
            best_len = len(data)
            if (dyn_bits + 7) // 8 < best_len:
                mode, best_len = _MODE_HUFFMAN, (dyn_bits + 7) // 8
            if (fixed_bits + 7) // 8 < best_len:
                mode = _MODE_HUFFMAN_FIXED
            if mode == _MODE_HUFFMAN:
                body = self._compress_dynamic(
                    encoded, litlen_table, dist_table, rle, cl_table
                )
            elif mode == _MODE_HUFFMAN_FIXED:
                body = self._compress_fixed(encoded)
        writer = BitWriter()
        writer.write_bits(_MAGIC, 8)
        writer.write_bits(mode, 8)
        _write_varint(writer, len(data))
        # Content checksum, as production codecs carry (zlib's adler32,
        # zstd's xxhash): a lucky bit flip must not decode silently.
        writer.write_bits(zlib.crc32(data), 32)
        writer.write_bytes(body)
        return writer.getvalue()

    def _encode_tokens(self, data: bytes):
        """LZ77-tokenize and map packed tokens to (symbol, extra) tuples.

        Also returns the total extra-bit payload, which the analytic
        candidate sizing in :meth:`compress` needs.
        """
        packed = self._matcher.tokenize_packed(data)
        litlen_freq = [0] * _NUM_LITLEN
        dist_freq = [0] * _NUM_DIST
        litlen_freq[_EOB] = 1
        encoded: List[Tuple[int, int, int, int, int, int]] = []
        append = encoded.append
        len_mask = PACKED_LENGTH_MASK
        len_to_code = _LEN_TO_CODE
        dist_lo = _DIST_LO
        dist_high = _DIST_HIGH
        extra_bits = 0
        for token in packed.tolist():
            if token < 256:
                litlen_freq[token] += 1
                append((token, 0, 0, -1, 0, 0))
            else:
                distance = token >> PACKED_LENGTH_BITS
                lsym, lextra, lbits = len_to_code[token & len_mask]
                if distance <= 256:
                    dsym, dbase, dbits = dist_lo[distance]
                else:
                    dsym, dbase, dbits = dist_high[(distance - 1) >> 7]
                litlen_freq[lsym] += 1
                dist_freq[dsym] += 1
                extra_bits += lbits + dbits
                append((lsym, lextra, lbits, dsym, distance - dbase, dbits))
        return encoded, litlen_freq, dist_freq, extra_bits

    def _write_symbols(
        self,
        writer: BitWriter,
        encoded,
        litlen_table: HuffmanTable,
        dist_table: HuffmanTable,
    ) -> None:
        # The stream is LSB-first, so consecutive write_bits calls can be
        # fused: write_bits(a, x) then write_bits(b, y) is exactly
        # write_bits(a | b << x, x + y). A whole token — litlen code,
        # length extra, distance code, distance extra — becomes one call.
        write_bits = writer.write_bits
        ll_lengths = litlen_table.lengths
        ll_codes = litlen_table.codes_lsb
        d_lengths = dist_table.lengths
        d_codes = dist_table.codes_lsb
        for lsym, lextra, lbits, dsym, dextra, dbits in encoded:
            nbits = ll_lengths[lsym]
            if nbits == 0:
                raise CorruptStreamError(f"symbol {lsym} has no code")
            value = ll_codes[lsym]
            if lbits:
                value |= lextra << nbits
                nbits += lbits
            if dsym >= 0:
                dlen = d_lengths[dsym]
                if dlen == 0:
                    raise CorruptStreamError(f"symbol {dsym} has no code")
                value |= d_codes[dsym] << nbits
                nbits += dlen
                if dbits:
                    value |= dextra << nbits
                    nbits += dbits
            write_bits(value, nbits)
        litlen_table.encode(writer, _EOB)

    def _compress_dynamic(
        self, encoded, litlen_table, dist_table, rle, cl_table
    ) -> bytes:
        writer = BitWriter()
        for length in cl_table.lengths:
            writer.write_bits(length, 3)
        _write_varint_bits(writer, len(rle))
        for symbol, extra in rle:
            cl_table.encode(writer, symbol)
            extra_bits = _CL_EXTRA_BITS.get(symbol, 0)
            if extra_bits:
                writer.write_bits(extra, extra_bits)
        self._write_symbols(writer, encoded, litlen_table, dist_table)
        return writer.getvalue()

    def _compress_fixed(self, encoded) -> bytes:
        """Fixed-tree block: zero header bits (RFC 1951's BTYPE=01)."""
        writer = BitWriter()
        self._write_symbols(
            writer, encoded, _FIXED_LITLEN_TABLE, _FIXED_DIST_TABLE
        )
        return writer.getvalue()

    # -- decode ----------------------------------------------------------

    def decompress(self, blob: bytes) -> bytes:
        reader = BitReader(blob)
        magic = reader.read_bits(8)
        if magic != _MAGIC:
            raise CorruptStreamError(f"bad magic byte 0x{magic:02x}")
        mode = reader.read_bits(8)
        orig_len = _read_varint(reader)
        checksum = reader.read_bits(32)
        if mode == _MODE_STORED:
            out = reader.read_bytes(orig_len)
        elif mode == _MODE_HUFFMAN_FIXED:
            out = self._decode_symbols(
                reader,
                orig_len,
                _FIXED_LITLEN_TABLE.build_decoder(),
                _FIXED_DIST_TABLE.build_decoder(),
            )
        elif mode == _MODE_HUFFMAN:
            out = self._decompress_block(reader, orig_len)
        else:
            raise CorruptStreamError(f"unknown block mode {mode}")
        if zlib.crc32(out) != checksum:
            raise CorruptStreamError("content checksum mismatch")
        return out

    def _decompress_block(self, reader: BitReader, orig_len: int) -> bytes:
        cl_lengths = [reader.read_bits(3) for _ in range(_NUM_CODELEN)]
        cl_decoder = HuffmanTable.from_lengths(cl_lengths).build_decoder()
        rle_count = _read_varint_bits(reader)
        combined: List[int] = []
        for _ in range(rle_count):
            symbol = cl_decoder.decode(reader)
            if symbol <= 15:
                combined.append(symbol)
            elif symbol == 16:
                if not combined:
                    raise CorruptStreamError("repeat with no previous length")
                repeat = 3 + reader.read_bits(2)
                combined.extend([combined[-1]] * repeat)
            elif symbol == 17:
                combined.extend([0] * (3 + reader.read_bits(3)))
            else:
                combined.extend([0] * (11 + reader.read_bits(7)))
        if len(combined) != _NUM_LITLEN + _NUM_DIST:
            raise CorruptStreamError(
                f"code-length vector has {len(combined)} entries, expected "
                f"{_NUM_LITLEN + _NUM_DIST}"
            )
        litlen_decoder = HuffmanTable.from_lengths(
            combined[:_NUM_LITLEN]
        ).build_decoder()
        dist_decoder = HuffmanTable.from_lengths(
            combined[_NUM_LITLEN:]
        ).build_decoder()
        return self._decode_symbols(
            reader, orig_len, litlen_decoder, dist_decoder
        )

    def _decode_symbols(
        self, reader: BitReader, orig_len: int, litlen_decoder, dist_decoder
    ) -> bytes:
        out = bytearray()
        append = out.append
        lit_decode = litlen_decoder.decode
        dist_decode = dist_decoder.decode
        length_codes = _LENGTH_CODES
        dist_codes = _DIST_CODES
        # The symbol loop runs once per decoded token; keeping the bit
        # accumulator in locals (instead of syncing reader attributes on
        # every decode/read_bits call) is the difference between one
        # attribute access per token and six. The reader is synced before
        # any fallback into the decoder object and again on exit, so the
        # observable bit-consumption order is unchanged. A token needs at
        # most 15 + 5 + 15 + 13 = 48 bits, so one top-of-loop refill
        # suffices: ``nbits < extra`` afterwards can only mean the stream
        # really is exhausted.
        ll_table = litlen_decoder._root_table
        ll_mask = litlen_decoder._root_mask
        d_table = dist_decoder._root_table
        d_mask = dist_decoder._root_mask
        data = reader._data
        acc = reader._acc
        nbits = reader._nbits
        pos = reader._pos
        while True:
            if nbits < 48:
                chunk = data[pos : pos + 8]
                if chunk:
                    acc |= int.from_bytes(chunk, "little") << nbits
                    pos += len(chunk)
                    nbits += 8 * len(chunk)
            entry = ll_table[acc & ll_mask]
            if entry:
                clen = entry >> 16
                if clen > nbits:
                    raise CorruptStreamError("bit stream exhausted")
                acc >>= clen
                nbits -= clen
                symbol = entry & 0xFFFF
            else:
                reader._acc = acc
                reader._nbits = nbits
                reader._pos = pos
                symbol = lit_decode(reader)
                acc = reader._acc
                nbits = reader._nbits
                pos = reader._pos
            if symbol < 256:
                append(symbol)
                continue
            if symbol == _EOB:
                break
            base, extra = length_codes[symbol - 257]
            if extra:
                if extra > nbits:
                    raise CorruptStreamError("bit stream exhausted")
                length = base + (acc & ((1 << extra) - 1))
                acc >>= extra
                nbits -= extra
            else:
                length = base
            entry = d_table[acc & d_mask]
            if entry:
                clen = entry >> 16
                if clen > nbits:
                    raise CorruptStreamError("bit stream exhausted")
                acc >>= clen
                nbits -= clen
                dsym = entry & 0xFFFF
            else:
                reader._acc = acc
                reader._nbits = nbits
                reader._pos = pos
                dsym = dist_decode(reader)
                acc = reader._acc
                nbits = reader._nbits
                pos = reader._pos
            dbase, dextra = dist_codes[dsym]
            if dextra:
                if dextra > nbits:
                    raise CorruptStreamError("bit stream exhausted")
                distance = dbase + (acc & ((1 << dextra) - 1))
                acc >>= dextra
                nbits -= dextra
            else:
                distance = dbase
            start = len(out) - distance
            if start < 0:
                raise CorruptStreamError("match distance before stream start")
            extend_match(out, start, length)
        reader._acc = acc
        reader._nbits = nbits
        reader._pos = pos
        if len(out) != orig_len:
            raise CorruptStreamError(
                f"decoded {len(out)} bytes, header said {orig_len}"
            )
        return bytes(out)


def _write_varint_bits(writer: BitWriter, value: int) -> None:
    """Varint without byte alignment: 7-bit groups with a continue bit."""
    while True:
        chunk = value & 0x7F
        value >>= 7
        writer.write_bits(1 if value else 0, 1)
        writer.write_bits(chunk, 7)
        if not value:
            return


def _read_varint_bits(reader: BitReader) -> int:
    value = 0
    shift = 0
    while True:
        more = reader.read_bits(1)
        value |= reader.read_bits(7) << shift
        if not more:
            return value
        shift += 7
        if shift > 35:
            raise CorruptStreamError("varint too long")
