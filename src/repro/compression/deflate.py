"""Deflate-style codec: LZ77 + two-level canonical Huffman.

This is the algorithm family the paper's FPGA accelerator implements
(an open-source Deflate core, §7). The stream layout follows RFC 1951's
structure — dynamic literal/length and distance trees whose code-length
vectors are themselves RLE'd and Huffman-coded — without the zlib container.
Window size is a constructor parameter because Fig. 8 studies ratio loss as
the window shrinks under multi-DIMM interleaving.

Blob layout::

    magic(1) | mode(1) | orig_len(varint) | crc32(4) | payload

``mode`` 0 = stored (incompressible input), 1 = dynamic-table huffman
block, 2 = fixed-tree huffman block (RFC 1951 BTYPE=01 analog), 3 =
corpus-trained static-table huffman block.

Mode-3 payload::

    version(1) | table_id(4) | table header (dynamic encoding) | pad | symbols

Static blobs are **self-describing**: the trained code lengths are
embedded with the same RLE encoding the dynamic header uses, so any
decoder can reconstruct the tables from the blob alone — no registry
required. The ``table_id`` (a digest of the code lengths) plus the
byte-aligned symbol start let a decoder that *does* hold the matching
:class:`StaticTableSet` skip the header parse entirely and jump straight
to the symbol stream with pre-built tables. The version byte gates
future format changes.

Hot paths dispatch to the optional native kernels in
:mod:`repro.compression._native` (bit-exact C translations, compiled on
demand); every call falls back to the pure-Python/numpy engines when the
library is unavailable, and any native decode error re-runs the Python
decoder so error semantics stay identical.
"""

from __future__ import annotations

import ctypes
import hashlib
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compression import _native
from repro.compression.base import Codec, CodecSpec, batch_stats, register_codec
from repro.compression.bitio import BitReader, BitWriter
from repro.compression.huffman import MAX_CODE_LENGTH, HuffmanTable
from repro.compression.lz77 import (
    PACKED_LENGTH_BITS,
    PACKED_LENGTH_MASK,
    Lz77Matcher,
    extend_match,
)
from repro.errors import ConfigError, CorruptStreamError

_MAGIC = 0xD5
_MODE_STORED = 0
_MODE_HUFFMAN = 1
#: RFC 1951 BTYPE=01: pre-agreed fixed trees, no header — wins on small
#: inputs (the 1 KiB per-DIMM stripes of multi-channel mode).
_MODE_HUFFMAN_FIXED = 2
#: Corpus-trained static tables: per-page table build and header render
#: are skipped (the pre-rendered header bytes are copied in), zstd-
#: dictionary style.
_MODE_HUFFMAN_STATIC = 3

#: Version byte leading every mode-3 payload.
_STATIC_FORMAT_VERSION = 1

_EOB = 256
_NUM_LITLEN = 286
_NUM_DIST = 30
_NUM_CODELEN = 19

# RFC 1951 length-code table: (base_length, extra_bits) for codes 257..285.
_LENGTH_CODES: List[Tuple[int, int]] = (
    [(3 + i, 0) for i in range(8)]
    + [(11 + 2 * i, 1) for i in range(4)]
    + [(19 + 4 * i, 2) for i in range(4)]
    + [(35 + 8 * i, 3) for i in range(4)]
    + [(67 + 16 * i, 4) for i in range(4)]
    + [(131 + 32 * i, 5) for i in range(4)]
    + [(258, 0)]
)

# RFC 1951 distance-code table: (base_distance, extra_bits) for codes 0..29.
_DIST_CODES: List[Tuple[int, int]] = [(1, 0), (2, 0), (3, 0), (4, 0)] + [
    (base, extra)
    for extra in range(1, 14)
    for base in (
        (1 << (extra + 1)) + 1,
        (1 << (extra + 1)) + (1 << extra) + 1,
    )
]


def _length_to_code(length: int) -> Tuple[int, int, int]:
    """Map a match length to (litlen symbol, extra value, extra bits)."""
    if length == 258:
        return 285, 0, 0
    for code_index in range(len(_LENGTH_CODES) - 1, -1, -1):
        base, extra = _LENGTH_CODES[code_index]
        if length >= base:
            return 257 + code_index, length - base, extra
    raise ValueError(f"unencodable match length {length}")


def _distance_to_code(distance: int) -> Tuple[int, int, int]:
    """Map a match distance to (dist symbol, extra value, extra bits)."""
    for code_index in range(len(_DIST_CODES) - 1, -1, -1):
        base, extra = _DIST_CODES[code_index]
        if distance >= base:
            return code_index, distance - base, extra
    raise ValueError(f"unencodable match distance {distance}")


# Hot-path lookup tables replacing the linear scans above. Lengths are a
# direct table over 3..258. Distances use two levels: a direct table for
# 1..256, and a 128-distance-granular table beyond that — valid because
# every distance code past 256 carries >= 7 extra bits, so its range is
# aligned to and spans whole 128-distance slots.
_LEN_TO_CODE: Tuple[Tuple[int, int, int], ...] = tuple(
    _length_to_code(length) if length >= 3 else (0, 0, 0)
    for length in range(259)
)

# (symbol, base, extra_bits) per distance 1..256 (index 0 unused).
_DIST_LO: Tuple[Tuple[int, int, int], ...] = tuple(
    (sym, _DIST_CODES[sym][0], _DIST_CODES[sym][1])
    for d in range(257)
    for sym in (_distance_to_code(d)[0] if d else 0,)
)

# (symbol, base, extra_bits) per 128-distance slot for distances > 256:
# slot = (distance - 1) >> 7. Slots 0/1 cover distances <= 256 and are
# only present so the index needs no offset.
_DIST_HIGH: Tuple[Tuple[int, int, int], ...] = tuple(
    (sym, _DIST_CODES[sym][0], _DIST_CODES[sym][1])
    for slot in range(256)
    for sym in (_distance_to_code(max((slot << 7) + 1, 1))[0],)
)

# Vectorized forms of the mapping tables, shared by the numpy frequency
# accumulator and the native encode/decode kernels (which receive them
# by pointer, keeping Python the single source of truth for the format).
_LEN_SYM_NP = np.array([c[0] for c in _LEN_TO_CODE], dtype=np.uint16)
_LEN_EXTRA_NP = np.array([c[1] for c in _LEN_TO_CODE], dtype=np.uint16)
_LEN_EBITS_NP = np.array([c[2] for c in _LEN_TO_CODE], dtype=np.uint8)
_DIST_LO_SYM_NP = np.array([c[0] for c in _DIST_LO], dtype=np.uint8)
_DIST_HIGH_SYM_NP = np.array([c[0] for c in _DIST_HIGH], dtype=np.uint8)
_DIST_SYM_BASE_NP = np.array([b for b, _ in _DIST_CODES], dtype=np.int32)
_DIST_SYM_EBITS_NP = np.array([e for _, e in _DIST_CODES], dtype=np.uint8)
_LEN_SYM_BASE_NP = np.array([b for b, _ in _LENGTH_CODES], dtype=np.int32)
_LEN_SYM_EBITS_NP = np.array([e for _, e in _LENGTH_CODES], dtype=np.uint8)


def _write_varint(writer: BitWriter, value: int) -> None:
    """LEB128-style varint, written byte-aligned."""
    if value < 0:
        raise ValueError("varint must be non-negative")
    while True:
        chunk = value & 0x7F
        value >>= 7
        writer.write_bits(chunk | (0x80 if value else 0), 8)
        if not value:
            return


def _read_varint(reader: BitReader) -> int:
    value = 0
    shift = 0
    while True:
        byte = reader.read_bits(8)
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value
        shift += 7
        if shift > 35:
            raise CorruptStreamError("varint too long")


def _rle_code_lengths(lengths: Sequence[int]) -> List[Tuple[int, int]]:
    """RLE a code-length vector into (symbol, extra) pairs per RFC 1951.

    Symbols 0..15 are literal lengths; 16 repeats the previous length 3-6
    times; 17 emits 3-10 zeros; 18 emits 11-138 zeros.
    """
    out: List[Tuple[int, int]] = []
    i = 0
    n = len(lengths)
    prev = -1
    while i < n:
        value = lengths[i]
        run = 1
        while i + run < n and lengths[i + run] == value:
            run += 1
        if value == 0:
            remaining = run
            while remaining >= 11:
                chunk = min(remaining, 138)
                out.append((18, chunk - 11))
                remaining -= chunk
            while remaining >= 3:
                chunk = min(remaining, 10)
                out.append((17, chunk - 3))
                remaining -= chunk
            for _ in range(remaining):
                out.append((0, 0))
        else:
            start = 0
            if value != prev:
                out.append((value, 0))
                start = 1
            remaining = run - start
            while remaining >= 3:
                chunk = min(remaining, 6)
                out.append((16, chunk - 3))
                remaining -= chunk
            for _ in range(remaining):
                out.append((value, 0))
        prev = value
        i += run
    return out


_CL_EXTRA_BITS = {16: 2, 17: 3, 18: 7}


def _varint_bits(value: int) -> int:
    """Bit cost of ``_write_varint_bits(value)``: 8 bits per 7-bit group."""
    bits = 8
    value >>= 7
    while value:
        bits += 8
        value >>= 7
    return bits


def _fixed_litlen_lengths() -> List[int]:
    """RFC 1951 fixed literal/length code lengths (3.2.6)."""
    lengths = [8] * 144 + [9] * 112 + [7] * 24 + [8] * 8
    return lengths[:_NUM_LITLEN]


def _fixed_dist_lengths() -> List[int]:
    """RFC 1951 fixed distance code lengths: all 5 bits."""
    return [5] * _NUM_DIST


_FIXED_LITLEN_TABLE = HuffmanTable.from_lengths(_fixed_litlen_lengths())
_FIXED_DIST_TABLE = HuffmanTable.from_lengths(_fixed_dist_lengths())


# ---------------------------------------------------------------------------
# Vectorized token statistics and cached derived state
# ---------------------------------------------------------------------------


def _token_stats(tok_np: np.ndarray) -> Tuple[np.ndarray, np.ndarray, int]:
    """Symbol-frequency accumulation over a packed token array.

    Vectorized replacement for the per-token Python counting loop:
    returns (litlen frequencies incl. the end-of-block symbol, distance
    frequencies, total extra-bit payload) — exactly what the scalar
    accumulation produced.
    """
    lit_mask = tok_np < 256
    ll_freq = np.bincount(tok_np[lit_mask], minlength=_NUM_LITLEN)
    ll_freq[_EOB] += 1
    matches = tok_np[~lit_mask]
    if len(matches):
        lengths = matches & PACKED_LENGTH_MASK
        dists = matches >> PACKED_LENGTH_BITS
        lsym = _LEN_SYM_NP[lengths].astype(np.int64)
        ll_freq += np.bincount(lsym, minlength=_NUM_LITLEN)
        dsym = np.where(
            dists <= 256,
            _DIST_LO_SYM_NP[np.minimum(dists, 256)],
            _DIST_HIGH_SYM_NP[(dists - 1) >> 7],
        ).astype(np.int64)
        dist_freq = np.bincount(dsym, minlength=_NUM_DIST)
        extra_bits = int(_LEN_EBITS_NP[lengths].sum()) + int(
            _DIST_SYM_EBITS_NP[dsym].sum()
        )
    else:
        dist_freq = np.zeros(_NUM_DIST, dtype=np.int64)
        extra_bits = 0
    return ll_freq, dist_freq, extra_bits


def _symbol_bits(ll_freq, dist_freq, extra_bits, ll_len_np, d_len_np) -> int:
    """Exact bit cost of the symbol stream under the given code lengths."""
    return int(extra_bits + ll_freq @ ll_len_np + dist_freq @ d_len_np)


#: Huffman tables keyed by (max_length, frequency bytes). Pages from one
#: workload repeat symbol distributions constantly (and benchmarks
#: repeat pages exactly), so the heap build — the priciest per-page step
#: after matching — amortises to a dict probe.
_TABLE_CACHE: Dict[Tuple[int, bytes], HuffmanTable] = {}
_TABLE_CACHE_LIMIT = 1024


def _table_from_frequencies(
    frequencies, max_length: int = MAX_CODE_LENGTH
) -> HuffmanTable:
    freq_np = np.asarray(frequencies, dtype=np.int64)
    key = (max_length, freq_np.tobytes())
    table = _TABLE_CACHE.get(key)
    if table is None:
        if len(_TABLE_CACHE) >= _TABLE_CACHE_LIMIT:
            _TABLE_CACHE.clear()
        table = HuffmanTable.from_frequencies(
            [int(f) for f in freq_np], max_length
        )
        _TABLE_CACHE[key] = table
    return table


def _enc_arrays(table: HuffmanTable) -> Tuple[np.ndarray, np.ndarray]:
    """(codes_lsb uint16, lengths uint8) arrays, cached on the table."""
    arrays = getattr(table, "_enc_arrays", None)
    if arrays is None:
        arrays = (
            np.array(table.codes_lsb, dtype=np.uint16),
            np.array(table.lengths, dtype=np.uint8),
        )
        object.__setattr__(table, "_enc_arrays", arrays)
    return arrays


def _render_table_header(
    writer: BitWriter, litlen_table: HuffmanTable, dist_table: HuffmanTable
) -> None:
    """Write the code-length header shared by dynamic and static blobs:
    19 x 3-bit code-length-code lengths, a bit-level varint RLE count,
    then the RLE'd litlen+dist length vector under the code-length code.
    """
    combined = list(litlen_table.lengths) + list(dist_table.lengths)
    rle = _rle_code_lengths(combined)
    cl_freq = [0] * _NUM_CODELEN
    for symbol, _ in rle:
        cl_freq[symbol] += 1
    cl_table = _table_from_frequencies(cl_freq, max_length=7)
    for length in cl_table.lengths:
        writer.write_bits(length, 3)
    _write_varint_bits(writer, len(rle))
    for symbol, extra in rle:
        cl_table.encode(writer, symbol)
        extra_bits = _CL_EXTRA_BITS.get(symbol, 0)
        if extra_bits:
            writer.write_bits(extra, extra_bits)


#: Rendered dynamic headers keyed by (litlen lengths, dist lengths):
#: (whole bytes, partial accumulator, partial bit count, total bits).
_HEADER_CACHE: Dict[Tuple[tuple, tuple], Tuple[bytes, int, int, int]] = {}


def _dynamic_header(
    litlen_table: HuffmanTable, dist_table: HuffmanTable
) -> Tuple[bytes, int, int, int]:
    key = (litlen_table.lengths, dist_table.lengths)
    cached = _HEADER_CACHE.get(key)
    if cached is None:
        if len(_HEADER_CACHE) >= _TABLE_CACHE_LIMIT:
            _HEADER_CACHE.clear()
        writer = BitWriter()
        _render_table_header(writer, litlen_table, dist_table)
        cached = (
            bytes(writer._out),
            writer._acc,
            writer._nbits,
            writer.bit_length,
        )
        _HEADER_CACHE[key] = cached
    return cached


_FIXED_LL_LEN_I64 = np.array(_FIXED_LITLEN_TABLE.lengths, dtype=np.int64)
_FIXED_D_LEN_I64 = np.array(_FIXED_DIST_TABLE.lengths, dtype=np.int64)

#: Native decode-table scratch (two full-width 15-bit tables), allocated
#: once; the harness is single-threaded.
_DECODE_SCRATCH: List[np.ndarray] = []


def _decode_scratch() -> Tuple[np.ndarray, np.ndarray]:
    if not _DECODE_SCRATCH:
        _DECODE_SCRATCH.append(np.empty(1 << MAX_CODE_LENGTH, dtype=np.uint32))
        _DECODE_SCRATCH.append(np.empty(1 << MAX_CODE_LENGTH, dtype=np.uint32))
    return _DECODE_SCRATCH[0], _DECODE_SCRATCH[1]


# ---------------------------------------------------------------------------
# Corpus-trained static tables
# ---------------------------------------------------------------------------


class StaticTableSet:
    """One trained litlen/dist table pair plus pre-rendered blob header.

    Owning the format details here keeps mode-3 blobs constructible and
    decodable from this module alone; persistence and per-domain lookup
    live in :mod:`repro.compression.static_tables`.
    """

    __slots__ = (
        "domain",
        "litlen_table",
        "dist_table",
        "table_id",
        "header_bytes",
        "_ll_len_i64",
        "_d_len_i64",
    )

    def __init__(
        self,
        litlen_lengths: Sequence[int],
        dist_lengths: Sequence[int],
        domain: str = "generic",
    ) -> None:
        if len(litlen_lengths) != _NUM_LITLEN:
            raise ConfigError(
                f"need {_NUM_LITLEN} litlen lengths, got {len(litlen_lengths)}"
            )
        if len(dist_lengths) != _NUM_DIST:
            raise ConfigError(
                f"need {_NUM_DIST} dist lengths, got {len(dist_lengths)}"
            )
        self.domain = domain
        self.litlen_table = HuffmanTable.from_lengths(litlen_lengths)
        self.dist_table = HuffmanTable.from_lengths(dist_lengths)
        digest = hashlib.blake2b(
            bytes(litlen_lengths) + bytes(dist_lengths), digest_size=4
        ).digest()
        self.table_id = int.from_bytes(digest, "little")
        writer = BitWriter()
        writer.write_bits(_STATIC_FORMAT_VERSION, 8)
        writer.write_bits(self.table_id, 32)
        _render_table_header(writer, self.litlen_table, self.dist_table)
        # Byte-align so the symbol stream starts on a byte boundary:
        # lets a table-holding decoder jump straight to the symbols.
        self.header_bytes = writer.getvalue()
        self._ll_len_i64 = np.array(self.litlen_table.lengths, dtype=np.int64)
        self._d_len_i64 = np.array(self.dist_table.lengths, dtype=np.int64)

    def symbol_bits(
        self, ll_freq: np.ndarray, dist_freq: np.ndarray, extra_bits: int
    ) -> Optional[int]:
        """Bit cost of a symbol stream under these tables.

        ``None`` when some needed symbol has no code (the page cannot be
        encoded statically and must fall back to another mode).
        """
        if ((ll_freq > 0) & (self._ll_len_i64 == 0)).any():
            return None
        if ((dist_freq > 0) & (self._d_len_i64 == 0)).any():
            return None
        return _symbol_bits(
            ll_freq, dist_freq, extra_bits, self._ll_len_i64, self._d_len_i64
        )


def train_static_tables(
    pages: Sequence[bytes],
    domain: str = "generic",
    window_size: int = 4096,
    max_chain: int = 64,
    lazy: bool = True,
) -> StaticTableSet:
    """Train a :class:`StaticTableSet` from a page corpus.

    Tokenizes every page with the given matcher parameters, accumulates
    symbol frequencies corpus-wide, and add-one smooths them so every
    symbol keeps a code — a static table must be able to encode pages
    that deviate from the corpus (unseen literals, unseen distance
    slots), trading a fraction of a bit of optimality for totality.
    """
    corpus = [p for p in pages if p]
    if not corpus:
        raise ConfigError(
            f"domain {domain!r}: cannot train static tables on an "
            "empty corpus"
        )
    matcher = Lz77Matcher(
        window_size=window_size, max_chain=max_chain, lazy=lazy
    )
    ll_freq = np.zeros(_NUM_LITLEN, dtype=np.int64)
    dist_freq = np.zeros(_NUM_DIST, dtype=np.int64)
    for tokens in matcher.tokenize_packed_batch(corpus):
        page_ll, page_dist, _ = _token_stats(
            np.frombuffer(tokens, dtype=np.int64)
        )
        ll_freq += page_ll
        dist_freq += page_dist
    ll_freq += 1
    dist_freq += 1
    litlen_table = _table_from_frequencies(ll_freq)
    dist_table = _table_from_frequencies(dist_freq)
    return StaticTableSet(
        litlen_table.lengths, dist_table.lengths, domain=domain
    )


# ---------------------------------------------------------------------------
# The codec
# ---------------------------------------------------------------------------


@register_codec
class DeflateCodec(Codec):
    """Deflate-style codec; the paper's accelerated algorithm family."""

    name = "deflate"
    # Software deflate (zlib -6) runs ~50-90 MBps/core compress and
    # ~300 MBps/core decompress on a ~2.6 GHz server core.
    spec = CodecSpec(
        name="deflate",
        compress_cycles_per_byte=35.0,
        decompress_cycles_per_byte=9.0,
    )

    def __init__(
        self,
        window_size: int = 32 * 1024,
        max_chain: int = 64,
        lazy: bool = True,
        static_tables: Optional[StaticTableSet] = None,
    ) -> None:
        if window_size > 32 * 1024:
            raise ConfigError(
                f"deflate window cannot exceed 32 KiB, got {window_size}"
            )
        self._matcher = Lz77Matcher(
            window_size=window_size, max_chain=max_chain, lazy=lazy
        )
        self.window_size = window_size
        self._static_tables = static_tables

    # -- encode ----------------------------------------------------------

    def compress(self, data: bytes) -> bytes:
        packed = self._matcher.tokenize_packed(data) if data else None
        return self._blob(data, packed)

    def compress_batch(self, pages: Sequence[bytes]) -> List[bytes]:
        """Compress a batch of pages in one call.

        The LZ77 stage runs as one batched tokenize (shared numpy
        working set / one native call per page), and table, header and
        scratch caches stay hot across the whole batch.
        """
        pages = list(pages)
        if not pages:
            return []
        token_iter = iter(
            self._matcher.tokenize_packed_batch([p for p in pages if p])
        )
        blobs = [
            self._blob(page, next(token_iter) if page else None)
            for page in pages
        ]
        batch_stats.compress_batch_calls += 1
        batch_stats.compress_batch_pages += len(pages)
        return blobs

    def _blob(self, data: bytes, packed) -> bytes:
        if data:
            mode, body = self._encode_body(data, packed)
        else:
            mode, body = _MODE_STORED, data
        writer = BitWriter()
        writer.write_bits(_MAGIC, 8)
        writer.write_bits(mode, 8)
        _write_varint(writer, len(data))
        # Content checksum, as production codecs carry (zlib's adler32,
        # zstd's xxhash): a lucky bit flip must not decode silently.
        writer.write_bits(zlib.crc32(data), 32)
        writer.write_bytes(body)
        return writer.getvalue()

    def _encode_body(self, data: bytes, packed) -> Tuple[int, bytes]:
        """Pick the cheapest mode analytically, then render only it.

        Without static tables the candidate order (stored, dynamic,
        fixed; first strictly smaller wins) matches the historical
        behavior bit-for-bit. With static tables configured, the
        per-page dynamic table build is skipped entirely — candidates
        are stored, static, fixed — which is the whole point of
        training tables offline.
        """
        tok_np = np.frombuffer(packed, dtype=np.int64)
        ll_freq, dist_freq, extra_bits = _token_stats(tok_np)
        best_len = len(data)
        mode = _MODE_STORED
        static = self._static_tables
        if static is not None:
            static_sym_bits = static.symbol_bits(ll_freq, dist_freq, extra_bits)
            if static_sym_bits is not None:
                static_bits = 8 * len(static.header_bytes) + static_sym_bits
                if (static_bits + 7) // 8 < best_len:
                    mode, best_len = _MODE_HUFFMAN_STATIC, (static_bits + 7) // 8
        else:
            litlen_table = _table_from_frequencies(ll_freq)
            dist_table = _table_from_frequencies(dist_freq)
            header = _dynamic_header(litlen_table, dist_table)
            dyn_bits = header[3] + _symbol_bits(
                ll_freq,
                dist_freq,
                extra_bits,
                np.asarray(_enc_arrays(litlen_table)[1], dtype=np.int64),
                np.asarray(_enc_arrays(dist_table)[1], dtype=np.int64),
            )
            if (dyn_bits + 7) // 8 < best_len:
                mode, best_len = _MODE_HUFFMAN, (dyn_bits + 7) // 8
        fixed_bits = _symbol_bits(
            ll_freq, dist_freq, extra_bits, _FIXED_LL_LEN_I64, _FIXED_D_LEN_I64
        )
        if (fixed_bits + 7) // 8 < best_len:
            mode = _MODE_HUFFMAN_FIXED

        if mode == _MODE_HUFFMAN:
            prefix, acc, nbits, _ = header
            body = self._render_symbols(
                packed, tok_np, litlen_table, dist_table, prefix, acc, nbits
            )
        elif mode == _MODE_HUFFMAN_FIXED:
            body = self._render_symbols(
                packed, tok_np, _FIXED_LITLEN_TABLE, _FIXED_DIST_TABLE, b"", 0, 0
            )
        elif mode == _MODE_HUFFMAN_STATIC:
            body = self._render_symbols(
                packed,
                tok_np,
                static.litlen_table,
                static.dist_table,
                static.header_bytes,
                0,
                0,
            )
        else:
            body = data
        return mode, body

    def _render_symbols(
        self,
        packed,
        tok_np: np.ndarray,
        litlen_table: HuffmanTable,
        dist_table: HuffmanTable,
        prefix: bytes,
        acc: int,
        nbits: int,
    ) -> bytes:
        """Huffman-code the token stream after ``prefix`` (+ partial bits)."""
        lib = _native.load()
        if lib is not None:
            body = _encode_symbols_native(
                lib, tok_np, litlen_table, dist_table, prefix, acc, nbits
            )
            if body is not None:
                return body
        writer = BitWriter()
        writer._out = bytearray(prefix)
        writer._acc = acc
        writer._nbits = nbits
        self._write_symbols_packed(writer, packed, litlen_table, dist_table)
        return writer.getvalue()

    def _write_symbols_packed(
        self,
        writer: BitWriter,
        packed,
        litlen_table: HuffmanTable,
        dist_table: HuffmanTable,
    ) -> None:
        # The stream is LSB-first, so consecutive write_bits calls can be
        # fused: write_bits(a, x) then write_bits(b, y) is exactly
        # write_bits(a | b << x, x + y). A whole token — litlen code,
        # length extra, distance code, distance extra — becomes one call.
        write_bits = writer.write_bits
        ll_lengths = litlen_table.lengths
        ll_codes = litlen_table.codes_lsb
        d_lengths = dist_table.lengths
        d_codes = dist_table.codes_lsb
        len_mask = PACKED_LENGTH_MASK
        len_to_code = _LEN_TO_CODE
        dist_lo = _DIST_LO
        dist_high = _DIST_HIGH
        for token in packed.tolist():
            if token < 256:
                nbits = ll_lengths[token]
                if nbits == 0:
                    raise CorruptStreamError(f"symbol {token} has no code")
                write_bits(ll_codes[token], nbits)
                continue
            distance = token >> PACKED_LENGTH_BITS
            lsym, lextra, lbits = len_to_code[token & len_mask]
            if distance <= 256:
                dsym, dbase, dbits = dist_lo[distance]
            else:
                dsym, dbase, dbits = dist_high[(distance - 1) >> 7]
            nbits = ll_lengths[lsym]
            if nbits == 0:
                raise CorruptStreamError(f"symbol {lsym} has no code")
            value = ll_codes[lsym]
            if lbits:
                value |= lextra << nbits
                nbits += lbits
            dlen = d_lengths[dsym]
            if dlen == 0:
                raise CorruptStreamError(f"symbol {dsym} has no code")
            value |= d_codes[dsym] << nbits
            nbits += dlen
            if dbits:
                value |= (distance - dbase) << nbits
                nbits += dbits
            write_bits(value, nbits)
        litlen_table.encode(writer, _EOB)

    # -- decode ----------------------------------------------------------

    def decompress(self, blob: bytes) -> bytes:
        out = self._decompress_native(blob)
        if out is not None:
            return out
        return self._decompress_python(blob)

    def decompress_batch(self, blobs: Sequence[bytes]) -> List[bytes]:
        """Decompress a batch of blobs in one call (shared decode scratch)."""
        blobs = list(blobs)
        pages = [self.decompress(blob) for blob in blobs]
        batch_stats.decompress_batch_calls += 1
        batch_stats.decompress_batch_pages += len(blobs)
        return pages

    def _decompress_native(self, blob: bytes) -> Optional[bytes]:
        """Native fast path; ``None`` means "re-run the Python decoder".

        Success is only claimed for fully valid blobs (crc verified), so
        every malformed input takes the Python path and raises exactly
        the error it always raised.
        """
        lib = _native.load()
        if lib is None or len(blob) < 7 or blob[0] != _MAGIC:
            return None
        mode = blob[1]
        value = 0
        shift = 0
        pos = 2
        while True:
            if pos >= len(blob) or shift > 35:
                return None
            byte = blob[pos]
            pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
        orig_len = value
        if pos + 4 > len(blob):
            return None
        checksum = int.from_bytes(blob[pos : pos + 4], "little")
        pos += 4
        if mode == _MODE_STORED:
            if pos + orig_len > len(blob):
                return None
            out = blob[pos : pos + orig_len]
        elif mode == _MODE_HUFFMAN:
            out = _decode_block_native(lib, blob, pos, orig_len, None, None)
        elif mode == _MODE_HUFFMAN_FIXED:
            out = _decode_block_native(
                lib, blob, pos, orig_len, _FIXED_LITLEN_TABLE, _FIXED_DIST_TABLE
            )
        elif mode == _MODE_HUFFMAN_STATIC:
            static = self._static_tables
            if static is None:
                return None
            header = static.header_bytes
            if blob[pos : pos + len(header)] != header:
                # Different table set (or version): parse the embedded
                # self-describing header on the Python path.
                return None
            out = _decode_block_native(
                lib,
                blob,
                pos + len(header),
                orig_len,
                static.litlen_table,
                static.dist_table,
            )
        else:
            return None
        if out is None or zlib.crc32(out) != checksum:
            return None
        return out

    def _decompress_python(self, blob: bytes) -> bytes:
        reader = BitReader(blob)
        magic = reader.read_bits(8)
        if magic != _MAGIC:
            raise CorruptStreamError(f"bad magic byte 0x{magic:02x}")
        mode = reader.read_bits(8)
        orig_len = _read_varint(reader)
        checksum = reader.read_bits(32)
        if mode == _MODE_STORED:
            out = reader.read_bytes(orig_len)
        elif mode == _MODE_HUFFMAN_FIXED:
            out = self._decode_symbols(
                reader,
                orig_len,
                _FIXED_LITLEN_TABLE.build_decoder(),
                _FIXED_DIST_TABLE.build_decoder(),
            )
        elif mode == _MODE_HUFFMAN:
            litlen_decoder, dist_decoder = _read_dynamic_tables(reader)
            out = self._decode_symbols(
                reader, orig_len, litlen_decoder, dist_decoder
            )
        elif mode == _MODE_HUFFMAN_STATIC:
            out = self._decompress_static(reader, orig_len)
        else:
            raise CorruptStreamError(f"unknown block mode {mode}")
        if zlib.crc32(out) != checksum:
            raise CorruptStreamError("content checksum mismatch")
        return out

    def _decompress_static(self, reader: BitReader, orig_len: int) -> bytes:
        """Mode-3 decode from the embedded header — no registry needed."""
        version = reader.read_bits(8)
        if version != _STATIC_FORMAT_VERSION:
            raise CorruptStreamError(
                f"unsupported static-table blob version {version}"
            )
        reader.read_bits(32)  # table id: advisory; the header is embedded
        litlen_decoder, dist_decoder = _read_dynamic_tables(reader)
        reader.align_to_byte()
        return self._decode_symbols(
            reader, orig_len, litlen_decoder, dist_decoder
        )

    def _decode_symbols(
        self, reader: BitReader, orig_len: int, litlen_decoder, dist_decoder
    ) -> bytes:
        out = bytearray()
        append = out.append
        lit_decode = litlen_decoder.decode
        dist_decode = dist_decoder.decode
        length_codes = _LENGTH_CODES
        dist_codes = _DIST_CODES
        # The symbol loop runs once per decoded token; keeping the bit
        # accumulator in locals (instead of syncing reader attributes on
        # every decode/read_bits call) is the difference between one
        # attribute access per token and six. The reader is synced before
        # any fallback into the decoder object and again on exit, so the
        # observable bit-consumption order is unchanged. A token needs at
        # most 15 + 5 + 15 + 13 = 48 bits, so one top-of-loop refill
        # suffices: ``nbits < extra`` afterwards can only mean the stream
        # really is exhausted.
        ll_table = litlen_decoder._root_table
        ll_mask = litlen_decoder._root_mask
        d_table = dist_decoder._root_table
        d_mask = dist_decoder._root_mask
        data = reader._data
        acc = reader._acc
        nbits = reader._nbits
        pos = reader._pos
        while True:
            if nbits < 48:
                chunk = data[pos : pos + 8]
                if chunk:
                    acc |= int.from_bytes(chunk, "little") << nbits
                    pos += len(chunk)
                    nbits += 8 * len(chunk)
            entry = ll_table[acc & ll_mask]
            if entry:
                clen = entry >> 16
                if clen > nbits:
                    raise CorruptStreamError("bit stream exhausted")
                acc >>= clen
                nbits -= clen
                symbol = entry & 0xFFFF
            else:
                reader._acc = acc
                reader._nbits = nbits
                reader._pos = pos
                symbol = lit_decode(reader)
                acc = reader._acc
                nbits = reader._nbits
                pos = reader._pos
            if symbol < 256:
                append(symbol)
                continue
            if symbol == _EOB:
                break
            base, extra = length_codes[symbol - 257]
            if extra:
                if extra > nbits:
                    raise CorruptStreamError("bit stream exhausted")
                length = base + (acc & ((1 << extra) - 1))
                acc >>= extra
                nbits -= extra
            else:
                length = base
            entry = d_table[acc & d_mask]
            if entry:
                clen = entry >> 16
                if clen > nbits:
                    raise CorruptStreamError("bit stream exhausted")
                acc >>= clen
                nbits -= clen
                dsym = entry & 0xFFFF
            else:
                reader._acc = acc
                reader._nbits = nbits
                reader._pos = pos
                dsym = dist_decode(reader)
                acc = reader._acc
                nbits = reader._nbits
                pos = reader._pos
            dbase, dextra = dist_codes[dsym]
            if dextra:
                if dextra > nbits:
                    raise CorruptStreamError("bit stream exhausted")
                distance = dbase + (acc & ((1 << dextra) - 1))
                acc >>= dextra
                nbits -= dextra
            else:
                distance = dbase
            start = len(out) - distance
            if start < 0:
                raise CorruptStreamError("match distance before stream start")
            extend_match(out, start, length)
        reader._acc = acc
        reader._nbits = nbits
        reader._pos = pos
        if len(out) != orig_len:
            raise CorruptStreamError(
                f"decoded {len(out)} bytes, header said {orig_len}"
            )
        return bytes(out)


def _read_dynamic_tables(reader: BitReader):
    """Parse the code-length header; returns (litlen, dist) decoders."""
    cl_lengths = [reader.read_bits(3) for _ in range(_NUM_CODELEN)]
    cl_decoder = HuffmanTable.from_lengths(cl_lengths).build_decoder()
    rle_count = _read_varint_bits(reader)
    combined: List[int] = []
    for _ in range(rle_count):
        symbol = cl_decoder.decode(reader)
        if symbol <= 15:
            combined.append(symbol)
        elif symbol == 16:
            if not combined:
                raise CorruptStreamError("repeat with no previous length")
            repeat = 3 + reader.read_bits(2)
            combined.extend([combined[-1]] * repeat)
        elif symbol == 17:
            combined.extend([0] * (3 + reader.read_bits(3)))
        else:
            combined.extend([0] * (11 + reader.read_bits(7)))
    if len(combined) != _NUM_LITLEN + _NUM_DIST:
        raise CorruptStreamError(
            f"code-length vector has {len(combined)} entries, expected "
            f"{_NUM_LITLEN + _NUM_DIST}"
        )
    litlen_decoder = HuffmanTable.from_lengths(
        combined[:_NUM_LITLEN]
    ).build_decoder()
    dist_decoder = HuffmanTable.from_lengths(
        combined[_NUM_LITLEN:]
    ).build_decoder()
    return litlen_decoder, dist_decoder


# ---------------------------------------------------------------------------
# Native kernel adapters
# ---------------------------------------------------------------------------


def _encode_symbols_native(
    lib,
    tok_np: np.ndarray,
    litlen_table: HuffmanTable,
    dist_table: HuffmanTable,
    prefix: bytes,
    acc: int,
    nbits: int,
) -> Optional[bytes]:
    ll_codes, ll_lens = _enc_arrays(litlen_table)
    d_codes, d_lens = _enc_arrays(dist_table)
    out = np.empty(len(tok_np) * 6 + 16, dtype=np.uint8)
    acc_io = ctypes.c_uint64(acc)
    nbits_io = ctypes.c_int64(nbits)
    written = lib.deflate_encode_symbols(
        tok_np.ctypes.data,
        len(tok_np),
        ll_codes.ctypes.data,
        ll_lens.ctypes.data,
        d_codes.ctypes.data,
        d_lens.ctypes.data,
        _LEN_SYM_NP.ctypes.data,
        _LEN_EXTRA_NP.ctypes.data,
        _LEN_EBITS_NP.ctypes.data,
        _DIST_LO_SYM_NP.ctypes.data,
        _DIST_HIGH_SYM_NP.ctypes.data,
        _DIST_SYM_BASE_NP.ctypes.data,
        _DIST_SYM_EBITS_NP.ctypes.data,
        ctypes.byref(acc_io),
        ctypes.byref(nbits_io),
        out.ctypes.data,
        len(out),
    )
    if written < 0:
        return None
    body = prefix + out[:written].tobytes()
    if nbits_io.value:
        # align_to_byte: the partial accumulator zero-padded to a byte.
        body += bytes((acc_io.value,))
    return body


def _decode_block_native(
    lib,
    blob: bytes,
    start: int,
    orig_len: int,
    litlen_table: Optional[HuffmanTable],
    dist_table: Optional[HuffmanTable],
) -> Optional[bytes]:
    """Decode one block natively; ``None`` on any error (caller falls back).

    ``litlen_table``/``dist_table`` of ``None`` means the dynamic header
    is parsed from the stream inside the kernel.
    """
    have_tables = litlen_table is not None
    if have_tables:
        ll_lens = _enc_arrays(litlen_table)[1]
        d_lens = _enc_arrays(dist_table)[1]
    else:
        ll_lens = _enc_arrays(_FIXED_LITLEN_TABLE)[1]  # unread by the kernel
        d_lens = _enc_arrays(_FIXED_DIST_TABLE)[1]
    out = np.empty(max(orig_len, 1), dtype=np.uint8)
    ll_scratch, d_scratch = _decode_scratch()
    blob_np = np.frombuffer(blob, dtype=np.uint8)
    decoded = lib.deflate_decode_block(
        blob_np.ctypes.data,
        len(blob),
        start,
        1 if have_tables else 0,
        ll_lens.ctypes.data,
        d_lens.ctypes.data,
        _LEN_SYM_BASE_NP.ctypes.data,
        _LEN_SYM_EBITS_NP.ctypes.data,
        _DIST_SYM_BASE_NP.ctypes.data,
        _DIST_SYM_EBITS_NP.ctypes.data,
        ll_scratch.ctypes.data,
        d_scratch.ctypes.data,
        out.ctypes.data,
        orig_len,
    )
    if decoded != orig_len:
        return None
    return out[:orig_len].tobytes()


def _write_varint_bits(writer: BitWriter, value: int) -> None:
    """Varint without byte alignment: 7-bit groups with a continue bit."""
    while True:
        chunk = value & 0x7F
        value >>= 7
        writer.write_bits(1 if value else 0, 1)
        writer.write_bits(chunk, 7)
        if not value:
            return


def _read_varint_bits(reader: BitReader) -> int:
    value = 0
    shift = 0
    while True:
        more = reader.read_bits(1)
        value |= reader.read_bits(7) << shift
        if not more:
            return value
        shift += 7
        if shift > 35:
            raise CorruptStreamError("varint too long")
