"""Bit-granular I/O used by the entropy coders.

Bits are packed LSB-first within each byte, the same convention RFC 1951
(Deflate) uses: the first bit written becomes the least-significant bit of
the first output byte. Huffman codes are written most-significant-bit first
— either via :meth:`BitWriter.write_bits_msb` or, on the hot path, as a
single :meth:`BitWriter.write_bits` call of the pre-bit-reversed code
(:class:`~repro.compression.huffman.HuffmanTable` stores both forms).

:class:`BitReader` additionally exposes a peek/consume fast path
(:meth:`BitReader.peek_bits` / :meth:`BitReader.consume_bits`) for the
table-driven Huffman decoder: peek never consumes and zero-pads past the
end of the stream, so a decoder can look at ``root_bits`` bits at once
and then consume exactly the matched code length.
"""

from __future__ import annotations

from repro.errors import CorruptStreamError


class BitWriter:
    """Accumulates bits LSB-first into a growing byte buffer."""

    __slots__ = ("_out", "_acc", "_nbits")

    def __init__(self) -> None:
        self._out = bytearray()
        self._acc = 0
        self._nbits = 0

    def write_bits(self, value: int, nbits: int) -> None:
        """Append the ``nbits`` low-order bits of ``value``, LSB-first."""
        if nbits < 0:
            raise ValueError(f"nbits must be non-negative, got {nbits}")
        if value < 0 or (nbits < 64 and value >> nbits):
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._acc |= value << self._nbits
        self._nbits += nbits
        while self._nbits >= 8:
            self._out.append(self._acc & 0xFF)
            self._acc >>= 8
            self._nbits -= 8

    def write_bits_msb(self, value: int, nbits: int) -> None:
        """Append ``nbits`` bits of ``value`` starting from the MSB.

        Used for Huffman codes, whose canonical ordering is defined on the
        bit string read most-significant-bit first. Equivalent to one
        ``write_bits`` call of the bit-reversed value.
        """
        for shift in range(nbits - 1, -1, -1):
            self.write_bits((value >> shift) & 1, 1)

    def align_to_byte(self) -> None:
        """Pad with zero bits to the next byte boundary."""
        if self._nbits:
            self.write_bits(0, 8 - self._nbits)

    def write_bytes(self, data: bytes) -> None:
        """Append whole bytes; the stream must be byte-aligned."""
        if self._nbits:
            raise ValueError("write_bytes requires byte alignment")
        self._out.extend(data)

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return len(self._out) * 8 + self._nbits

    def getvalue(self) -> bytes:
        """Return the accumulated bytes, flushing any partial byte."""
        self.align_to_byte()
        return bytes(self._out)


#: Bytes pulled into the accumulator per refill. Python ints are
#: arbitrary-precision, so refilling 4 bytes at a time via one
#: ``int.from_bytes`` costs the same as one byte did in the per-byte loop.
_REFILL_BYTES = 4


class BitReader:
    """Reads bits LSB-first from a byte buffer produced by :class:`BitWriter`."""

    __slots__ = ("_data", "_pos", "_acc", "_nbits")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0
        self._acc = 0
        self._nbits = 0

    def read_bits(self, nbits: int) -> int:
        """Read ``nbits`` bits, returning them as an integer (LSB-first)."""
        if nbits < 0:
            raise ValueError(f"nbits must be non-negative, got {nbits}")
        while self._nbits < nbits:
            chunk = self._data[self._pos : self._pos + _REFILL_BYTES]
            if not chunk:
                raise CorruptStreamError("bit stream exhausted")
            self._acc |= int.from_bytes(chunk, "little") << self._nbits
            self._pos += len(chunk)
            self._nbits += 8 * len(chunk)
        value = self._acc & ((1 << nbits) - 1)
        self._acc >>= nbits
        self._nbits -= nbits
        return value

    def read_bit(self) -> int:
        """Read a single bit."""
        return self.read_bits(1)

    def peek_bits(self, nbits: int) -> int:
        """Return the next ``nbits`` bits without consuming them.

        Bits past the end of the stream read as zero — the table-driven
        Huffman decoder peeks a full root-table index near the end of a
        stream whose final code may be shorter; :meth:`consume_bits`
        still raises if the *matched* code overruns the real data.
        """
        while self._nbits < nbits:
            chunk = self._data[self._pos : self._pos + _REFILL_BYTES]
            if not chunk:
                break
            self._acc |= int.from_bytes(chunk, "little") << self._nbits
            self._pos += len(chunk)
            self._nbits += 8 * len(chunk)
        return self._acc & ((1 << nbits) - 1)

    def consume_bits(self, nbits: int) -> None:
        """Discard ``nbits`` previously peeked bits."""
        if nbits > self._nbits:
            raise CorruptStreamError("bit stream exhausted")
        self._acc >>= nbits
        self._nbits -= nbits

    def align_to_byte(self) -> None:
        """Discard bits up to the next byte boundary."""
        drop = self._nbits % 8
        if drop:
            self.read_bits(drop)

    def read_bytes(self, n: int) -> bytes:
        """Read ``n`` whole bytes; the stream must be byte-aligned.

        When the reader is byte-aligned the bytes are taken by slicing
        the underlying buffer (after draining whole bytes already in the
        accumulator) instead of one ``read_bits(8)`` call per byte.
        """
        if self._nbits % 8:
            raise ValueError("read_bytes requires byte alignment")
        out = bytearray()
        while self._nbits and n > 0:
            out.append(self._acc & 0xFF)
            self._acc >>= 8
            self._nbits -= 8
            n -= 1
        if n > 0:
            end = self._pos + n
            if end > len(self._data):
                raise CorruptStreamError("bit stream exhausted")
            out += self._data[self._pos : end]
            self._pos = end
        return bytes(out)

    @property
    def bits_remaining(self) -> int:
        """Upper bound on the number of unread bits."""
        return (len(self._data) - self._pos) * 8 + self._nbits
