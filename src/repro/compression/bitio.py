"""Bit-granular I/O used by the entropy coders.

Bits are packed LSB-first within each byte, the same convention RFC 1951
(Deflate) uses: the first bit written becomes the least-significant bit of
the first output byte. Huffman codes are written most-significant-bit first
via :meth:`BitWriter.write_bits_msb` so canonical code prefixes sort the
way the decoder expects.
"""

from __future__ import annotations

from repro.errors import CorruptStreamError


class BitWriter:
    """Accumulates bits LSB-first into a growing byte buffer."""

    def __init__(self) -> None:
        self._out = bytearray()
        self._acc = 0
        self._nbits = 0

    def write_bits(self, value: int, nbits: int) -> None:
        """Append the ``nbits`` low-order bits of ``value``, LSB-first."""
        if nbits < 0:
            raise ValueError(f"nbits must be non-negative, got {nbits}")
        if value < 0 or (nbits < 64 and value >> nbits):
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._acc |= value << self._nbits
        self._nbits += nbits
        while self._nbits >= 8:
            self._out.append(self._acc & 0xFF)
            self._acc >>= 8
            self._nbits -= 8

    def write_bits_msb(self, value: int, nbits: int) -> None:
        """Append ``nbits`` bits of ``value`` starting from the MSB.

        Used for Huffman codes, whose canonical ordering is defined on the
        bit string read most-significant-bit first.
        """
        for shift in range(nbits - 1, -1, -1):
            self.write_bits((value >> shift) & 1, 1)

    def align_to_byte(self) -> None:
        """Pad with zero bits to the next byte boundary."""
        if self._nbits:
            self.write_bits(0, 8 - self._nbits)

    def write_bytes(self, data: bytes) -> None:
        """Append whole bytes; the stream must be byte-aligned."""
        if self._nbits:
            raise ValueError("write_bytes requires byte alignment")
        self._out.extend(data)

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return len(self._out) * 8 + self._nbits

    def getvalue(self) -> bytes:
        """Return the accumulated bytes, flushing any partial byte."""
        self.align_to_byte()
        return bytes(self._out)


class BitReader:
    """Reads bits LSB-first from a byte buffer produced by :class:`BitWriter`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0
        self._acc = 0
        self._nbits = 0

    def read_bits(self, nbits: int) -> int:
        """Read ``nbits`` bits, returning them as an integer (LSB-first)."""
        if nbits < 0:
            raise ValueError(f"nbits must be non-negative, got {nbits}")
        while self._nbits < nbits:
            if self._pos >= len(self._data):
                raise CorruptStreamError("bit stream exhausted")
            self._acc |= self._data[self._pos] << self._nbits
            self._pos += 1
            self._nbits += 8
        value = self._acc & ((1 << nbits) - 1)
        self._acc >>= nbits
        self._nbits -= nbits
        return value

    def read_bit(self) -> int:
        """Read a single bit."""
        return self.read_bits(1)

    def align_to_byte(self) -> None:
        """Discard bits up to the next byte boundary."""
        drop = self._nbits % 8
        if drop:
            self.read_bits(drop)

    def read_bytes(self, n: int) -> bytes:
        """Read ``n`` whole bytes; the stream must be byte-aligned."""
        if self._nbits % 8:
            raise ValueError("read_bytes requires byte alignment")
        out = bytearray()
        for _ in range(n):
            out.append(self.read_bits(8))
        return bytes(out)

    @property
    def bits_remaining(self) -> int:
        """Upper bound on the number of unread bits."""
        return (len(self._data) - self._pos) * 8 + self._nbits
