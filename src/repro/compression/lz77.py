"""LZ77 string matching shared by the Deflate-style and zstd-style codecs.

The tokenizer slides over the input keeping a hash-chain index of 3-byte
prefixes (the classic zlib structure). The hot path,
:meth:`Lz77Matcher.tokenize_packed`, emits a packed integer token stream —
one ``array('q')`` element per token — because allocating a dataclass per
token dominated tokenizer time on 4 KiB pages. The historical object API
(:class:`Literal`/:class:`Match` via :meth:`Lz77Matcher.tokenize`) is a
thin adapter over the packed stream and remains the convenient form for
tests and inspection.

Packed token encoding (``PACKED`` prefix helpers below):

* ``0 <= t <= 255`` — a literal byte ``t``.
* ``t >= 512`` — a match: ``t = (distance << 9) | length``. Lengths are
  3..258 so they fit 9 bits, and ``distance >= 1`` guarantees the two
  ranges never collide.

The window size is a first-class parameter because the multi-channel
experiments (Fig. 8) study exactly what happens when the effective window
shrinks from 4 KiB to 1 KiB as pages are split across DIMMs.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Iterable, List, Union

from repro.errors import ConfigError

MIN_MATCH = 3
MAX_MATCH = 258

_HASH_SHIFT = 16
_HASH_MULT = 2654435761
_HASH_BITS = 15
_HASH_MASK = (1 << _HASH_BITS) - 1

#: Bits reserved for the match length in a packed token.
PACKED_LENGTH_BITS = 9
PACKED_LENGTH_MASK = (1 << PACKED_LENGTH_BITS) - 1


def pack_literal(byte: int) -> int:
    """Pack a literal byte into a token int."""
    return byte


def pack_match(length: int, distance: int) -> int:
    """Pack a match into a token int."""
    return (distance << PACKED_LENGTH_BITS) | length


def packed_is_literal(token: int) -> bool:
    """True when a packed token is a literal byte."""
    return token < 256


@dataclass(frozen=True)
class Literal:
    """A single uncompressed byte."""

    byte: int

    def __post_init__(self) -> None:
        if not 0 <= self.byte <= 255:
            raise ValueError(f"literal byte out of range: {self.byte}")


@dataclass(frozen=True)
class Match:
    """A back-reference: copy ``length`` bytes from ``distance`` back."""

    length: int
    distance: int

    def __post_init__(self) -> None:
        if not MIN_MATCH <= self.length <= MAX_MATCH:
            raise ValueError(f"match length out of range: {self.length}")
        if self.distance < 1:
            raise ValueError(f"match distance out of range: {self.distance}")


Token = Union[Literal, Match]


def _hash3(data: bytes, i: int) -> int:
    """Hash the 3 bytes at ``data[i:i+3]`` into the chain-table index."""
    key = data[i] | (data[i + 1] << 8) | (data[i + 2] << 16)
    return ((key * _HASH_MULT) >> _HASH_SHIFT) & _HASH_MASK


class Lz77Matcher:
    """Greedy/lazy hash-chain matcher with a configurable window.

    ``max_chain`` bounds how many chain entries are probed per position and
    is the usual speed/ratio knob (zlib levels tune the same parameter).
    """

    def __init__(
        self,
        window_size: int = 32 * 1024,
        min_match: int = MIN_MATCH,
        max_match: int = MAX_MATCH,
        max_chain: int = 64,
        lazy: bool = True,
    ) -> None:
        if window_size < 16:
            raise ConfigError(f"window_size too small: {window_size}")
        if not MIN_MATCH <= min_match <= max_match <= MAX_MATCH:
            raise ConfigError(
                f"bad match bounds: min={min_match} max={max_match}"
            )
        self.window_size = window_size
        self.min_match = min_match
        self.max_match = max_match
        self.max_chain = max_chain
        self.lazy = lazy

    def tokenize_packed(self, data: bytes) -> array:
        """Convert ``data`` into a packed LZ77 token stream.

        This is the hot path: one fully inlined scan, no per-token object
        allocation, chunked slice comparison for match extension. The
        token *sequence* is identical to what the seed object-based
        tokenizer produced (the compressed formats depend on it).
        """
        n = len(data)
        tokens = array("q")
        append = tokens.append
        if n == 0:
            return tokens
        min_match = self.min_match
        window_size = self.window_size
        max_match = self.max_match
        max_chain = self.max_chain
        lazy = self.lazy
        lazy_limit = n - min_match - 1  # last pos where lazy defer is legal

        # Build the complete hash chains in one tight rolling-hash pass.
        # The seed tokenizer interleaved insertion with scanning, but it
        # inserted every position 0..n-3 exactly once, in increasing
        # order — so the finished chain structure is the same, and a walk
        # starting at prev[pos] (instead of the head table) visits
        # exactly the candidates the interleaved walk saw when position
        # ``pos`` was scanned: chains only ever point backwards.
        prev = [-1] * n
        if n >= 3:
            head = [-1] * (1 << _HASH_BITS)
            mult = _HASH_MULT
            mask = _HASH_MASK
            key = data[0] | (data[1] << 8)
            for i, byte in enumerate(data[2:]):
                key |= byte << 16
                h = (key * mult >> _HASH_SHIFT) & mask
                prev[i] = head[h]
                head[h] = i
                key >>= 8

        def best_match(
            pos: int,
            # Default-arg binding turns every hot-loop load into a fast
            # local instead of a closure cell dereference.
            data=data,
            prev=prev,
            n=n,
            min_match=min_match,
            max_match=max_match,
            max_chain=max_chain,
            window_size=window_size,
        ) -> int:
            """Packed match token for ``data[pos:]``, or 0 for none."""
            if pos + min_match > n:
                return 0
            candidate = prev[pos]
            floor = pos - window_size
            if floor < 0:
                floor = 0
            if candidate < floor:
                return 0
            best_len = min_match - 1
            best_dist = 0
            max_len = max_match if n - pos > max_match else n - pos
            chain_budget = max_chain
            # Quick-reject target: the byte a candidate must match at
            # offset ``best_len`` to possibly beat the current best.
            # Hoisted out of the loop (it only changes when best_len
            # does); ``pos + best_len < n`` holds because best_len stays
            # strictly below max_len <= n - pos.
            target = data[pos + best_len]
            while candidate >= floor and chain_budget > 0:
                chain_budget -= 1
                # Any candidate mismatching the target byte cannot produce
                # a strictly longer match, so skipping it never changes
                # the selected token.
                if data[candidate + best_len] != target:
                    candidate = prev[candidate]
                    continue
                length = 0
                # Chunked extension: compare 32-byte slices, then settle
                # the tail bytewise. Equivalent to the bytewise loop
                # (bytes are immutable, so overlapping slices are fine).
                while (
                    length + 32 <= max_len
                    and data[candidate + length : candidate + length + 32]
                    == data[pos + length : pos + length + 32]
                ):
                    length += 32
                while (
                    length < max_len
                    and data[candidate + length] == data[pos + length]
                ):
                    length += 1
                if length > best_len:
                    best_len = length
                    best_dist = pos - candidate
                    if length >= max_len:
                        break
                    target = data[pos + best_len]
                candidate = prev[candidate]
            if best_len >= min_match:
                return (best_dist << PACKED_LENGTH_BITS) | best_len
            return 0

        pos = 0
        # Carried lazy result: best_match(pos) already computed by the
        # previous iteration's deferral check against the same chains.
        pending = -1
        # ``prev[pos] < 0`` means best_match must return 0 (no chain to
        # walk) — skip the call entirely in that common case.
        while pos < n:
            if pending >= 0:
                match = pending
                pending = -1
            else:
                match = best_match(pos) if prev[pos] >= 0 else 0
            if match == 0:
                append(data[pos])
                pos += 1
                continue
            if lazy and pos <= lazy_limit:
                # One-step lazy evaluation, as zlib does: if deferring by
                # one byte yields a strictly longer match, emit a literal.
                next_match = (
                    best_match(pos + 1) if prev[pos + 1] >= 0 else 0
                )
                if (
                    next_match != 0
                    and (next_match & PACKED_LENGTH_MASK)
                    > (match & PACKED_LENGTH_MASK)
                ):
                    append(data[pos])
                    pos += 1
                    pending = next_match
                    continue
            append(match)
            pos += match & PACKED_LENGTH_MASK
        return tokens

    def tokenize(self, data: bytes) -> List[Token]:
        """Convert ``data`` into a list of LZ77 tokens.

        Thin adapter over :meth:`tokenize_packed`, kept for tests and any
        consumer that wants the readable object form.
        """
        mask = PACKED_LENGTH_MASK
        return [
            Literal(t)
            if t < 256
            else Match(length=t & mask, distance=t >> PACKED_LENGTH_BITS)
            for t in self.tokenize_packed(data)
        ]


def pack_tokens(tokens: Iterable[Token]) -> array:
    """Convert object tokens to the packed representation."""
    out = array("q")
    for token in tokens:
        if isinstance(token, Literal):
            out.append(token.byte)
        else:
            out.append((token.distance << PACKED_LENGTH_BITS) | token.length)
    return out


def extend_match(out: bytearray, start: int, length: int) -> None:
    """Append ``length`` bytes copied from ``out[start:]`` (may overlap).

    Non-overlapping spans are a single slice copy; overlapping spans
    (distance < length, the RLE case) replicate the periodic seed by
    doubling instead of appending byte-by-byte.
    """
    distance = len(out) - start
    if distance >= length:
        out += out[start : start + length]
        return
    chunk = bytes(out[start:])
    while len(chunk) < length:
        chunk += chunk
    out += chunk[:length]


def detokenize(tokens: Iterable[Token]) -> bytes:
    """Reconstruct the original bytes from an LZ77 token stream."""
    out = bytearray()
    for token in tokens:
        if isinstance(token, Literal):
            out.append(token.byte)
        else:
            start = len(out) - token.distance
            if start < 0:
                raise ValueError(
                    f"match distance {token.distance} exceeds output "
                    f"length {len(out)}"
                )
            extend_match(out, start, token.length)
    return bytes(out)


def detokenize_packed(tokens: Iterable[int]) -> bytes:
    """Reconstruct the original bytes from a packed token stream."""
    out = bytearray()
    mask = PACKED_LENGTH_MASK
    for token in tokens:
        if token < 256:
            out.append(token)
        else:
            distance = token >> PACKED_LENGTH_BITS
            start = len(out) - distance
            if start < 0:
                raise ValueError(
                    f"match distance {distance} exceeds output "
                    f"length {len(out)}"
                )
            extend_match(out, start, token & mask)
    return bytes(out)


def token_stream_cost(tokens: Iterable[Token]) -> int:
    """Total decoded length implied by a token stream, in bytes."""
    total = 0
    for token in tokens:
        total += 1 if isinstance(token, Literal) else token.length
    return total


def token_stream_cost_packed(tokens: Iterable[int]) -> int:
    """Total decoded length implied by a packed token stream, in bytes."""
    total = 0
    mask = PACKED_LENGTH_MASK
    for token in tokens:
        total += 1 if token < 256 else token & mask
    return total
