"""LZ77 string matching shared by the Deflate-style and zstd-style codecs.

The tokenizer slides over the input keeping a hash-chain index of 3-byte
prefixes (the classic zlib structure). Three engines produce bit-identical
token streams:

* the **scalar engine** (:meth:`Lz77Matcher._tokenize_packed_scalar`) — the
  seed's fully inlined hash-chain walk, kept as the reference and as the
  fallback for tiny inputs where numpy setup costs more than it saves;
* the **vectorized engine** (:func:`_tokenize_pages_vec`) — a numpy
  formulation that evaluates the whole buffer (or a whole *batch* of
  pages) at once, HDL-deflate-FAST style: build every hash chain with one
  stable argsort, compute candidate match lengths with unaligned-uint64
  XOR compares, and prune candidates with the same one-byte quick-reject
  the scalar walk uses;
* the **native engine** (``lz77_tokenize`` in ``_hotpath.c``, loaded via
  :mod:`repro.compression._native`) — a statement-for-statement C
  translation of the scalar walk, preferred whenever the host compiler
  produced it; any load failure silently falls back to the other two.

The equivalence argument is structural, not statistical: the scalar
``best_match(pos)`` depends only on the finished chain structure (chains
only point backwards), its quick-reject and early-break are pure
optimisations that never change the selected token, and the greedy/lazy
scan is memoryless over per-position best matches. The vectorized engine
replays exactly those decisions, so the token sequence — and therefore
every compressed byte downstream — is identical. The test suite enforces
this against a verbatim copy of the seed tokenizer.

Packed token encoding (``PACKED`` prefix helpers below):

* ``0 <= t <= 255`` — a literal byte ``t``.
* ``t >= 512`` — a match: ``t = (distance << 9) | length``. Lengths are
  3..258 so they fit 9 bits, and ``distance >= 1`` guarantees the two
  ranges never collide.

The window size is a first-class parameter because the multi-channel
experiments (Fig. 8) study exactly what happens when the effective window
shrinks from 4 KiB to 1 KiB as pages are split across DIMMs.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple, Union

import numpy as np

from repro.compression import _native
from repro.errors import ConfigError

MIN_MATCH = 3
MAX_MATCH = 258

_HASH_SHIFT = 16
_HASH_MULT = 2654435761
_HASH_BITS = 15
_HASH_MASK = (1 << _HASH_BITS) - 1

#: Bits reserved for the match length in a packed token.
PACKED_LENGTH_BITS = 9
PACKED_LENGTH_MASK = (1 << PACKED_LENGTH_BITS) - 1

#: Below this many bytes the numpy engine's fixed setup cost exceeds the
#: scalar walk; the scalar engine handles the page. Both are exact, so
#: the cutover is purely a performance knob.
_VECTOR_MIN_BYTES = 1024

#: Once the step-synchronised walker population drops below this, finish
#: the stragglers with the scalar walk instead of paying per-step numpy
#: dispatch overhead on near-empty arrays.
_SCALAR_TAIL_WALKERS = 192

#: Chain hops evaluated per wide iteration of the vectorized walk. Larger
#: blocks amortise numpy dispatch overhead; the hop results inside a block
#: are replayed in step order so selection semantics are unchanged.
_CHAIN_BLOCK = 8

#: Right-dilation applied to small demand-loop fix-up sets: evaluating a
#: few extra positions past each changed one collapses the geometric
#: tail of one-position repair rounds (extra exactness never hurts).
_DILATE = np.arange(1, 33, dtype=np.int64)

#: Head-table scratch for the native tokenizer (the kernel re-memsets it
#: per call); allocated lazily, shared process-wide (single-threaded).
_NATIVE_HEAD_SCRATCH = None


def pack_literal(byte: int) -> int:
    """Pack a literal byte into a token int."""
    return byte


def pack_match(length: int, distance: int) -> int:
    """Pack a match into a token int."""
    return (distance << PACKED_LENGTH_BITS) | length


def packed_is_literal(token: int) -> bool:
    """True when a packed token is a literal byte."""
    return token < 256


@dataclass(frozen=True)
class Literal:
    """A single uncompressed byte."""

    byte: int

    def __post_init__(self) -> None:
        if not 0 <= self.byte <= 255:
            raise ValueError(f"literal byte out of range: {self.byte}")


@dataclass(frozen=True)
class Match:
    """A back-reference: copy ``length`` bytes from ``distance`` back."""

    length: int
    distance: int

    def __post_init__(self) -> None:
        if not MIN_MATCH <= self.length <= MAX_MATCH:
            raise ValueError(f"match length out of range: {self.length}")
        if self.distance < 1:
            raise ValueError(f"match distance out of range: {self.distance}")


Token = Union[Literal, Match]


def _hash3(data: bytes, i: int) -> int:
    """Hash the 3 bytes at ``data[i:i+3]`` into the chain-table index."""
    key = data[i] | (data[i + 1] << 8) | (data[i + 2] << 16)
    return ((key * _HASH_MULT) >> _HASH_SHIFT) & _HASH_MASK


class Lz77Matcher:
    """Greedy/lazy hash-chain matcher with a configurable window.

    ``max_chain`` bounds how many chain entries are probed per position and
    is the usual speed/ratio knob (zlib levels tune the same parameter).
    """

    def __init__(
        self,
        window_size: int = 32 * 1024,
        min_match: int = MIN_MATCH,
        max_match: int = MAX_MATCH,
        max_chain: int = 64,
        lazy: bool = True,
    ) -> None:
        if window_size < 16:
            raise ConfigError(f"window_size too small: {window_size}")
        if not MIN_MATCH <= min_match <= max_match <= MAX_MATCH:
            raise ConfigError(
                f"bad match bounds: min={min_match} max={max_match}"
            )
        self.window_size = window_size
        self.min_match = min_match
        self.max_match = max_match
        self.max_chain = max_chain
        self.lazy = lazy

    def tokenize_packed(self, data: bytes) -> array:
        """Convert ``data`` into a packed LZ77 token stream.

        Dispatches to the native kernel when available, else to the
        vectorized engine for page-sized inputs and the scalar walk for
        small ones; all emit the identical token sequence (the
        compressed formats depend on it).
        """
        if _native.load() is not None:
            tokens = self._tokenize_packed_native(data)
            if tokens is not None:
                return tokens
        if len(data) < _VECTOR_MIN_BYTES:
            return self._tokenize_packed_scalar(data)
        return self.tokenize_packed_batch([data])[0]

    def tokenize_packed_batch(self, pages: Sequence[bytes]) -> List[array]:
        """Tokenize a batch of buffers in one vectorized pass.

        All pages share a single numpy working set — hash chains, match
        candidates and length computations are evaluated across the whole
        batch so per-page setup is paid once. Chains never cross page
        boundaries (each page's window floor is clamped to its own start),
        so the per-page token streams are identical to tokenizing each
        page alone.
        """
        if not pages:
            return []
        if _native.load() is not None:
            native = [self._tokenize_packed_native(p) for p in pages]
            if all(t is not None for t in native):
                return native
        big = [p for p in pages if len(p) >= _VECTOR_MIN_BYTES]
        out: List[array] = [None] * len(pages)  # type: ignore[list-item]
        if big:
            vec_iter = iter(_tokenize_pages_vec(self, big))
        for i, page in enumerate(pages):
            if len(page) >= _VECTOR_MIN_BYTES:
                out[i] = next(vec_iter)
            else:
                out[i] = self._tokenize_packed_scalar(page)
        return out

    def _tokenize_packed_native(self, data: bytes):
        """Tokenize via the C kernel; ``None`` means "use a Python engine".

        The kernel is a direct translation of
        :meth:`_tokenize_packed_scalar` — same chains, same quick-reject,
        same budget and lazy rules — so its token stream is identical.
        """
        n = len(data)
        tokens = array("q")
        if n == 0:
            return tokens
        lib = _native.load()
        if lib is None:
            return None
        global _NATIVE_HEAD_SCRATCH
        if _NATIVE_HEAD_SCRATCH is None:
            _NATIVE_HEAD_SCRATCH = np.empty(1 << _HASH_BITS, dtype=np.int32)
        data_np = np.frombuffer(data, dtype=np.uint8)  # keeps `data` alive
        prev = np.empty(n, dtype=np.int32)
        out = np.empty(n, dtype=np.int64)  # every token consumes >= 1 byte
        ntok = lib.lz77_tokenize(
            data_np.ctypes.data,
            n,
            self.window_size,
            self.min_match,
            self.max_match,
            self.max_chain,
            1 if self.lazy else 0,
            _NATIVE_HEAD_SCRATCH.ctypes.data,
            prev.ctypes.data,
            out.ctypes.data,
        )
        if ntok < 0:
            return None
        tokens.frombytes(out[:ntok].tobytes())
        return tokens

    def _tokenize_packed_scalar(self, data: bytes) -> array:
        """Scalar reference engine: one fully inlined hash-chain scan."""
        n = len(data)
        tokens = array("q")
        append = tokens.append
        if n == 0:
            return tokens
        min_match = self.min_match
        window_size = self.window_size
        max_match = self.max_match
        max_chain = self.max_chain
        lazy = self.lazy
        lazy_limit = n - min_match - 1  # last pos where lazy defer is legal

        # Build the complete hash chains in one tight rolling-hash pass.
        # The seed tokenizer interleaved insertion with scanning, but it
        # inserted every position 0..n-3 exactly once, in increasing
        # order — so the finished chain structure is the same, and a walk
        # starting at prev[pos] (instead of the head table) visits
        # exactly the candidates the interleaved walk saw when position
        # ``pos`` was scanned: chains only ever point backwards.
        prev = [-1] * n
        if n >= 3:
            head = [-1] * (1 << _HASH_BITS)
            mult = _HASH_MULT
            mask = _HASH_MASK
            key = data[0] | (data[1] << 8)
            for i, byte in enumerate(data[2:]):
                key |= byte << 16
                h = (key * mult >> _HASH_SHIFT) & mask
                prev[i] = head[h]
                head[h] = i
                key >>= 8

        def best_match(
            pos: int,
            # Default-arg binding turns every hot-loop load into a fast
            # local instead of a closure cell dereference.
            data=data,
            prev=prev,
            n=n,
            min_match=min_match,
            max_match=max_match,
            max_chain=max_chain,
            window_size=window_size,
        ) -> int:
            """Packed match token for ``data[pos:]``, or 0 for none."""
            if pos + min_match > n:
                return 0
            candidate = prev[pos]
            floor = pos - window_size
            if floor < 0:
                floor = 0
            if candidate < floor:
                return 0
            best_len = min_match - 1
            best_dist = 0
            max_len = max_match if n - pos > max_match else n - pos
            chain_budget = max_chain
            # Quick-reject target: the byte a candidate must match at
            # offset ``best_len`` to possibly beat the current best.
            # Hoisted out of the loop (it only changes when best_len
            # does); ``pos + best_len < n`` holds because best_len stays
            # strictly below max_len <= n - pos.
            target = data[pos + best_len]
            while candidate >= floor and chain_budget > 0:
                chain_budget -= 1
                # Any candidate mismatching the target byte cannot produce
                # a strictly longer match, so skipping it never changes
                # the selected token.
                if data[candidate + best_len] != target:
                    candidate = prev[candidate]
                    continue
                length = 0
                # Chunked extension: compare 32-byte slices, then settle
                # the tail bytewise. Equivalent to the bytewise loop
                # (bytes are immutable, so overlapping slices are fine).
                while (
                    length + 32 <= max_len
                    and data[candidate + length : candidate + length + 32]
                    == data[pos + length : pos + length + 32]
                ):
                    length += 32
                while (
                    length < max_len
                    and data[candidate + length] == data[pos + length]
                ):
                    length += 1
                if length > best_len:
                    best_len = length
                    best_dist = pos - candidate
                    if length >= max_len:
                        break
                    target = data[pos + best_len]
                candidate = prev[candidate]
            if best_len >= min_match:
                return (best_dist << PACKED_LENGTH_BITS) | best_len
            return 0

        pos = 0
        # Carried lazy result: best_match(pos) already computed by the
        # previous iteration's deferral check against the same chains.
        pending = -1
        # ``prev[pos] < 0`` means best_match must return 0 (no chain to
        # walk) — skip the call entirely in that common case.
        while pos < n:
            if pending >= 0:
                match = pending
                pending = -1
            else:
                match = best_match(pos) if prev[pos] >= 0 else 0
            if match == 0:
                append(data[pos])
                pos += 1
                continue
            if lazy and pos <= lazy_limit:
                # One-step lazy evaluation, as zlib does: if deferring by
                # one byte yields a strictly longer match, emit a literal.
                next_match = (
                    best_match(pos + 1) if prev[pos + 1] >= 0 else 0
                )
                if (
                    next_match != 0
                    and (next_match & PACKED_LENGTH_MASK)
                    > (match & PACKED_LENGTH_MASK)
                ):
                    append(data[pos])
                    pos += 1
                    pending = next_match
                    continue
            append(match)
            pos += match & PACKED_LENGTH_MASK
        return tokens

    def tokenize(self, data: bytes) -> List[Token]:
        """Convert ``data`` into a list of LZ77 tokens.

        Thin adapter over :meth:`tokenize_packed`, kept for tests and any
        consumer that wants the readable object form.
        """
        mask = PACKED_LENGTH_MASK
        return [
            Literal(t)
            if t < 256
            else Match(length=t & mask, distance=t >> PACKED_LENGTH_BITS)
            for t in self.tokenize_packed(data)
        ]


# ---------------------------------------------------------------------------
# Vectorized matching engine
# ---------------------------------------------------------------------------


def _page_arrays(pages: Sequence[bytes]) -> List[np.ndarray]:
    """uint8 views of each page (no copies)."""
    return [np.frombuffer(p, dtype=np.uint8) for p in pages]


def _first_diff_byte(x: np.ndarray) -> np.ndarray:
    """Index of the lowest-order nonzero byte of each uint64 (8 if zero).

    ``x`` holds XORs of little-endian 8-byte windows, so the lowest
    nonzero byte is the first differing byte of the two windows.  The
    count-trailing-zeros is done by isolating the lowest set bit and
    reading its float64 exponent — powers of two convert exactly, so
    this is branch-free and touches each element a constant number of
    times (no (n, 8) byte matrix).
    """
    lsb = x & (np.uint64(0) - x)
    exp = lsb.astype(np.float64).view(np.uint64) >> np.uint64(52)
    byte = ((exp - np.uint64(1023)) >> np.uint64(3)).astype(np.int64)
    return np.where(x == np.uint64(0), np.int64(8), byte)


def _tokenize_pages_vec(
    matcher: Lz77Matcher, pages: Sequence[bytes]
) -> List[array]:
    """Tokenize every page with the vectorized demand-driven engine.

    Emits exactly the scalar engine's packed token streams:

    1. Build every hash chain with a vectorized rolling hash plus one
       stable argsort (grouping equal hashes preserves position order,
       so ``prev`` comes out identical to the scalar insertion pass).
    2. Evaluate each position's **first** candidate with full unaligned
       uint64 XOR compares — a lower bound on the final match; walkers
       whose first candidate already reaches ``max_len`` are final (the
       scalar early break, which also absorbs byte-run explosions).
    3. Demand loop: pointer-double the greedy/lazy scan over current
       bounds, then finish the exact chain walk — step-synchronised
       blocks with the scalar's running-best quick-reject, improvements
       replayed in chain order (strict ``>`` = first-maximal), budget
       consumed by visited candidates, stragglers finished by a scalar
       tail — for just the scan-visited positions, until a fixed point.
    4. Emit the token stream straight off the fixed-point walk: the
       scan's path only ever reads positions it visits, and those are
       exact, so the stream equals full per-position evaluation.
    """
    starts: List[int] = []
    off = 0
    for page in pages:
        starts.append(off)
        off += len(page)
    total = off
    min_match = matcher.min_match
    max_match = matcher.max_match

    def all_literals() -> List[array]:
        outs = []
        for page in pages:
            a = array("q")
            a.frombytes(
                np.frombuffer(page, dtype=np.uint8)
                .astype(np.int64)
                .tobytes()
            )
            outs.append(a)
        return outs

    if total < 3:
        return all_literals()

    pad = np.zeros(total + max_match + 16, dtype=np.uint8)
    for page, s in zip(pages, starts):
        if page:
            pad[s : s + len(page)] = np.frombuffer(page, dtype=np.uint8)
    data_np = pad[:total]

    # --- hash chains ------------------------------------------------------
    # prev[i] = nearest j < i with the same 3-byte hash. Positions whose
    # trigram crosses a page boundary get inserted with a garbage hash,
    # but they can only ever be *candidates* for positions in later pages,
    # and those walkers stop at their own page floor first — so the
    # per-page chain structure is exactly the scalar one.
    d64 = data_np.astype(np.uint64)
    key = d64[:-2] | (d64[1:-1] << np.uint64(8)) | (d64[2:] << np.uint64(16))
    h = (
        ((key * np.uint64(_HASH_MULT)) >> np.uint64(_HASH_SHIFT))
        & np.uint64(_HASH_MASK)
    ).astype(np.uint16)
    order = np.argsort(h, kind="stable").astype(np.int64)
    hs = h[order]
    same = np.empty(len(order), dtype=bool)
    same[0] = False
    same[1:] = hs[1:] == hs[:-1]
    prev = np.full(total, -1, dtype=np.int32)
    prev[order[1:][same[1:]]] = order[:-1][same[1:]]

    # Unaligned little-endian uint64 window at every byte offset.
    sw = np.lib.stride_tricks.sliding_window_view(pad, 8)
    u8win = np.ascontiguousarray(sw).view(np.uint64).ravel()

    pos_all = np.arange(total, dtype=np.int32)
    page_start = np.empty(total, dtype=np.int32)
    page_end = np.empty(total, dtype=np.int32)
    for page, s in zip(pages, starts):
        page_start[s : s + len(page)] = s
        page_end[s : s + len(page)] = s + len(page)
    floors = np.maximum(pos_all - matcher.window_size, page_start).astype(
        np.int32
    )
    ml_full = np.minimum(max_match, page_end - pos_all).astype(np.int32)

    def lce(cands: np.ndarray, poss: np.ndarray) -> np.ndarray:
        """Common extension length of each (candidate, position) pair."""
        x = u8win[cands] ^ u8win[poss]
        out = _first_diff_byte(x)
        ext = np.flatnonzero(x == 0)
        offv = 8
        while len(ext) and offv <= max_match:
            x2 = u8win[cands[ext] + offv] ^ u8win[poss[ext] + offv]
            nz2 = x2 != 0
            if nz2.any():
                out[ext[nz2]] = offv + _first_diff_byte(x2[nz2])
                ext = ext[~nz2]
            offv += 8
        if len(ext):
            out[ext] = offv
        return out

    # --- step 0: every walker's first candidate ---------------------------
    # One full LCE against the nearest chain entry seeds a *lower bound*
    # on each position's final match. Positions the greedy/lazy scan
    # never visits keep this bound (it is a real, decodable match); the
    # demand loop below refines exactly the positions the scan reads.
    wmask = (prev >= 0) & (pos_all + min_match <= page_end)
    idx = pos_all[wmask]
    best_len = np.full(total, min_match - 1, dtype=np.int32)
    best_dist = np.zeros(total, dtype=np.int32)
    if len(idx):
        cand = prev[idx]
        keep = cand >= floors[idx]
        idx = idx[keep]
        cand = cand[keep]
    if len(idx) == 0:
        return all_literals()
    ml = ml_full[idx]
    lce0 = np.minimum(lce(cand, idx), ml)
    improved = lce0 > (min_match - 1)
    best_len[idx] = np.where(improved, lce0, min_match - 1)
    best_dist[idx] = np.where(improved, idx - cand, 0)

    # `evaluated` marks positions whose token is already final: literals
    # without a chain, and walkers whose first candidate reached max_len
    # (the scalar early break — nothing can strictly beat it).
    evaluated = np.ones(total, dtype=bool)
    evaluated[idx[best_len[idx] < ml]] = False

    max_chain = matcher.max_chain
    tail_state: List = []  # lazily materialised once, shared by all calls

    def evaluate(sub: np.ndarray) -> None:
        """Finish the exact chain walk (steps 1+) for positions ``sub``."""
        widx = sub.astype(np.int32)
        wcand = prev[prev[widx]]
        wfl = floors[widx]
        wlb = best_len[widx]
        wtb = pad[widx + wlb]

        pair_pk: List[np.ndarray] = []
        pair_ck: List[np.ndarray] = []
        pair_ord: List[np.ndarray] = []
        step = 1
        while step < max_chain and len(widx) > _SCALAR_TAIL_WALKERS:
            hops = min(_CHAIN_BLOCK, max_chain - step)
            # Materialise the next `hops` chain candidates per walker:
            # row r of `cands` holds each walker's candidate at step+r.
            w = len(widx)
            cands = np.empty((hops, w), dtype=np.int32)
            cands[0] = wcand
            for r in range(1, hops):
                cands[r] = prev[cands[r - 1]]
            # A walker is alive at hop r only if it was alive at every
            # hop before it (chains strictly decrease, so once below the
            # floor a walker never revives — cumulative AND replicates
            # the scalar loop exit exactly).
            alive = np.logical_and.accumulate(cands >= wfl, axis=0)
            # Quick-reject against the step-0 lower bound. The scalar
            # strengthens its target as the best improves; the weaker
            # static bound only lets *more* candidates through to the
            # full evaluation — never fewer — so results are unchanged.
            ok = alive & (pad[cands + wlb] == wtb)
            rs, ws = np.nonzero(ok)  # row-major == chain-step order
            if len(ws):
                pair_pk.append(widx[ws])
                pair_ck.append(cands[rs, ws])
                pair_ord.append(rs.astype(np.int32) + np.int32(step))
            step += hops
            live_mask = alive[-1]
            wcand = prev[cands[-1]]
            if not live_mask.all():
                widx = widx[live_mask]
                wcand = wcand[live_mask]
                wfl = wfl[live_mask]
                wlb = wlb[live_mask]
                wtb = wtb[live_mask]

        # Resolve every recorded pair at once. The sequential strict-``>``
        # replay keeps, per position, the pair with the maximal length
        # and the earliest chain step among maximals (a position is one
        # walker, so steps never tie) — exactly the first row per
        # position after sorting by (position, -length, step).
        if pair_pk:
            pk = np.concatenate(pair_pk)
            ck = np.concatenate(pair_ck)
            orda = np.concatenate(pair_ord)
            lk = np.minimum(lce(ck, pk), ml_full[pk])
            srt = np.lexsort((orda, -lk, pk))
            pks = pk[srt]
            first = np.empty(len(pks), dtype=bool)
            first[0] = True
            first[1:] = pks[1:] != pks[:-1]
            wsel = srt[first]
            wpk = pk[wsel]
            wlk = lk[wsel]
            better = wlk > best_len[wpk]
            if better.any():
                wpki = wpk[better]
                best_len[wpki] = wlk[better]
                best_dist[wpki] = wpki - ck[wsel][better]

        # Scalar tail: finish straggler walkers with the exact walk.
        if len(widx) and step < max_chain:
            if not tail_state:
                tail_state.append(prev.tolist())
                tail_state.append(pad.tobytes())
            prev_l, pad_b = tail_state
            budget_left = max_chain - step
            wl = widx.tolist()
            cl = wcand.tolist()
            fll = wfl.tolist()
            bll = best_len[widx].tolist()
            bdl = best_dist[widx].tolist()
            mll = ml_full[widx].tolist()
            for i, pos in enumerate(wl):
                candidate = cl[i]
                floor = fll[i]
                bl = bll[i]
                bd = bdl[i]
                max_len = mll[i]
                budget = budget_left
                target = pad_b[pos + bl]
                while candidate >= floor and budget > 0:
                    budget -= 1
                    if pad_b[candidate + bl] != target:
                        candidate = prev_l[candidate]
                        continue
                    length = 0
                    while (
                        length + 32 <= max_len
                        and pad_b[candidate + length : candidate + length + 32]
                        == pad_b[pos + length : pos + length + 32]
                    ):
                        length += 32
                    while (
                        length < max_len
                        and pad_b[candidate + length] == pad_b[pos + length]
                    ):
                        length += 1
                    if length > bl:
                        bl = length
                        bd = pos - candidate
                        if length >= max_len:
                            break
                        target = pad_b[pos + bl]
                    candidate = prev_l[candidate]
                best_len[pos] = bl
                best_dist[pos] = bd

    # --- demand loop: evaluate only what the scan actually reads ----------
    # The greedy/lazy scan visits ~a quarter of all positions (matches
    # skip the rest). Walk the scan against the current bounds, exactly
    # evaluate every visited-but-unfinished position (plus its +1
    # neighbour, which the lazy probe reads), and re-walk. Bounds only
    # ever grow, so when a walk touches only evaluated positions it is
    # *the* exact scan — identical to evaluating every position.
    lazy = matcher.lazy
    starts_arr = np.array(starts, dtype=np.int32)
    if lazy:
        page_len = page_end - page_start
        lp = pos_all - page_start
        defer_ok = (lp <= page_len - min_match - 1) & (lp <= page_len - 2)
    else:
        defer_ok = np.zeros(total, dtype=bool)

    def scan_visited() -> Tuple[np.ndarray, np.ndarray]:
        """Pointer-double the greedy/lazy scan over the current bounds.

        Returns (visited positions mask, literal-step mask): after k
        doubling rounds the frontier covers the first 2^k scan steps of
        every page, so total work is O(path * log n) for the batch.
        """
        lengths = np.where(best_len >= min_match, best_len, np.int32(0))
        ln_next = np.empty(total, dtype=np.int32)
        ln_next[:-1] = lengths[1:]
        ln_next[-1] = 0
        defer = defer_ok & (lengths > 0) & (ln_next > lengths)
        literal_step = (lengths == 0) | defer
        nxt = np.where(literal_step, pos_all + np.int32(1), pos_all + lengths)
        np.minimum(nxt, page_end, out=nxt)
        # Page ends absorb into the shared sentinel so walks never leak
        # into the next page of the batch.
        nxt[nxt == page_end] = total
        jump = np.empty(total + 1, dtype=np.int32)
        jump[:total] = nxt
        jump[total] = total
        visited = np.zeros(total + 1, dtype=bool)
        frontier = starts_arr
        visited[frontier] = True
        while True:
            nx = jump[frontier]
            nx = nx[~visited[nx]]
            if len(nx) == 0:
                break
            visited[nx] = True
            frontier = np.concatenate([frontier, nx])
            jump = jump[jump]
        return visited[:total], literal_step

    rounds = 0
    while True:
        vis, literal_step = scan_visited()
        if evaluated.all():
            break
        need = vis.copy()
        need[1:] |= vis[:-1]  # the lazy probe reads position + 1
        need &= ~evaluated
        sub = np.flatnonzero(need)
        if len(sub) == 0:
            break
        rounds += 1
        if rounds > 12:  # safety net: finish everything in one pass
            sub = np.flatnonzero(~evaluated)
        elif rounds > 1 and len(sub) < 4096:
            # Path repair after an improved match usually resyncs within
            # a few bytes; evaluating a short right-dilation of the
            # changed set (extra exactness never hurts) collapses the
            # geometric tail of tiny fix-up rounds into one.
            ext = (sub[:, None] + _DILATE).ravel()
            grow = need
            grow[ext[ext < total]] = True
            grow &= ~evaluated
            sub = np.flatnonzero(grow)
        evaluate(sub)
        evaluated[sub] = True

    # --- emission straight off the fixed-point walk -----------------------
    vis_idx = np.flatnonzero(vis)
    bl = best_len[vis_idx].astype(np.int64)
    bd = best_dist[vis_idx].astype(np.int64)
    packed = (bd << PACKED_LENGTH_BITS) | bl
    emitted = np.where(
        literal_step[vis_idx], data_np[vis_idx].astype(np.int64), packed
    )
    bounds = np.searchsorted(vis_idx, starts_arr)
    outs: List[array] = []
    for i in range(len(pages)):
        o = bounds[i]
        e = bounds[i + 1] if i + 1 < len(pages) else len(vis_idx)
        a = array("q")
        a.frombytes(emitted[o:e].tobytes())
        outs.append(a)
    return outs


def pack_tokens(tokens: Iterable[Token]) -> array:
    """Convert object tokens to the packed representation."""
    out = array("q")
    for token in tokens:
        if isinstance(token, Literal):
            out.append(token.byte)
        else:
            out.append((token.distance << PACKED_LENGTH_BITS) | token.length)
    return out


def extend_match(out: bytearray, start: int, length: int) -> None:
    """Append ``length`` bytes copied from ``out[start:]`` (may overlap).

    Non-overlapping spans are a single slice copy; overlapping spans
    (distance < length, the RLE case) replicate the periodic seed by
    doubling instead of appending byte-by-byte.
    """
    distance = len(out) - start
    if distance >= length:
        out += out[start : start + length]
        return
    chunk = bytes(out[start:])
    while len(chunk) < length:
        chunk += chunk
    out += chunk[:length]


def detokenize(tokens: Iterable[Token]) -> bytes:
    """Reconstruct the original bytes from an LZ77 token stream."""
    out = bytearray()
    for token in tokens:
        if isinstance(token, Literal):
            out.append(token.byte)
        else:
            start = len(out) - token.distance
            if start < 0:
                raise ValueError(
                    f"match distance {token.distance} exceeds output "
                    f"length {len(out)}"
                )
            extend_match(out, start, token.length)
    return bytes(out)


def detokenize_packed(tokens: Iterable[int]) -> bytes:
    """Reconstruct the original bytes from a packed token stream.

    Literal *runs* are appended in bulk (one slice assignment per run)
    instead of byte-by-byte; matches keep the doubling copy of
    :func:`extend_match`.
    """
    if isinstance(tokens, array) and tokens.typecode == "q":
        return _detokenize_packed_fast(tokens)
    out = bytearray()
    mask = PACKED_LENGTH_MASK
    for token in tokens:
        if token < 256:
            out.append(token)
        else:
            distance = token >> PACKED_LENGTH_BITS
            start = len(out) - distance
            if start < 0:
                raise ValueError(
                    f"match distance {distance} exceeds output "
                    f"length {len(out)}"
                )
            extend_match(out, start, token & mask)
    return bytes(out)


def _detokenize_packed_fast(tokens: array) -> bytes:
    """Bulk detokenizer for packed ``array('q')`` streams.

    Vectorizes the literal fills: consecutive literal tokens become one
    ``bytes`` conversion + slice append, and matches are located up front
    with numpy so the Python loop only runs once per match.
    """
    ntok = len(tokens)
    if ntok == 0:
        return b""
    tok_np = np.frombuffer(tokens, dtype=np.int64)
    match_idx = np.flatnonzero(tok_np >= 256)
    if len(match_idx) == 0:
        return tok_np.astype(np.uint8).tobytes()
    out = bytearray()
    mask = PACKED_LENGTH_MASK
    lit8 = tok_np.astype(np.uint8)  # match slots hold garbage, never read
    cursor = 0
    for mi in match_idx.tolist():
        if mi > cursor:
            out += lit8[cursor:mi].tobytes()
        token = tokens[mi]
        distance = token >> PACKED_LENGTH_BITS
        start = len(out) - distance
        if start < 0:
            raise ValueError(
                f"match distance {distance} exceeds output "
                f"length {len(out)}"
            )
        extend_match(out, start, token & mask)
        cursor = mi + 1
    if cursor < ntok:
        out += lit8[cursor:].tobytes()
    return bytes(out)


def token_stream_cost(tokens: Iterable[Token]) -> int:
    """Total decoded length implied by a token stream, in bytes."""
    total = 0
    for token in tokens:
        total += 1 if isinstance(token, Literal) else token.length
    return total


def token_stream_cost_packed(tokens: Iterable[int]) -> int:
    """Total decoded length implied by a packed token stream, in bytes."""
    total = 0
    mask = PACKED_LENGTH_MASK
    for token in tokens:
        total += 1 if token < 256 else token & mask
    return total
