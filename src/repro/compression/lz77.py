"""LZ77 string matching shared by the Deflate-style and zstd-style codecs.

The tokenizer slides over the input keeping a hash-chain index of 3-byte
prefixes (the classic zlib structure) and emits a sequence of
:class:`Literal` and :class:`Match` tokens. The window size is a first-class
parameter because the multi-channel experiments (Fig. 8) study exactly what
happens when the effective window shrinks from 4 KiB to 1 KiB as pages are
split across DIMMs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Union

from repro.errors import ConfigError

MIN_MATCH = 3
MAX_MATCH = 258

_HASH_SHIFT = 16
_HASH_MULT = 2654435761
_HASH_BITS = 15
_HASH_MASK = (1 << _HASH_BITS) - 1


@dataclass(frozen=True)
class Literal:
    """A single uncompressed byte."""

    byte: int

    def __post_init__(self) -> None:
        if not 0 <= self.byte <= 255:
            raise ValueError(f"literal byte out of range: {self.byte}")


@dataclass(frozen=True)
class Match:
    """A back-reference: copy ``length`` bytes from ``distance`` back."""

    length: int
    distance: int

    def __post_init__(self) -> None:
        if not MIN_MATCH <= self.length <= MAX_MATCH:
            raise ValueError(f"match length out of range: {self.length}")
        if self.distance < 1:
            raise ValueError(f"match distance out of range: {self.distance}")


Token = Union[Literal, Match]


def _hash3(data: bytes, i: int) -> int:
    """Hash the 3 bytes at ``data[i:i+3]`` into the chain-table index."""
    key = data[i] | (data[i + 1] << 8) | (data[i + 2] << 16)
    return ((key * _HASH_MULT) >> _HASH_SHIFT) & _HASH_MASK


class Lz77Matcher:
    """Greedy/lazy hash-chain matcher with a configurable window.

    ``max_chain`` bounds how many chain entries are probed per position and
    is the usual speed/ratio knob (zlib levels tune the same parameter).
    """

    def __init__(
        self,
        window_size: int = 32 * 1024,
        min_match: int = MIN_MATCH,
        max_match: int = MAX_MATCH,
        max_chain: int = 64,
        lazy: bool = True,
    ) -> None:
        if window_size < 16:
            raise ConfigError(f"window_size too small: {window_size}")
        if not MIN_MATCH <= min_match <= max_match <= MAX_MATCH:
            raise ConfigError(
                f"bad match bounds: min={min_match} max={max_match}"
            )
        self.window_size = window_size
        self.min_match = min_match
        self.max_match = max_match
        self.max_chain = max_chain
        self.lazy = lazy

    def _best_match(
        self,
        data: bytes,
        pos: int,
        head: List[int],
        prev: List[int],
    ) -> Match | None:
        """Longest match for ``data[pos:]`` within the window, or ``None``."""
        limit = len(data)
        if pos + self.min_match > limit:
            return None
        best_len = self.min_match - 1
        best_dist = 0
        max_len = min(self.max_match, limit - pos)
        window_floor = pos - self.window_size
        candidate = head[_hash3(data, pos)]
        chain_budget = self.max_chain
        while candidate >= 0 and candidate >= window_floor and chain_budget > 0:
            chain_budget -= 1
            # Quick reject: the byte that would extend the current best.
            if (
                best_len >= self.min_match
                and data[candidate + best_len] != data[pos + best_len]
            ):
                candidate = prev[candidate]
                continue
            length = 0
            while (
                length < max_len
                and data[candidate + length] == data[pos + length]
            ):
                length += 1
            if length > best_len:
                best_len = length
                best_dist = pos - candidate
                if length >= max_len:
                    break
            candidate = prev[candidate]
        if best_len >= self.min_match:
            return Match(length=best_len, distance=best_dist)
        return None

    def tokenize(self, data: bytes) -> List[Token]:
        """Convert ``data`` into a list of LZ77 tokens."""
        n = len(data)
        tokens: List[Token] = []
        if n == 0:
            return tokens
        head = [-1] * (1 << _HASH_BITS)
        prev = [-1] * n

        def insert(i: int) -> None:
            if i + MIN_MATCH <= n:
                h = _hash3(data, i)
                prev[i] = head[h]
                head[h] = i

        pos = 0
        while pos < n:
            match = self._best_match(data, pos, head, prev)
            if match is None:
                tokens.append(Literal(data[pos]))
                insert(pos)
                pos += 1
                continue
            if self.lazy and pos + 1 + self.min_match <= n:
                # One-step lazy evaluation, as zlib does: if deferring by
                # one byte yields a strictly longer match, emit a literal.
                insert(pos)
                next_match = self._best_match(data, pos + 1, head, prev)
                if next_match is not None and next_match.length > match.length:
                    tokens.append(Literal(data[pos]))
                    pos += 1
                    continue
                tokens.append(match)
                # ``pos`` was already inserted above.
                for i in range(pos + 1, pos + match.length):
                    insert(i)
                pos += match.length
                continue
            tokens.append(match)
            for i in range(pos, pos + match.length):
                insert(i)
            pos += match.length
        return tokens


def detokenize(tokens: Iterable[Token]) -> bytes:
    """Reconstruct the original bytes from an LZ77 token stream."""
    out = bytearray()
    for token in tokens:
        if isinstance(token, Literal):
            out.append(token.byte)
        else:
            start = len(out) - token.distance
            if start < 0:
                raise ValueError(
                    f"match distance {token.distance} exceeds output "
                    f"length {len(out)}"
                )
            for i in range(token.length):
                out.append(out[start + i])
    return bytes(out)


def token_stream_cost(tokens: Iterable[Token]) -> int:
    """Total decoded length implied by a token stream, in bytes."""
    total = 0
    for token in tokens:
        total += 1 if isinstance(token, Literal) else token.length
    return total
