"""Codec interface, registry, and ratio metrics.

Every codec in the substrate implements :class:`Codec` and registers itself
under a short name (``"deflate"``, ``"lzfast"``, ``"zstd-like"``). Besides
the functional ``compress``/``decompress`` pair, each codec carries a
:class:`CodecSpec` describing its *modeled* software cost in CPU
cycles/byte; the cost model (EQ3.4's ``CCPerGB``) and the interference
model consume those numbers, mirroring how the paper couples zstd/lzo
software speeds into its first-order equations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Type

from repro.errors import ConfigError


@dataclass
class BatchStats:
    """Process-wide telemetry for the page-batch codec API.

    ``*_batch_calls``/``*_batch_pages`` count invocations of a codec's
    *real* batched implementation; ``*_scalar_fallback_calls`` count
    trips through the base-class per-page adapter. The perf-smoke gate
    and the tier/multichannel tests assert on these to prove the batch
    path is actually taken (ISSUE 7 acceptance criterion) rather than
    silently degrading to a scalar loop. ``site_pages`` attributes pages
    to the call site that batched them (``"multichannel"``,
    ``"tier_demote"``, ...).
    """

    compress_batch_calls: int = 0
    compress_batch_pages: int = 0
    decompress_batch_calls: int = 0
    decompress_batch_pages: int = 0
    compress_scalar_fallback_calls: int = 0
    decompress_scalar_fallback_calls: int = 0
    site_pages: Dict[str, int] = field(default_factory=dict)

    def record_site(self, site: str, pages: int) -> None:
        self.site_pages[site] = self.site_pages.get(site, 0) + pages

    def reset(self) -> None:
        self.compress_batch_calls = 0
        self.compress_batch_pages = 0
        self.decompress_batch_calls = 0
        self.decompress_batch_pages = 0
        self.compress_scalar_fallback_calls = 0
        self.decompress_scalar_fallback_calls = 0
        self.site_pages.clear()


#: Shared counter instance (the harness is single-threaded).
batch_stats = BatchStats()


@dataclass(frozen=True)
class CodecSpec:
    """Modeled software-implementation cost of a codec.

    ``compress_cycles_per_byte`` / ``decompress_cycles_per_byte`` are
    calibrated against published single-core throughputs of the algorithm
    family each codec stands in for (zstd ~ 500 MBps compress on a ~2.6 GHz
    core, lzo faster and lighter, deflate slower and denser). The paper's
    average ``CCPerGB`` of 7.65e9 cycles/GB (~7.65 cycles/byte averaged over
    compress + decompress of zstd and lzo) anchors the defaults.
    """

    name: str
    compress_cycles_per_byte: float
    decompress_cycles_per_byte: float

    def __post_init__(self) -> None:
        if self.compress_cycles_per_byte <= 0 or self.decompress_cycles_per_byte <= 0:
            raise ConfigError("codec cycle costs must be positive")

    @property
    def mean_cycles_per_byte(self) -> float:
        """Average of compress and decompress cost, as EQ3.4 uses."""
        return (self.compress_cycles_per_byte + self.decompress_cycles_per_byte) / 2.0

    def compress_throughput_bps(self, freq_hz: float) -> float:
        """Single-core compression throughput at clock ``freq_hz``."""
        return freq_hz / self.compress_cycles_per_byte

    def decompress_throughput_bps(self, freq_hz: float) -> float:
        """Single-core decompression throughput at clock ``freq_hz``."""
        return freq_hz / self.decompress_cycles_per_byte


class Codec(ABC):
    """A lossless byte-stream codec.

    Implementations must be pure functions of their input: identical input
    bytes produce identical output bytes, and
    ``decompress(compress(data)) == data`` for every ``bytes`` value.
    """

    #: Registry key; subclasses override.
    name: str = "abstract"

    #: Modeled software cost; subclasses override.
    spec: CodecSpec

    @abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Encode ``data`` and return the compressed blob."""

    @abstractmethod
    def decompress(self, blob: bytes) -> bytes:
        """Decode a blob produced by :meth:`compress`."""

    def compress_batch(self, pages: Sequence[bytes]) -> List[bytes]:
        """Compress many pages in one call.

        Blob ``i`` equals ``compress(pages[i])`` byte-for-byte — batching
        is purely a performance contract (shared setup, amortized
        caches), never a format change. This base implementation is the
        per-page adapter; codecs with a real batched hot path override
        it. Falls through here are counted so harnesses can assert the
        batch path is genuinely taken.
        """
        batch_stats.compress_scalar_fallback_calls += 1
        return [self.compress(page) for page in pages]

    def decompress_batch(self, blobs: Sequence[bytes]) -> List[bytes]:
        """Decompress many blobs in one call; see :meth:`compress_batch`."""
        batch_stats.decompress_scalar_fallback_calls += 1
        return [self.decompress(blob) for blob in blobs]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: Dict[str, Type[Codec]] = {}


def register_codec(cls: Type[Codec]) -> Type[Codec]:
    """Class decorator adding a codec to the global registry."""
    if not cls.name or cls.name == "abstract":
        raise ConfigError(f"codec class {cls.__name__} must define a name")
    if cls.name in _REGISTRY:
        raise ConfigError(f"duplicate codec name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def get_codec(name: str, **kwargs) -> Codec:
    """Instantiate a registered codec by name.

    Keyword arguments are forwarded to the codec constructor (e.g.
    ``get_codec("deflate", window_size=1024)``).
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigError(f"unknown codec {name!r}; available: {known}") from None
    return cls(**kwargs)


def available_codecs() -> List[str]:
    """Names of all registered codecs, sorted."""
    return sorted(_REGISTRY)


def compression_ratio(data: bytes, codec: Codec) -> float:
    """Uncompressed/compressed size ratio (higher is better, >= ~0.9)."""
    if not data:
        raise ValueError("cannot measure ratio of an empty buffer")
    return len(data) / len(codec.compress(data))


def space_savings(data: bytes, codec: Codec) -> float:
    """Fraction of space saved: ``1 - compressed/uncompressed``."""
    if not data:
        raise ValueError("cannot measure savings of an empty buffer")
    return 1.0 - len(codec.compress(data)) / len(data)
