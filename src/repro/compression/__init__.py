"""From-scratch lossless compression substrate (system S1).

XFM's evaluation depends on three codec families used by production SFM
stacks: a Deflate-style LZ77 + canonical-Huffman codec (the algorithm the
paper's FPGA accelerator implements), an LZO-style byte-aligned fast codec,
and a zstd-style large-window codec. All three are implemented here from
scratch on a shared :class:`~repro.compression.base.Codec` interface so the
multi-channel-interleaving experiments (Fig. 8) measure real window-split
effects rather than fitted curves.

Public entry points:

* :class:`~repro.compression.deflate.DeflateCodec`
* :class:`~repro.compression.lzfast.LzFastCodec`
* :class:`~repro.compression.zstd_like.ZstdLikeCodec`
* :func:`~repro.compression.base.get_codec` / ``available_codecs``
"""

from repro.compression.base import (
    Codec,
    CodecSpec,
    available_codecs,
    compression_ratio,
    get_codec,
    register_codec,
    space_savings,
)
from repro.compression.deflate import DeflateCodec
from repro.compression.lzfast import LzFastCodec
from repro.compression.zstd_like import ZstdLikeCodec

__all__ = [
    "Codec",
    "CodecSpec",
    "DeflateCodec",
    "LzFastCodec",
    "ZstdLikeCodec",
    "available_codecs",
    "compression_ratio",
    "get_codec",
    "register_codec",
    "space_savings",
]
