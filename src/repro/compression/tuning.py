"""Deterministic auto-tuner for the deflate matcher, per corpus domain.

Static tables (see :mod:`repro.compression.static_tables`) bake a token
distribution into the artifact, and that distribution depends on how the
matcher tokenizes: window size decides which back-references exist at all,
chain depth and lazy matching decide which of them get picked. Rather than
hard-coding one tuning for every corpus, the tuner scores a small grid of
matcher configurations against a deterministic sample of the domain's
pages and picks the one that compresses the sample smallest, with ties
broken toward the cheapest search (shallower chains, smaller windows,
greedy matching) so equal-ratio configs never burn extra work.

Everything here is deterministic — stride sampling, a fixed grid, integer
byte scores — so a re-run over the same corpus always picks the same
configuration and the persisted artifact stays byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.compression.deflate import DeflateCodec, train_static_tables
from repro.errors import ConfigError

#: ``(window_size, max_chain, lazy)`` candidates. Windows cover the 1 KiB
#: "zswap cell" shape through 2x-page; chain/lazy pairs span cheap-greedy
#: to the codec's default thorough search.
DEFAULT_GRID: Tuple[Tuple[int, int, bool], ...] = (
    (1024, 16, False),
    (1024, 64, True),
    (2048, 64, True),
    (4096, 16, False),
    (4096, 64, True),
    (8192, 64, True),
)

#: Pages scored per domain; stride-sampled so the sample spans the whole
#: corpus instead of its first files.
DEFAULT_SAMPLE_PAGES = 48


@dataclass(frozen=True)
class TuningChoice:
    """The winning configuration for one domain."""

    domain: str
    window_size: int
    max_chain: int
    lazy: bool
    #: Total compressed bytes of the sample under this configuration.
    compressed_bytes: int
    #: Uncompressed bytes of the scored sample (for ratio reporting).
    sample_bytes: int
    sample_pages: int

    @property
    def ratio(self) -> float:
        return self.sample_bytes / self.compressed_bytes


def stride_sample(pages: Sequence[bytes], limit: int) -> List[bytes]:
    """Up to ``limit`` pages, evenly strided across the corpus."""
    if limit <= 0:
        raise ConfigError("sample limit must be positive")
    if len(pages) <= limit:
        return list(pages)
    step = len(pages) / limit
    return [pages[int(i * step)] for i in range(limit)]


def tune_domain(
    domain: str,
    pages: Sequence[bytes],
    grid: Sequence[Tuple[int, int, bool]] = DEFAULT_GRID,
    sample_limit: int = DEFAULT_SAMPLE_PAGES,
) -> TuningChoice:
    """Score every grid point on a sample of ``pages`` and pick a winner.

    Each candidate is evaluated end-to-end the way it would actually run:
    tables trained on the sample with that matcher tuning, then the sample
    batch-compressed with those tables. The score is total compressed
    bytes; ties prefer ``(max_chain, window_size, lazy)`` ascending.
    """
    if not pages:
        raise ConfigError(f"domain {domain!r}: no pages to tune on")
    if not grid:
        raise ConfigError("tuning grid is empty")
    sample = [p for p in stride_sample(pages, sample_limit) if p]
    if not sample:
        raise ConfigError(f"domain {domain!r}: sample contains only empty pages")
    sample_bytes = sum(len(p) for p in sample)
    best = None
    best_key = None
    for window_size, max_chain, lazy in grid:
        tables = train_static_tables(
            sample,
            domain=domain,
            window_size=window_size,
            max_chain=max_chain,
            lazy=lazy,
        )
        codec = DeflateCodec(
            window_size=window_size,
            max_chain=max_chain,
            lazy=lazy,
            static_tables=tables,
        )
        total = sum(len(blob) for blob in codec.compress_batch(sample))
        key = (total, max_chain, window_size, lazy)
        if best_key is None or key < best_key:
            best_key = key
            best = TuningChoice(
                domain=domain,
                window_size=window_size,
                max_chain=max_chain,
                lazy=lazy,
                compressed_bytes=total,
                sample_bytes=sample_bytes,
                sample_pages=len(sample),
            )
    return best


def make_tuner(
    grid: Sequence[Tuple[int, int, bool]] = DEFAULT_GRID,
    sample_limit: int = DEFAULT_SAMPLE_PAGES,
    record: dict = None,
) -> Callable[[str, Sequence[bytes]], TuningChoice]:
    """A ``tuner(domain, pages)`` callback for
    :meth:`~repro.compression.static_tables.StaticTableRegistry.train_from_manifest`.
    When ``record`` is a dict, each domain's choice is stored in it so the
    caller can report what was picked."""

    def tuner(domain: str, pages: Sequence[bytes]) -> TuningChoice:
        choice = tune_domain(
            domain, pages, grid=grid, sample_limit=sample_limit
        )
        if record is not None:
            record[domain] = choice
        return choice

    return tuner
