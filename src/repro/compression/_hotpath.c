/* Native hot-path kernels for the LZ77/Deflate codec stack.
 *
 * Compiled on demand by repro.compression._native with the host C
 * compiler and loaded through ctypes; every entry point is a direct,
 * bit-exact translation of the corresponding pure-Python routine (the
 * scalar tokenizer in lz77.py, the symbol encoder/decoder in
 * deflate.py).  The Python side treats any failure — no compiler, bad
 * load, any negative return — as "fall back to the Python engine", so
 * this file can assume nothing about availability and must never be
 * required for correctness.
 *
 * Exactness contract: token selection must match
 * Lz77Matcher._tokenize_packed_scalar decision-for-decision, and the
 * encoder must emit the same bit stream as BitWriter-based
 * _write_symbols (LSB-first, fused per-token writes).  The decoder only
 * has to be exact on *valid* streams: on any malformed input it returns
 * a negative error and the caller re-runs the Python decoder so error
 * semantics (exception type and message) stay Python's.
 */

#include <stdint.h>
#include <string.h>

#define HASH_BITS 15
#define HASH_SIZE (1 << HASH_BITS)
#define HASH_MASK (HASH_SIZE - 1)
#define HASH_MULT 2654435761u

#define PACKED_LENGTH_BITS 9
#define PACKED_LENGTH_MASK ((1 << PACKED_LENGTH_BITS) - 1)

#define NUM_LITLEN 286
#define NUM_DIST 30
#define NUM_CODELEN 19
#define EOB 256
#define MAX_CODE_LEN 15

/* ------------------------------------------------------------------ */
/* LZ77 tokenizer                                                      */
/* ------------------------------------------------------------------ */

static inline int64_t best_match_at(
    const uint8_t *data, const int32_t *prev, int64_t n, int64_t pos,
    int64_t min_match, int64_t max_match, int64_t max_chain,
    int64_t window_size)
{
    if (pos + min_match > n)
        return 0;
    int64_t candidate = prev[pos];
    int64_t floor = pos - window_size;
    if (floor < 0)
        floor = 0;
    if (candidate < floor)
        return 0;
    int64_t best_len = min_match - 1;
    int64_t best_dist = 0;
    int64_t max_len = (n - pos > max_match) ? max_match : n - pos;
    int64_t budget = max_chain;
    uint8_t target = data[pos + best_len];
    const uint8_t *b = data + pos;
    while (candidate >= floor && budget > 0) {
        budget--;
        /* Quick reject: a candidate mismatching at offset best_len can
         * never produce a strictly longer match. */
        if (data[candidate + best_len] != target) {
            candidate = prev[candidate];
            continue;
        }
        const uint8_t *a = data + candidate;
        int64_t length = 0;
        /* 32-byte chunk extension; length+32 <= max_len <= n-pos keeps
         * both sides in bounds (candidate < pos). */
        while (length + 32 <= max_len && memcmp(a + length, b + length, 32) == 0)
            length += 32;
        while (length < max_len && a[length] == b[length])
            length++;
        if (length > best_len) {
            best_len = length;
            best_dist = pos - candidate;
            if (length >= max_len)
                break;
            target = data[pos + best_len];
        }
        candidate = prev[candidate];
    }
    if (best_len >= min_match)
        return (best_dist << PACKED_LENGTH_BITS) | best_len;
    return 0;
}

/* Tokenize one buffer; returns the number of packed tokens written to
 * `out` (caller sizes it to n).  `head` is 1<<15 int32 scratch, `prev`
 * is n int32 scratch. */
int64_t lz77_tokenize(
    const uint8_t *data, int64_t n,
    int64_t window_size, int64_t min_match, int64_t max_match,
    int64_t max_chain, int64_t lazy,
    int32_t *head, int32_t *prev, int64_t *out)
{
    int64_t ntok = 0;
    if (n <= 0)
        return 0;
    memset(prev, 0xFF, (size_t)n * sizeof(int32_t));
    if (n >= 3) {
        memset(head, 0xFF, HASH_SIZE * sizeof(int32_t));
        uint32_t key = (uint32_t)data[0] | ((uint32_t)data[1] << 8);
        for (int64_t i = 0; i + 2 < n; i++) {
            key |= (uint32_t)data[i + 2] << 16;
            uint32_t h = ((key * HASH_MULT) >> 16) & HASH_MASK;
            prev[i] = head[h];
            head[h] = (int32_t)i;
            key >>= 8;
        }
    }
    int64_t lazy_limit = n - min_match - 1;
    int64_t pos = 0;
    int64_t pending = -1;
    while (pos < n) {
        int64_t match;
        if (pending >= 0) {
            match = pending;
            pending = -1;
        } else {
            match = (prev[pos] >= 0)
                ? best_match_at(data, prev, n, pos, min_match, max_match,
                                max_chain, window_size)
                : 0;
        }
        if (match == 0) {
            out[ntok++] = data[pos];
            pos++;
            continue;
        }
        if (lazy && pos <= lazy_limit) {
            int64_t next_match = (prev[pos + 1] >= 0)
                ? best_match_at(data, prev, n, pos + 1, min_match, max_match,
                                max_chain, window_size)
                : 0;
            if (next_match != 0 &&
                (next_match & PACKED_LENGTH_MASK) > (match & PACKED_LENGTH_MASK)) {
                out[ntok++] = data[pos];
                pos++;
                pending = next_match;
                continue;
            }
        }
        out[ntok++] = match;
        pos += match & PACKED_LENGTH_MASK;
    }
    return ntok;
}

/* ------------------------------------------------------------------ */
/* Bit reader (LSB-first, matches repro.compression.bitio.BitReader)   */
/* ------------------------------------------------------------------ */

typedef struct {
    const uint8_t *d;
    int64_t len;
    int64_t pos;
    uint64_t acc;
    int nbits;
} BitRd;

static inline void br_refill(BitRd *r)
{
    while (r->nbits <= 56 && r->pos < r->len) {
        r->acc |= (uint64_t)r->d[r->pos++] << r->nbits;
        r->nbits += 8;
    }
}

static inline int br_read(BitRd *r, int n, uint32_t *v)
{
    if (r->nbits < n) {
        br_refill(r);
        if (r->nbits < n)
            return -1;
    }
    *v = (uint32_t)(r->acc & ((1u << n) - 1));
    r->acc >>= n;
    r->nbits -= n;
    return 0;
}

/* ------------------------------------------------------------------ */
/* Canonical Huffman decode table (full-width, LSB-indexed)            */
/* ------------------------------------------------------------------ */

/* Entries pack (code_length << 16) | symbol; 0 marks invalid.  Unlike
 * the Python decoder's 10-bit root table + slow path, the table spans
 * the full max code length, so every valid code resolves in one
 * lookup.  Returns the table width in bits, 0 when no symbol has a
 * code. */
static int build_decoder(const uint8_t *lengths, int nsym, uint32_t *table)
{
    int bl_count[MAX_CODE_LEN + 1] = {0};
    int max_len = 0;
    for (int s = 0; s < nsym; s++) {
        int l = lengths[s];
        if (l > MAX_CODE_LEN)
            return -1;
        if (l) {
            bl_count[l]++;
            if (l > max_len)
                max_len = l;
        }
    }
    if (!max_len)
        return 0;
    int next_code[MAX_CODE_LEN + 1] = {0};
    int code = 0;
    for (int bits = 1; bits <= max_len; bits++) {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
    }
    memset(table, 0, sizeof(uint32_t) << max_len);
    for (int s = 0; s < nsym; s++) {
        int l = lengths[s];
        if (!l)
            continue;
        int c = next_code[l]++;
        uint32_t rev = 0;
        for (int bit = 0; bit < l; bit++)
            rev |= (uint32_t)((c >> bit) & 1) << (l - 1 - bit);
        if (rev >= (1u << max_len))
            return -1; /* oversubscribed lengths; let Python diagnose */
        uint32_t entry = ((uint32_t)l << 16) | (uint32_t)s;
        for (uint32_t idx = rev; idx < (1u << max_len); idx += (1u << l))
            table[idx] = entry;
    }
    return max_len;
}

/* ------------------------------------------------------------------ */
/* Deflate block decode                                                */
/* ------------------------------------------------------------------ */

/* Decode one Huffman block starting at byte offset `start` of `data`.
 *
 * have_tables != 0: code lengths arrive in ll_lengths_in/d_lengths_in
 * (the fixed-tree mode, or a static-table body whose header the caller
 * already skipped).  Otherwise the dynamic header (19 x 3-bit
 * code-length lengths, bit-level varint RLE count, RLE'd lengths) is
 * parsed from the stream.
 *
 * Returns the number of bytes written to `out`, or a negative error
 * code on any malformed input (caller falls back to Python). */
int64_t deflate_decode_block(
    const uint8_t *data, int64_t data_len, int64_t start,
    int64_t have_tables,
    const uint8_t *ll_lengths_in, const uint8_t *d_lengths_in,
    const int32_t *len_base, const uint8_t *len_extra,
    const int32_t *dist_base, const uint8_t *dist_extra,
    uint32_t *ll_table, uint32_t *d_table,
    uint8_t *out, int64_t out_cap)
{
    BitRd br = {data, data_len, start, 0, 0};
    uint8_t ll_lengths[NUM_LITLEN];
    uint8_t d_lengths[NUM_DIST];

    if (have_tables) {
        memcpy(ll_lengths, ll_lengths_in, NUM_LITLEN);
        memcpy(d_lengths, d_lengths_in, NUM_DIST);
    } else {
        uint8_t cl_lengths[NUM_CODELEN];
        uint32_t v;
        for (int i = 0; i < NUM_CODELEN; i++) {
            if (br_read(&br, 3, &v))
                return -1;
            cl_lengths[i] = (uint8_t)v;
        }
        uint32_t cl_table[1 << 7];
        int cl_width = build_decoder(cl_lengths, NUM_CODELEN, cl_table);
        if (cl_width <= 0)
            return -2;
        uint32_t cl_mask = (1u << cl_width) - 1;

        int64_t rle_count = 0;
        int shift = 0;
        for (;;) {
            uint32_t more, chunk;
            if (br_read(&br, 1, &more) || br_read(&br, 7, &chunk))
                return -3;
            rle_count |= (int64_t)chunk << shift;
            if (!more)
                break;
            shift += 7;
            if (shift > 35)
                return -3;
        }

        const int total = NUM_LITLEN + NUM_DIST;
        uint8_t combined[NUM_LITLEN + NUM_DIST];
        int filled = 0;
        for (int64_t r = 0; r < rle_count; r++) {
            if (br.nbits < cl_width)
                br_refill(&br);
            uint32_t entry = cl_table[br.acc & cl_mask];
            if (!entry)
                return -4;
            int clen = (int)(entry >> 16);
            if (clen > br.nbits)
                return -4;
            br.acc >>= clen;
            br.nbits -= clen;
            int sym = (int)(entry & 0xFFFF);
            if (sym <= 15) {
                if (filled >= total)
                    return -5;
                combined[filled++] = (uint8_t)sym;
            } else if (sym == 16) {
                if (!filled)
                    return -5;
                if (br_read(&br, 2, &v))
                    return -5;
                int rep = 3 + (int)v;
                if (filled + rep > total)
                    return -5;
                memset(combined + filled, combined[filled - 1], rep);
                filled += rep;
            } else if (sym == 17) {
                if (br_read(&br, 3, &v))
                    return -5;
                int rep = 3 + (int)v;
                if (filled + rep > total)
                    return -5;
                memset(combined + filled, 0, rep);
                filled += rep;
            } else {
                if (br_read(&br, 7, &v))
                    return -5;
                int rep = 11 + (int)v;
                if (filled + rep > total)
                    return -5;
                memset(combined + filled, 0, rep);
                filled += rep;
            }
        }
        if (filled != total)
            return -5;
        memcpy(ll_lengths, combined, NUM_LITLEN);
        memcpy(d_lengths, combined + NUM_LITLEN, NUM_DIST);
    }

    int ll_width = build_decoder(ll_lengths, NUM_LITLEN, ll_table);
    if (ll_width <= 0)
        return -6;
    int d_width = build_decoder(d_lengths, NUM_DIST, d_table);
    if (d_width < 0)
        return -6;
    uint32_t ll_mask = (1u << ll_width) - 1;
    uint32_t d_mask = d_width ? (1u << d_width) - 1 : 0;

    int64_t out_len = 0;
    for (;;) {
        /* One refill covers a whole token: 15 (litlen) + 5 (len extra)
         * + 15 (dist code) + 13 (dist extra) = 48 bits max. */
        if (br.nbits < 48)
            br_refill(&br);
        uint32_t entry = ll_table[br.acc & ll_mask];
        if (!entry)
            return -7;
        int clen = (int)(entry >> 16);
        if (clen > br.nbits)
            return -7;
        br.acc >>= clen;
        br.nbits -= clen;
        int sym = (int)(entry & 0xFFFF);
        if (sym < 256) {
            if (out_len >= out_cap)
                return -8;
            out[out_len++] = (uint8_t)sym;
            continue;
        }
        if (sym == EOB)
            break;
        int eb = len_extra[sym - 257];
        int64_t length = len_base[sym - 257];
        if (eb) {
            if (eb > br.nbits)
                return -9;
            length += (int64_t)(br.acc & ((1u << eb) - 1));
            br.acc >>= eb;
            br.nbits -= eb;
        }
        if (!d_width)
            return -10;
        uint32_t dentry = d_table[br.acc & d_mask];
        if (!dentry)
            return -10;
        int dlen = (int)(dentry >> 16);
        if (dlen > br.nbits)
            return -10;
        br.acc >>= dlen;
        br.nbits -= dlen;
        int dsym = (int)(dentry & 0xFFFF);
        int deb = dist_extra[dsym];
        int64_t distance = dist_base[dsym];
        if (deb) {
            if (deb > br.nbits)
                return -11;
            distance += (int64_t)(br.acc & ((1u << deb) - 1));
            br.acc >>= deb;
            br.nbits -= deb;
        }
        int64_t src = out_len - distance;
        if (src < 0)
            return -12;
        if (out_len + length > out_cap)
            return -8;
        /* Byte-forward copy replicates periodic seeds on overlap, the
         * same result extend_match produces by doubling. */
        for (int64_t i = 0; i < length; i++)
            out[out_len + i] = out[src + i];
        out_len += length;
    }
    return out_len;
}

/* ------------------------------------------------------------------ */
/* Deflate symbol encode                                               */
/* ------------------------------------------------------------------ */

/* Emit the Huffman-coded symbol stream (tokens + end-of-block) for one
 * packed token array, continuing from a partial bit-writer state
 * (*acc_io / *nbits_io, nbits < 8).  Writes whole bytes to `out`,
 * leaves the final partial byte in *acc_io / *nbits_io, and returns
 * the byte count (negative on error).  Bit-for-bit identical to
 * DeflateCodec's BitWriter path: LSB-first, one fused write per token.
 *
 * Mapping tables (all precomputed on the Python side from the RFC 1951
 * code tables): len_sym/len_extra_val/len_ebits are indexed by match
 * length 0..258; dist_lo_sym by distance 1..256; dist_high_sym by
 * (distance-1)>>7; dist_sym_base/dist_sym_ebits by distance symbol. */
int64_t deflate_encode_symbols(
    const int64_t *tokens, int64_t ntok,
    const uint16_t *ll_codes, const uint8_t *ll_lens,
    const uint16_t *d_codes, const uint8_t *d_lens,
    const uint16_t *len_sym, const uint16_t *len_extra_val,
    const uint8_t *len_ebits,
    const uint8_t *dist_lo_sym, const uint8_t *dist_high_sym,
    const int32_t *dist_sym_base, const uint8_t *dist_sym_ebits,
    uint64_t *acc_io, int64_t *nbits_io,
    uint8_t *out, int64_t out_cap)
{
    uint64_t acc = *acc_io;
    int nbits = (int)*nbits_io;
    int64_t olen = 0;
    for (int64_t t = 0; t <= ntok; t++) {
        uint64_t value;
        int vb;
        if (t == ntok) {
            /* End-of-block terminator, written through the same path. */
            vb = ll_lens[EOB];
            if (!vb)
                return -1;
            value = ll_codes[EOB];
        } else {
            int64_t tok = tokens[t];
            if (tok < 256) {
                vb = ll_lens[tok];
                if (!vb)
                    return -1;
                value = ll_codes[tok];
            } else {
                int64_t length = tok & PACKED_LENGTH_MASK;
                int64_t distance = tok >> PACKED_LENGTH_BITS;
                if (length > 258 || distance < 1 || distance > (1 << 15))
                    return -2;
                int ls = len_sym[length];
                vb = ll_lens[ls];
                if (!vb)
                    return -1;
                value = ll_codes[ls];
                int leb = len_ebits[length];
                if (leb) {
                    value |= (uint64_t)len_extra_val[length] << vb;
                    vb += leb;
                }
                int ds = (distance <= 256)
                    ? dist_lo_sym[distance]
                    : dist_high_sym[(distance - 1) >> 7];
                int dl = d_lens[ds];
                if (!dl)
                    return -1;
                value |= (uint64_t)d_codes[ds] << vb;
                vb += dl;
                int deb = dist_sym_ebits[ds];
                if (deb) {
                    value |= (uint64_t)(distance - dist_sym_base[ds]) << vb;
                    vb += deb;
                }
            }
        }
        acc |= value << nbits;
        nbits += vb;
        while (nbits >= 8) {
            if (olen >= out_cap)
                return -3;
            out[olen++] = (uint8_t)(acc & 0xFF);
            acc >>= 8;
            nbits -= 8;
        }
    }
    *acc_io = acc;
    *nbits_io = nbits;
    return olen;
}

/* ------------------------------------------------------------------ */
/* lzfast (LZO-style byte-aligned) codec                               */
/* ------------------------------------------------------------------ */

#define LZF_HASH_BITS 13
#define LZF_HASH_SIZE (1 << LZF_HASH_BITS)
#define LZF_HASH_MASK (LZF_HASH_SIZE - 1)
#define LZF_MIN_MATCH 4
#define LZF_MAX_MATCH (0x7F + LZF_MIN_MATCH)
#define LZF_MAX_LITERAL_RUN 0x80

static inline uint32_t lzf_hash(const uint8_t *p)
{
    uint32_t key = (uint32_t)p[0] | ((uint32_t)p[1] << 8)
                 | ((uint32_t)p[2] << 16) | ((uint32_t)p[3] << 24);
    return ((key * HASH_MULT) >> 16) & LZF_HASH_MASK;
}

/* Emit the token body (no header); returns body length or -1 if it
 * would overflow out_cap.  Mirrors LzFastCodec.compress exactly:
 * single-probe table, 32-byte-chunk match extension, every in-match
 * position inserted into the table. */
int64_t lzfast_compress(
    const uint8_t *data, int64_t n, int64_t max_distance,
    int32_t *table, uint8_t *out, int64_t out_cap)
{
    memset(table, 0xFF, LZF_HASH_SIZE * sizeof(int32_t));
    int64_t olen = 0;
    int64_t literal_start = 0;
    int64_t pos = 0;
    while (pos + LZF_MIN_MATCH <= n) {
        uint32_t h = lzf_hash(data + pos);
        int64_t candidate = table[h];
        table[h] = (int32_t)pos;
        if (candidate >= 0 && pos - candidate <= max_distance
            && memcmp(data + candidate, data + pos, LZF_MIN_MATCH) == 0) {
            int64_t length = LZF_MIN_MATCH;
            int64_t max_len =
                n - pos > LZF_MAX_MATCH ? LZF_MAX_MATCH : n - pos;
            while (length + 32 <= max_len
                   && memcmp(data + candidate + length,
                             data + pos + length, 32) == 0)
                length += 32;
            while (length < max_len
                   && data[candidate + length] == data[pos + length])
                length += 1;
            /* flush pending literals */
            int64_t start = literal_start;
            while (start < pos) {
                int64_t run = pos - start;
                if (run > LZF_MAX_LITERAL_RUN)
                    run = LZF_MAX_LITERAL_RUN;
                if (olen + 1 + run > out_cap)
                    return -1;
                out[olen++] = (uint8_t)(run - 1);
                memcpy(out + olen, data + start, (size_t)run);
                olen += run;
                start += run;
            }
            int64_t distance = pos - candidate;
            if (olen + 3 > out_cap)
                return -1;
            out[olen++] = (uint8_t)(0x80 | (length - LZF_MIN_MATCH));
            out[olen++] = (uint8_t)(distance & 0xFF);
            out[olen++] = (uint8_t)(distance >> 8);
            int64_t insert_end = pos + length;
            if (insert_end > n - LZF_MIN_MATCH + 1)
                insert_end = n - LZF_MIN_MATCH + 1;
            for (int64_t i = pos + 1; i < insert_end; i++)
                table[lzf_hash(data + i)] = (int32_t)i;
            pos += length;
            literal_start = pos;
        } else {
            pos += 1;
        }
    }
    /* flush tail literals */
    {
        int64_t start = literal_start;
        while (start < n) {
            int64_t run = n - start;
            if (run > LZF_MAX_LITERAL_RUN)
                run = LZF_MAX_LITERAL_RUN;
            if (olen + 1 + run > out_cap)
                return -1;
            out[olen++] = (uint8_t)(run - 1);
            memcpy(out + olen, data + start, (size_t)run);
            olen += run;
            start += run;
        }
    }
    return olen;
}

/* Decode a compressed-mode token body starting at blob[start]; returns
 * decoded length, or -1 on any malformed stream (caller re-runs the
 * Python decoder for exact error semantics). */
int64_t lzfast_decompress(
    const uint8_t *blob, int64_t blob_len, int64_t start,
    uint8_t *out, int64_t out_cap)
{
    int64_t pos = start;
    int64_t olen = 0;
    while (pos < blob_len) {
        uint8_t control = blob[pos++];
        if (control < 0x80) {
            int64_t run = (int64_t)control + 1;
            if (pos + run > blob_len || olen + run > out_cap)
                return -1;
            memcpy(out + olen, blob + pos, (size_t)run);
            olen += run;
            pos += run;
        } else {
            if (pos + 2 > blob_len)
                return -1;
            int64_t length = (control & 0x7F) + LZF_MIN_MATCH;
            int64_t distance =
                (int64_t)blob[pos] | ((int64_t)blob[pos + 1] << 8);
            pos += 2;
            if (distance == 0 || distance > olen || olen + length > out_cap)
                return -1;
            const uint8_t *src = out + olen - distance;
            uint8_t *dst = out + olen;
            if (distance >= length) {
                memcpy(dst, src, (size_t)length);
            } else {
                for (int64_t i = 0; i < length; i++)
                    dst[i] = src[i];
            }
            olen += length;
        }
    }
    return olen;
}
