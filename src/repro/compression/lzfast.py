"""LZO-style byte-aligned fast codec.

Stands in for lzo1x as used by Linux zswap deployments (§2.1): a greedy,
single-probe hash matcher and a fully byte-aligned token stream, trading
ratio for speed exactly the way lzo does relative to deflate/zstd.

Token stream (after the ``magic | mode | varint(orig_len)`` header):

* control byte ``C < 0x80``  — literal run of ``C + 1`` bytes follows.
* control byte ``C >= 0x80`` — match of length ``(C & 0x7F) + MIN_MATCH``
  followed by a 2-byte little-endian distance.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Sequence

import numpy as np

from repro.compression import _native
from repro.compression.base import Codec, CodecSpec, batch_stats, register_codec
from repro.compression.lz77 import extend_match
from repro.errors import ConfigError, CorruptStreamError

_MAGIC = 0xF5
_MODE_STORED = 0
_MODE_COMPRESSED = 1

_MIN_MATCH = 4
_MAX_MATCH = 0x7F + _MIN_MATCH  # 131
_MAX_LITERAL_RUN = 0x80  # 128
_MAX_DISTANCE = 0xFFFF

_HASH_BITS = 13
_HASH_MASK = (1 << _HASH_BITS) - 1
_HASH_MULT = 2654435761

#: Hash-table scratch for the native compressor (re-memset per call).
_NATIVE_TABLE_SCRATCH = None


def _hash4(data: bytes, i: int) -> int:
    key = (
        data[i]
        | (data[i + 1] << 8)
        | (data[i + 2] << 16)
        | (data[i + 3] << 24)
    )
    return ((key * _HASH_MULT) >> 16) & _HASH_MASK


def _write_varint(out: bytearray, value: int) -> None:
    while True:
        chunk = value & 0x7F
        value >>= 7
        out.append(chunk | (0x80 if value else 0))
        if not value:
            return


def _read_varint(data: bytes, pos: int) -> tuple:
    value = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CorruptStreamError("varint truncated")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 35:
            raise CorruptStreamError("varint too long")


@register_codec
class LzFastCodec(Codec):
    """LZO-style codec: greedy single-probe matcher, byte-aligned output."""

    name = "lzfast"
    # lzo1x: ~600 MBps compress, ~800 MBps decompress per ~2.6 GHz core.
    spec = CodecSpec(
        name="lzfast",
        compress_cycles_per_byte=4.3,
        decompress_cycles_per_byte=3.2,
    )

    def __init__(self, window_size: int = 64 * 1024) -> None:
        if not 16 <= window_size <= _MAX_DISTANCE + 1:
            raise ConfigError(
                f"lzfast window must be in [16, 65536], got {window_size}"
            )
        self.window_size = window_size

    def compress(self, data: bytes) -> bytes:
        native = self._compress_native(data)
        if native is not None:
            return native
        out = bytearray([_MAGIC, _MODE_COMPRESSED])
        _write_varint(out, len(data))
        out += zlib.crc32(data).to_bytes(4, "little")
        n = len(data)
        table = [-1] * (1 << _HASH_BITS)
        literal_start = 0
        pos = 0
        max_distance = min(self.window_size, _MAX_DISTANCE)

        def flush_literals(end: int) -> None:
            start = literal_start
            while start < end:
                run = min(end - start, _MAX_LITERAL_RUN)
                out.append(run - 1)
                out.extend(data[start : start + run])
                start += run

        # The hash is inlined in both loops below: one function call per
        # scanned byte was the single largest cost in this codec.
        while pos + _MIN_MATCH <= n:
            h = (
                (
                    data[pos]
                    | (data[pos + 1] << 8)
                    | (data[pos + 2] << 16)
                    | (data[pos + 3] << 24)
                )
                * _HASH_MULT
                >> 16
            ) & _HASH_MASK
            candidate = table[h]
            table[h] = pos
            if (
                candidate >= 0
                and pos - candidate <= max_distance
                and data[candidate : candidate + _MIN_MATCH]
                == data[pos : pos + _MIN_MATCH]
            ):
                length = _MIN_MATCH
                max_len = _MAX_MATCH if n - pos > _MAX_MATCH else n - pos
                # 32-byte slice comparison, bytewise tail — equivalent to
                # the bytewise loop (bytes are immutable, overlap is fine).
                while (
                    length + 32 <= max_len
                    and data[candidate + length : candidate + length + 32]
                    == data[pos + length : pos + length + 32]
                ):
                    length += 32
                while (
                    length < max_len
                    and data[candidate + length] == data[pos + length]
                ):
                    length += 1
                flush_literals(pos)
                distance = pos - candidate
                out.append(0x80 | (length - _MIN_MATCH))
                out.append(distance & 0xFF)
                out.append(distance >> 8)
                # Insert a couple of positions inside the match so later
                # repeats of the same content are still findable.
                for i in range(pos + 1, min(pos + length, n - _MIN_MATCH + 1)):
                    table[
                        (
                            (
                                data[i]
                                | (data[i + 1] << 8)
                                | (data[i + 2] << 16)
                                | (data[i + 3] << 24)
                            )
                            * _HASH_MULT
                            >> 16
                        ) & _HASH_MASK
                    ] = i
                pos += length
                literal_start = pos
            else:
                pos += 1
        flush_literals(n)
        literal_start = n

        if len(out) >= n + 2:
            stored = bytearray([_MAGIC, _MODE_STORED])
            _write_varint(stored, n)
            stored += zlib.crc32(data).to_bytes(4, "little")
            stored.extend(data)
            return bytes(stored)
        return bytes(out)

    def compress_batch(self, pages: Sequence[bytes]) -> List[bytes]:
        """Batched compress: the table scratch is reused across pages."""
        blobs = [self.compress(page) for page in pages]
        batch_stats.compress_batch_calls += 1
        batch_stats.compress_batch_pages += len(blobs)
        return blobs

    def decompress_batch(self, blobs: Sequence[bytes]) -> List[bytes]:
        pages = [self.decompress(blob) for blob in blobs]
        batch_stats.decompress_batch_calls += 1
        batch_stats.decompress_batch_pages += len(blobs)
        return pages

    def _compress_native(self, data: bytes) -> Optional[bytes]:
        """C token emitter; ``None`` falls back to the Python loop."""
        lib = _native.load()
        n = len(data)
        if lib is None or n == 0:
            return None
        global _NATIVE_TABLE_SCRATCH
        if _NATIVE_TABLE_SCRATCH is None:
            _NATIVE_TABLE_SCRATCH = np.empty(1 << _HASH_BITS, dtype=np.int32)
        header = bytearray([_MAGIC, _MODE_COMPRESSED])
        _write_varint(header, n)
        header += zlib.crc32(data).to_bytes(4, "little")
        data_np = np.frombuffer(data, dtype=np.uint8)  # keeps `data` alive
        # Worst case: one control byte per 128-byte literal run.
        body = np.empty(n + n // _MAX_LITERAL_RUN + 16, dtype=np.uint8)
        body_len = lib.lzfast_compress(
            data_np.ctypes.data,
            n,
            min(self.window_size, _MAX_DISTANCE),
            _NATIVE_TABLE_SCRATCH.ctypes.data,
            body.ctypes.data,
            len(body),
        )
        if body_len < 0:
            return None
        if len(header) + body_len >= n + 2:
            stored = bytearray([_MAGIC, _MODE_STORED])
            _write_varint(stored, n)
            stored += zlib.crc32(data).to_bytes(4, "little")
            stored.extend(data)
            return bytes(stored)
        return bytes(header) + body[:body_len].tobytes()

    def decompress(self, blob: bytes) -> bytes:
        native = self._decompress_native(blob)
        if native is not None:
            return native
        return self._decompress_python(blob)

    def _decompress_native(self, blob: bytes) -> Optional[bytes]:
        """C decode, claimed only for fully valid blobs (crc verified)."""
        lib = _native.load()
        if lib is None or len(blob) < 7 or blob[0] != _MAGIC:
            return None
        if blob[1] != _MODE_COMPRESSED:
            return None  # stored mode is already just a slice + crc
        value = 0
        shift = 0
        pos = 2
        while True:
            if pos >= len(blob) or shift > 35:
                return None
            byte = blob[pos]
            pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
        orig_len = value
        if pos + 4 > len(blob):
            return None
        checksum = int.from_bytes(blob[pos : pos + 4], "little")
        pos += 4
        out = np.empty(max(orig_len, 1), dtype=np.uint8)
        blob_np = np.frombuffer(blob, dtype=np.uint8)
        decoded = lib.lzfast_decompress(
            blob_np.ctypes.data, len(blob), pos, out.ctypes.data, orig_len
        )
        if decoded != orig_len:
            return None
        page = out[:orig_len].tobytes()
        if zlib.crc32(page) != checksum:
            return None
        return page

    def _decompress_python(self, blob: bytes) -> bytes:
        if len(blob) < 2 or blob[0] != _MAGIC:
            raise CorruptStreamError("bad lzfast header")
        mode = blob[1]
        orig_len, pos = _read_varint(blob, 2)
        if pos + 4 > len(blob):
            raise CorruptStreamError("checksum field truncated")
        checksum = int.from_bytes(blob[pos : pos + 4], "little")
        pos += 4
        if mode == _MODE_STORED:
            body = blob[pos : pos + orig_len]
            if len(body) != orig_len:
                raise CorruptStreamError("stored block truncated")
            if zlib.crc32(body) != checksum:
                raise CorruptStreamError("content checksum mismatch")
            return bytes(body)
        if mode != _MODE_COMPRESSED:
            raise CorruptStreamError(f"unknown lzfast mode {mode}")
        out = bytearray()
        n = len(blob)
        while pos < n:
            control = blob[pos]
            pos += 1
            if control < 0x80:
                run = control + 1
                if pos + run > n:
                    raise CorruptStreamError("literal run truncated")
                out.extend(blob[pos : pos + run])
                pos += run
            else:
                if pos + 2 > n:
                    raise CorruptStreamError("match token truncated")
                length = (control & 0x7F) + _MIN_MATCH
                distance = blob[pos] | (blob[pos + 1] << 8)
                pos += 2
                start = len(out) - distance
                if start < 0 or distance == 0:
                    raise CorruptStreamError("invalid match distance")
                extend_match(out, start, length)
        if len(out) != orig_len:
            raise CorruptStreamError(
                f"decoded {len(out)} bytes, header said {orig_len}"
            )
        if zlib.crc32(bytes(out)) != checksum:
            raise CorruptStreamError("content checksum mismatch")
        return bytes(out)
