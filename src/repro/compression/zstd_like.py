"""zstd-style codec: large-window LZ77 with entropy-coded literals.

Stands in for zstd as used by Google/Meta SFM deployments (§2.1). Like
zstd it separates the stream into a Huffman-coded *literals section* and a
*sequences section* of (literal-run, match-length, offset) triples; unlike
real zstd the sequences use plain bit-varints rather than FSE, which keeps
the implementation honest (real window-size effects, real entropy stage on
literals) at a fraction of the complexity.

Blob layout::

    magic(1) | mode(1) | orig_len(varint) | payload
    payload = lit_count(varint) lit_lengths(4b x 256) lit_codes...
              seq_count(varint) sequences...
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Sequence, Tuple

from repro.compression.base import Codec, CodecSpec, batch_stats, register_codec
from repro.compression.bitio import BitReader, BitWriter
from repro.compression.huffman import HuffmanTable
from repro.compression.lz77 import (
    PACKED_LENGTH_BITS,
    PACKED_LENGTH_MASK,
    Lz77Matcher,
    extend_match,
)
from repro.errors import ConfigError, CorruptStreamError

_MAGIC = 0x25
_MODE_STORED = 0
_MODE_COMPRESSED = 1

_MIN_MATCH = 3


def _write_varint_bits(writer: BitWriter, value: int) -> None:
    while True:
        chunk = value & 0x7F
        value >>= 7
        writer.write_bits(1 if value else 0, 1)
        writer.write_bits(chunk, 7)
        if not value:
            return


def _read_varint_bits(reader: BitReader) -> int:
    value = 0
    shift = 0
    while True:
        more = reader.read_bits(1)
        value |= reader.read_bits(7) << shift
        if not more:
            return value
        shift += 7
        if shift > 35:
            raise CorruptStreamError("varint too long")


@register_codec
class ZstdLikeCodec(Codec):
    """zstd-style codec with a configurable (large) window."""

    name = "zstd-like"
    # zstd -3: ~450 MBps compress, ~1.3 GBps decompress per ~2.6 GHz core.
    # Average over compress+decompress ~ the paper's 7.65 cycles/byte.
    spec = CodecSpec(
        name="zstd-like",
        compress_cycles_per_byte=5.8,
        decompress_cycles_per_byte=2.0,
    )

    def __init__(
        self,
        window_size: int = 128 * 1024,
        max_chain: int = 96,
        lazy: bool = True,
    ) -> None:
        if window_size > 8 * 1024 * 1024:
            raise ConfigError(
                f"zstd-like window cannot exceed 8 MiB, got {window_size}"
            )
        self._matcher = Lz77Matcher(
            window_size=window_size, max_chain=max_chain, lazy=lazy
        )
        self.window_size = window_size

    def compress(self, data: bytes) -> bytes:
        return self._compress_one(data, None)

    def compress_batch(self, pages: Sequence[bytes]) -> List[bytes]:
        """Batched compress: one batched tokenize feeds every page."""
        pages = list(pages)
        if not pages:
            return []
        token_iter = iter(
            self._matcher.tokenize_packed_batch([p for p in pages if p])
        )
        blobs = [
            self._compress_one(page, next(token_iter) if page else None)
            for page in pages
        ]
        batch_stats.compress_batch_calls += 1
        batch_stats.compress_batch_pages += len(pages)
        return blobs

    def decompress_batch(self, blobs: Sequence[bytes]) -> List[bytes]:
        pages = [self.decompress(blob) for blob in blobs]
        batch_stats.decompress_batch_calls += 1
        batch_stats.decompress_batch_pages += len(blobs)
        return pages

    def _compress_one(self, data: bytes, packed) -> bytes:
        body = self._compress_body(data, packed) if data else b""
        writer = BitWriter()
        if not data or len(body) + 3 >= len(data):
            writer.write_bits(_MAGIC, 8)
            writer.write_bits(_MODE_STORED, 8)
            _write_varint_bits(writer, len(data))
            writer.write_bits(zlib.crc32(data), 32)
            writer.align_to_byte()
            writer.write_bytes(data)
            return writer.getvalue()
        writer.write_bits(_MAGIC, 8)
        writer.write_bits(_MODE_COMPRESSED, 8)
        _write_varint_bits(writer, len(data))
        writer.write_bits(zlib.crc32(data), 32)
        writer.align_to_byte()
        writer.write_bytes(body)
        return writer.getvalue()

    def _compress_body(self, data: bytes, packed=None) -> bytes:
        if packed is None:
            packed = self._matcher.tokenize_packed(data)
        literals = bytearray()
        append_literal = literals.append
        # Sequence: (literal_run, match_length, offset); a trailing run of
        # literals is encoded as a sequence with match_length == 0.
        sequences: List[Tuple[int, int, int]] = []
        append_seq = sequences.append
        len_mask = PACKED_LENGTH_MASK
        run = 0
        for token in packed.tolist():
            if token < 256:
                append_literal(token)
                run += 1
            else:
                append_seq(
                    (run, token & len_mask, token >> PACKED_LENGTH_BITS)
                )
                run = 0
        if run:
            sequences.append((run, 0, 0))

        writer = BitWriter()
        _write_varint_bits(writer, len(literals))
        if literals:
            freq = [0] * 256
            for byte in literals:
                freq[byte] += 1
            table = HuffmanTable.from_frequencies(freq)
            for length in table.lengths:
                writer.write_bits(length, 4)
            # Every byte present in ``literals`` has non-zero frequency and
            # therefore a code; index the tables directly instead of paying
            # HuffmanTable.encode's zero-length check per byte.
            codes_lsb = table.codes_lsb
            lengths = table.lengths
            write_bits = writer.write_bits
            for byte in literals:
                write_bits(codes_lsb[byte], lengths[byte])
        _write_varint_bits(writer, len(sequences))
        for lit_run, match_len, offset in sequences:
            _write_varint_bits(writer, lit_run)
            _write_varint_bits(writer, match_len)
            if match_len:
                _write_varint_bits(writer, offset)
        return writer.getvalue()

    def decompress(self, blob: bytes) -> bytes:
        reader = BitReader(blob)
        if reader.read_bits(8) != _MAGIC:
            raise CorruptStreamError("bad zstd-like magic")
        mode = reader.read_bits(8)
        orig_len = _read_varint_bits(reader)
        checksum = reader.read_bits(32)
        reader.align_to_byte()
        if mode == _MODE_STORED:
            out = reader.read_bytes(orig_len)
            if zlib.crc32(out) != checksum:
                raise CorruptStreamError("content checksum mismatch")
            return out
        if mode != _MODE_COMPRESSED:
            raise CorruptStreamError(f"unknown zstd-like mode {mode}")

        lit_count = _read_varint_bits(reader)
        literals = bytearray()
        if lit_count:
            lengths = [reader.read_bits(4) for _ in range(256)]
            decoder = HuffmanTable.from_lengths(lengths).build_decoder()
            decode = decoder.decode
            append = literals.append
            for _ in range(lit_count):
                append(decode(reader))
        seq_count = _read_varint_bits(reader)

        out = bytearray()
        lit_pos = 0
        for _ in range(seq_count):
            lit_run = _read_varint_bits(reader)
            match_len = _read_varint_bits(reader)
            if lit_pos + lit_run > len(literals):
                raise CorruptStreamError("literal section overrun")
            out += literals[lit_pos : lit_pos + lit_run]
            lit_pos += lit_run
            if match_len:
                offset = _read_varint_bits(reader)
                start = len(out) - offset
                if start < 0 or offset == 0 or match_len < _MIN_MATCH:
                    raise CorruptStreamError("invalid sequence")
                extend_match(out, start, match_len)
        if len(out) != orig_len:
            raise CorruptStreamError(
                f"decoded {len(out)} bytes, header said {orig_len}"
            )
        if zlib.crc32(bytes(out)) != checksum:
            raise CorruptStreamError("content checksum mismatch")
        return bytes(out)
