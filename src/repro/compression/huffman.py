"""Canonical Huffman coding with length-limited codes.

Implements the entropy stage shared by the Deflate-style and zstd-style
codecs: code-length assignment from symbol frequencies (heap-built Huffman
tree with a Kraft-sum repair pass to enforce a maximum code length),
canonical code assignment, one-shot encoding via pre-bit-reversed codes,
and a zlib-style lookup-table decoder over
:class:`~repro.compression.bitio.BitReader`'s peek/consume fast path.

The encoder writes each code as a single ``write_bits`` call: canonical
codes are defined MSB-first, and emitting a code MSB-first into the
LSB-first bit stream is exactly emitting its bit-reversed value LSB-first,
so :class:`HuffmanTable` precomputes the reversed form. The decoder peeks
``root_bits`` bits at once and resolves any code no longer than that with
one table lookup; rarer longer codes fall back to the canonical
counts/offsets walk. Tables cache their built decoder, so decoding many
pages against one table (the fixed-tree mode, the benchmark loops, any
reused table object) builds the lookup table once.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.compression.bitio import BitReader, BitWriter
from repro.errors import ConfigError, CorruptStreamError

MAX_CODE_LENGTH = 15

#: Width of the decoder's first-level lookup table. 10 bits covers every
#: code zlib's default trees use in practice while keeping table build
#: (2^10 entries) cheap enough for per-page dynamic tables.
DECODE_ROOT_BITS = 10


#: Bit-reversal of each byte value; lets ``reverse_bits`` reverse any
#: code up to 16 bits with two lookups instead of a per-bit loop (the
#: decode path reverses every symbol of every freshly parsed table).
_BYTE_REVERSED = tuple(
    sum(((i >> bit) & 1) << (7 - bit) for bit in range(8)) for i in range(256)
)


def reverse_bits(value: int, nbits: int) -> int:
    """Reverse the low ``nbits`` bits of ``value``."""
    if nbits <= 16:
        full = (
            _BYTE_REVERSED[value & 0xFF] << 8
        ) | _BYTE_REVERSED[(value >> 8) & 0xFF]
        return full >> (16 - nbits)
    out = 0
    for _ in range(nbits):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


def code_lengths_from_frequencies(
    frequencies: Sequence[int], max_length: int = MAX_CODE_LENGTH
) -> List[int]:
    """Assign a code length to each symbol (0 for unused symbols).

    Builds a standard Huffman tree over symbols with non-zero frequency,
    then, if any depth exceeds ``max_length``, clamps the lengths and
    repairs the Kraft inequality by lengthening the cheapest codes until
    the code is feasible again (the classic zlib-style fixup).
    """
    if max_length < 1:
        raise ConfigError(f"max_length must be >= 1, got {max_length}")
    n = len(frequencies)
    used = [s for s in range(n) if frequencies[s] > 0]
    lengths = [0] * n
    if not used:
        return lengths
    if len(used) == 1:
        # A single-symbol alphabet still needs a 1-bit code so the decoder
        # can consume something.
        lengths[used[0]] = 1
        return lengths

    # Heap items: (weight, tiebreak, [symbols...depth bookkeeping]).
    heap: List = []
    depths = [0] * n
    groups: Dict[int, List[int]] = {}
    tiebreak = 0
    for s in used:
        groups[tiebreak] = [s]
        heapq.heappush(heap, (frequencies[s], tiebreak))
        tiebreak += 1
    while len(heap) > 1:
        w1, g1 = heapq.heappop(heap)
        w2, g2 = heapq.heappop(heap)
        merged = groups.pop(g1) + groups.pop(g2)
        for s in merged:
            depths[s] += 1
        groups[tiebreak] = merged
        heapq.heappush(heap, (w1 + w2, tiebreak))
        tiebreak += 1

    for s in used:
        lengths[s] = min(depths[s], max_length)

    # Repair Kraft sum if clamping overflowed it.
    kraft = sum(1 << (max_length - lengths[s]) for s in used)
    budget = 1 << max_length
    if kraft > budget:
        # Lengthen the shortest codes (cheapest in bits-lost) until valid.
        order = sorted(used, key=lambda s: (lengths[s], -frequencies[s]))
        idx = 0
        while kraft > budget:
            s = order[idx % len(order)]
            if lengths[s] < max_length:
                kraft -= 1 << (max_length - lengths[s])
                lengths[s] += 1
                kraft += 1 << (max_length - lengths[s])
            idx += 1
    return lengths


def canonical_codes(lengths: Sequence[int]) -> List[int]:
    """Assign canonical codes (MSB-first) given per-symbol code lengths."""
    max_len = max(lengths) if lengths else 0
    bl_count = [0] * (max_len + 1)
    for length in lengths:
        if length:
            bl_count[length] += 1
    next_code = [0] * (max_len + 2)
    code = 0
    for bits in range(1, max_len + 1):
        code = (code + bl_count[bits - 1]) << 1
        next_code[bits] = code
    codes = [0] * len(lengths)
    for symbol, length in enumerate(lengths):
        if length:
            codes[symbol] = next_code[length]
            next_code[length] += 1
    return codes


@dataclass(frozen=True)
class HuffmanTable:
    """Canonical encoder/decoder table for one alphabet.

    Equality and hashing consider only ``lengths``/``codes``; the
    bit-reversed encode table and the cached decoder are derived state.
    """

    lengths: tuple
    codes: tuple
    #: ``codes[s]`` bit-reversed over ``lengths[s]`` bits: the LSB-first
    #: form a single ``write_bits`` call emits as the MSB-first code.
    codes_lsb: tuple = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.codes_lsb is None:
            object.__setattr__(
                self,
                "codes_lsb",
                tuple(
                    reverse_bits(code, length)
                    for code, length in zip(self.codes, self.lengths)
                ),
            )
        object.__setattr__(self, "_decoder", None)

    @classmethod
    def from_frequencies(
        cls, frequencies: Sequence[int], max_length: int = MAX_CODE_LENGTH
    ) -> "HuffmanTable":
        lengths = code_lengths_from_frequencies(frequencies, max_length)
        return cls.from_lengths(lengths)

    @classmethod
    def from_lengths(cls, lengths: Sequence[int]) -> "HuffmanTable":
        return cls(lengths=tuple(lengths), codes=tuple(canonical_codes(lengths)))

    @property
    def num_symbols(self) -> int:
        return len(self.lengths)

    def encode(self, writer: BitWriter, symbol: int) -> None:
        """Write ``symbol``'s code to ``writer`` — one ``write_bits`` call."""
        length = self.lengths[symbol]
        if length == 0:
            raise CorruptStreamError(f"symbol {symbol} has no code")
        writer.write_bits(self.codes_lsb[symbol], length)

    def build_decoder(self) -> "HuffmanDecoder":
        """Return this table's decoder, building it at most once.

        The deflate/zstd decode paths historically rebuilt the decoder
        for every page; caching it on the table instance makes repeat
        decodes against one table (fixed trees, benchmarks, any held
        table object) free after the first build.
        """
        decoder = self._decoder
        if decoder is None:
            decoder = HuffmanDecoder(self)
            object.__setattr__(self, "_decoder", decoder)
        return decoder


class HuffmanDecoder:
    """Table-driven canonical Huffman decoder (zlib-style).

    A first-level table indexed by the next ``root_bits`` stream bits
    resolves every code of length <= ``root_bits`` in one peek + one
    lookup. Entries pack ``(length << 16) | symbol``; zero marks an index
    whose bits are either an invalid pattern or the prefix of a longer
    code, and falls back to the canonical counts/offsets bit-serial walk.
    """

    __slots__ = (
        "_max_len",
        "_symbols_by_length",
        "_first_code",
        "_root_bits",
        "_root_mask",
        "_root_table",
    )

    def __init__(
        self, table: HuffmanTable, root_bits: int = DECODE_ROOT_BITS
    ) -> None:
        max_len = max(table.lengths) if any(table.lengths) else 0
        self._max_len = max_len
        # symbols_by_length[l] lists symbols with code length l, in canonical
        # (code-value) order — the slow path for codes longer than the root.
        self._symbols_by_length: List[List[int]] = [[] for _ in range(max_len + 1)]
        order = sorted(
            (s for s in range(table.num_symbols) if table.lengths[s]),
            key=lambda s: (table.lengths[s], table.codes[s]),
        )
        for s in order:
            self._symbols_by_length[table.lengths[s]].append(s)
        # first_code[l]: canonical code value of the first code of length l.
        self._first_code = [0] * (max_len + 1)
        code = 0
        for length in range(1, max_len + 1):
            code <<= 1
            self._first_code[length] = code
            code += len(self._symbols_by_length[length])

        root = min(max_len, root_bits)
        self._root_bits = root
        self._root_mask = (1 << root) - 1
        root_table = [0] * (1 << root)
        for symbol, length in enumerate(table.lengths):
            if not 0 < length <= root:
                continue
            # A code of length l occupies the next l stream bits; in the
            # LSB-first peeked index those are the low l bits, reversed.
            # Every index whose low bits equal the code gets the entry —
            # one strided slice assignment instead of a Python loop.
            base = table.codes_lsb[symbol]
            entry = (length << 16) | symbol
            root_table[base :: 1 << length] = [entry] * (
                1 << (root - length)
            )
        self._root_table = root_table

    def decode(self, reader: BitReader) -> int:
        """Read one symbol from ``reader``.

        The peek/consume pair is inlined against the reader's accumulator:
        this method runs once per decoded symbol, and two extra method
        calls per symbol is measurable across a page. The semantics are
        identical — peeks zero-pad past the end of the stream, consuming
        past the real data raises.
        """
        if self._max_len == 0:
            raise CorruptStreamError("decoding with an empty Huffman table")
        acc = reader._acc
        nbits = reader._nbits
        if nbits < self._root_bits:
            data = reader._data
            pos = reader._pos
            while nbits < self._root_bits:
                chunk = data[pos : pos + 4]
                if not chunk:
                    break
                acc |= int.from_bytes(chunk, "little") << nbits
                pos += len(chunk)
                nbits += 8 * len(chunk)
            reader._acc = acc
            reader._nbits = nbits
            reader._pos = pos
        entry = self._root_table[acc & self._root_mask]
        if entry:
            length = entry >> 16
            if length > nbits:
                raise CorruptStreamError("bit stream exhausted")
            reader._acc = acc >> length
            reader._nbits = nbits - length
            return entry & 0xFFFF
        return self._decode_slow(reader)

    def _decode_slow(self, reader: BitReader) -> int:
        """Codes longer than the root table, and invalid patterns."""
        code = 0
        for length in range(1, self._max_len + 1):
            code = (code << 1) | reader.read_bit()
            if length <= self._root_bits:
                # Already known not to match (the root table covers every
                # valid code this short), keep accumulating.
                continue
            bucket = self._symbols_by_length[length]
            index = code - self._first_code[length]
            if 0 <= index < len(bucket):
                return bucket[index]
        raise CorruptStreamError("invalid Huffman code in stream")


def write_code_lengths(writer: BitWriter, lengths: Sequence[int]) -> None:
    """Serialise a code-length vector: 4 bits per symbol length.

    Our container formats always transmit the full alphabet, so a simple
    fixed-width encoding is used instead of Deflate's RLE'd length alphabet;
    the header cost difference is a handful of bytes on a 4 KiB page.
    """
    for length in lengths:
        if not 0 <= length <= MAX_CODE_LENGTH:
            raise ConfigError(f"code length out of range: {length}")
        writer.write_bits(length, 4)


def read_code_lengths(reader: BitReader, num_symbols: int) -> List[int]:
    """Inverse of :func:`write_code_lengths`."""
    return [reader.read_bits(4) for _ in range(num_symbols)]
