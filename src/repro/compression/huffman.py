"""Canonical Huffman coding with length-limited codes.

Implements the entropy stage shared by the Deflate-style and zstd-style
codecs: code-length assignment from symbol frequencies (heap-built Huffman
tree with a Kraft-sum repair pass to enforce a maximum code length),
canonical code assignment, and a bit-serial decoder matched to
:class:`~repro.compression.bitio.BitReader`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.compression.bitio import BitReader, BitWriter
from repro.errors import ConfigError, CorruptStreamError

MAX_CODE_LENGTH = 15


def code_lengths_from_frequencies(
    frequencies: Sequence[int], max_length: int = MAX_CODE_LENGTH
) -> List[int]:
    """Assign a code length to each symbol (0 for unused symbols).

    Builds a standard Huffman tree over symbols with non-zero frequency,
    then, if any depth exceeds ``max_length``, clamps the lengths and
    repairs the Kraft inequality by lengthening the cheapest codes until
    the code is feasible again (the classic zlib-style fixup).
    """
    if max_length < 1:
        raise ConfigError(f"max_length must be >= 1, got {max_length}")
    n = len(frequencies)
    used = [s for s in range(n) if frequencies[s] > 0]
    lengths = [0] * n
    if not used:
        return lengths
    if len(used) == 1:
        # A single-symbol alphabet still needs a 1-bit code so the decoder
        # can consume something.
        lengths[used[0]] = 1
        return lengths

    # Heap items: (weight, tiebreak, [symbols...depth bookkeeping]).
    heap: List = []
    depths = [0] * n
    groups: Dict[int, List[int]] = {}
    tiebreak = 0
    for s in used:
        groups[tiebreak] = [s]
        heapq.heappush(heap, (frequencies[s], tiebreak))
        tiebreak += 1
    while len(heap) > 1:
        w1, g1 = heapq.heappop(heap)
        w2, g2 = heapq.heappop(heap)
        merged = groups.pop(g1) + groups.pop(g2)
        for s in merged:
            depths[s] += 1
        groups[tiebreak] = merged
        heapq.heappush(heap, (w1 + w2, tiebreak))
        tiebreak += 1

    for s in used:
        lengths[s] = min(depths[s], max_length)

    # Repair Kraft sum if clamping overflowed it.
    kraft = sum(1 << (max_length - lengths[s]) for s in used)
    budget = 1 << max_length
    if kraft > budget:
        # Lengthen the shortest codes (cheapest in bits-lost) until valid.
        order = sorted(used, key=lambda s: (lengths[s], -frequencies[s]))
        idx = 0
        while kraft > budget:
            s = order[idx % len(order)]
            if lengths[s] < max_length:
                kraft -= 1 << (max_length - lengths[s])
                lengths[s] += 1
                kraft += 1 << (max_length - lengths[s])
            idx += 1
    return lengths


def canonical_codes(lengths: Sequence[int]) -> List[int]:
    """Assign canonical codes (MSB-first) given per-symbol code lengths."""
    max_len = max(lengths) if lengths else 0
    bl_count = [0] * (max_len + 1)
    for length in lengths:
        if length:
            bl_count[length] += 1
    next_code = [0] * (max_len + 2)
    code = 0
    for bits in range(1, max_len + 1):
        code = (code + bl_count[bits - 1]) << 1
        next_code[bits] = code
    codes = [0] * len(lengths)
    for symbol, length in enumerate(lengths):
        if length:
            codes[symbol] = next_code[length]
            next_code[length] += 1
    return codes


@dataclass(frozen=True)
class HuffmanTable:
    """Canonical encoder/decoder table for one alphabet."""

    lengths: tuple
    codes: tuple

    @classmethod
    def from_frequencies(
        cls, frequencies: Sequence[int], max_length: int = MAX_CODE_LENGTH
    ) -> "HuffmanTable":
        lengths = code_lengths_from_frequencies(frequencies, max_length)
        return cls.from_lengths(lengths)

    @classmethod
    def from_lengths(cls, lengths: Sequence[int]) -> "HuffmanTable":
        return cls(lengths=tuple(lengths), codes=tuple(canonical_codes(lengths)))

    @property
    def num_symbols(self) -> int:
        return len(self.lengths)

    def encode(self, writer: BitWriter, symbol: int) -> None:
        """Write ``symbol``'s code to ``writer``."""
        length = self.lengths[symbol]
        if length == 0:
            raise CorruptStreamError(f"symbol {symbol} has no code")
        writer.write_bits_msb(self.codes[symbol], length)

    def build_decoder(self) -> "HuffmanDecoder":
        return HuffmanDecoder(self)


class HuffmanDecoder:
    """Bit-serial canonical Huffman decoder.

    Uses the counts/offsets canonical decode loop: accumulate bits MSB-first
    and, at each length, check whether the accumulated value falls inside
    that length's code range.
    """

    def __init__(self, table: HuffmanTable) -> None:
        max_len = max(table.lengths) if any(table.lengths) else 0
        self._max_len = max_len
        # symbols_by_length[l] lists symbols with code length l, in canonical
        # (code-value) order.
        self._symbols_by_length: List[List[int]] = [[] for _ in range(max_len + 1)]
        order = sorted(
            (s for s in range(table.num_symbols) if table.lengths[s]),
            key=lambda s: (table.lengths[s], table.codes[s]),
        )
        for s in order:
            self._symbols_by_length[table.lengths[s]].append(s)
        # first_code[l]: canonical code value of the first code of length l.
        self._first_code = [0] * (max_len + 1)
        code = 0
        for length in range(1, max_len + 1):
            code <<= 1
            self._first_code[length] = code
            code += len(self._symbols_by_length[length])

    def decode(self, reader: BitReader) -> int:
        """Read one symbol from ``reader``."""
        if self._max_len == 0:
            raise CorruptStreamError("decoding with an empty Huffman table")
        code = 0
        for length in range(1, self._max_len + 1):
            code = (code << 1) | reader.read_bit()
            bucket = self._symbols_by_length[length]
            index = code - self._first_code[length]
            if 0 <= index < len(bucket):
                return bucket[index]
        raise CorruptStreamError("invalid Huffman code in stream")


def write_code_lengths(writer: BitWriter, lengths: Sequence[int]) -> None:
    """Serialise a code-length vector: 4 bits per symbol length.

    Our container formats always transmit the full alphabet, so a simple
    fixed-width encoding is used instead of Deflate's RLE'd length alphabet;
    the header cost difference is a handful of bytes on a 4 KiB page.
    """
    for length in lengths:
        if not 0 <= length <= MAX_CODE_LENGTH:
            raise ConfigError(f"code length out of range: {length}")
        writer.write_bits(length, 4)


def read_code_lengths(reader: BitReader, num_symbols: int) -> List[int]:
    """Inverse of :func:`write_code_lengths`."""
    return [reader.read_bits(4) for _ in range(num_symbols)]
