"""Optional native accelerator for the codec hot paths.

Loads ``_hotpath.c`` (shipped next to this module) as a shared library,
compiling it on first use with the host C compiler — the Python analog
of the paper's point that the deflate family is what you bolt an
accelerator onto.  The compiled object is cached in the system temp
directory keyed by a hash of the source, so each source revision
compiles at most once per machine.

Availability is strictly best-effort: if ``REPRO_NO_NATIVE`` is set, no
compiler is present, compilation fails, or the library will not load,
:func:`load` returns ``None`` and every caller silently stays on the
pure-Python/numpy engines.  Correctness never depends on this module —
the native kernels are bit-exact translations, and the test suite runs
the differential checks both with and without it.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

_SOURCE = Path(__file__).with_name("_hotpath.c")

_lib: Optional[ctypes.CDLL] = None
_load_attempted = False

#: Compilers tried in order; the first that produces a loadable .so wins.
_COMPILERS = ("cc", "gcc", "clang")


def _declare(lib: ctypes.CDLL) -> None:
    """Attach argtypes/restypes; pointers travel as raw addresses."""
    p = ctypes.c_void_p
    i64 = ctypes.c_int64
    lib.lz77_tokenize.argtypes = [p, i64, i64, i64, i64, i64, i64, p, p, p]
    lib.lz77_tokenize.restype = i64
    lib.deflate_decode_block.argtypes = [
        p, i64, i64, i64, p, p, p, p, p, p, p, p, p, i64,
    ]
    lib.deflate_decode_block.restype = i64
    lib.deflate_encode_symbols.argtypes = [
        p, i64, p, p, p, p, p, p, p, p, p, p, p,
        ctypes.POINTER(ctypes.c_uint64),
        ctypes.POINTER(ctypes.c_int64),
        p, i64,
    ]
    lib.deflate_encode_symbols.restype = i64
    lib.lzfast_compress.argtypes = [p, i64, i64, p, p, i64]
    lib.lzfast_compress.restype = i64
    lib.lzfast_decompress.argtypes = [p, i64, i64, p, i64]
    lib.lzfast_decompress.restype = i64


def _compile(src: Path, out: Path) -> bool:
    tmp = out.with_name(f"{out.name}.{os.getpid()}.tmp")
    for compiler in _COMPILERS:
        try:
            proc = subprocess.run(
                [compiler, "-O2", "-shared", "-fPIC",
                 "-o", str(tmp), str(src)],
                capture_output=True,
                timeout=120,
            )
        except (OSError, subprocess.SubprocessError):
            continue
        if proc.returncode == 0 and tmp.exists():
            os.replace(tmp, out)  # atomic: concurrent builders converge
            return True
    if tmp.exists():
        try:
            tmp.unlink()
        except OSError:
            pass
    return False


def load() -> Optional[ctypes.CDLL]:
    """Return the native library, or ``None`` when unavailable."""
    global _lib, _load_attempted
    if _load_attempted:
        return _lib
    _load_attempted = True
    if os.environ.get("REPRO_NO_NATIVE"):
        return None
    try:
        source = _SOURCE.read_bytes()
        digest = hashlib.blake2b(source, digest_size=12).hexdigest()
        cache_dir = Path(
            os.environ.get("REPRO_NATIVE_CACHE")
            or Path(tempfile.gettempdir()) / "repro-native"
        )
        cache_dir.mkdir(parents=True, exist_ok=True)
        so_path = cache_dir / f"hotpath-{digest}.so"
        if not so_path.exists() and not _compile(_SOURCE, so_path):
            return None
        lib = ctypes.CDLL(str(so_path))
        _declare(lib)
        _lib = lib
    except Exception:
        _lib = None
    return _lib


def available() -> bool:
    """True when the native kernels are loaded (or loadable)."""
    return load() is not None


def reset_for_tests() -> None:
    """Forget the cached load result (lets tests flip REPRO_NO_NATIVE)."""
    global _lib, _load_attempted
    _lib = None
    _load_attempted = False
