"""Seeded case generators for the fuzz framework.

Every generator is a pure function of the ``random.Random`` it is given,
so a case regenerates exactly from the single case seed the framework
prints on failure. Generators cover the surfaces the validation suite
fuzzes: raw pages and corpus mixes (codec round-trips), red-black tree
and zpool operation scripts (invariant churn), swap traces (emulator
input), MMIO register programs (driver protocol), and offload batches
(the emulator-vs-module differential oracle).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.workloads.corpus import CORPUS_NAMES, PAGE_SIZE, generate_corpus

#: Byte-level adversarial shapes every codec must survive (satellite
#: list from the validation issue plus historical codec trouble spots).
ADVERSARIAL_BUFFERS: Tuple[bytes, ...] = (
    b"",
    b"\x00",
    b"a",
    bytes(PAGE_SIZE),  # all-zero page
    b"\xff" * PAGE_SIZE,
    b"abc" * (PAGE_SIZE // 3 + 1),  # repeated 3-byte period
    bytes(range(256)) * (PAGE_SIZE // 256),
    b"ab" * (PAGE_SIZE // 2),
    bytes([0, 255] * (PAGE_SIZE // 2)),
)


def gen_page(rng: random.Random, page_size: int = PAGE_SIZE) -> bytes:
    """One page drawn from a spectrum of redundancy structures."""
    style = rng.randrange(7)
    if style == 0:
        return bytes(page_size)
    if style == 1:
        return bytes(rng.getrandbits(8) for _ in range(page_size))
    if style == 2:  # short repeated period (1-9 bytes)
        period = bytes(
            rng.getrandbits(8) for _ in range(rng.randint(1, 9))
        )
        return (period * (page_size // len(period) + 1))[:page_size]
    if style == 3:  # sparse: zeros with initialized islands
        page = bytearray(page_size)
        for _ in range(rng.randint(1, 8)):
            start = rng.randrange(page_size)
            run = rng.randint(1, 256)
            for i in range(start, min(page_size, start + run)):
                page[i] = rng.getrandbits(8)
        return bytes(page)
    if style == 4:  # truncated page (partial tail write)
        return gen_page(rng, rng.randint(0, page_size - 1) or 1)
    if style == 5:  # dictionary blocks at realistic match distances
        dictionary = [
            bytes(rng.getrandbits(8) for _ in range(rng.randint(4, 64)))
            for _ in range(rng.randint(1, 6))
        ]
        out = bytearray()
        while len(out) < page_size:
            out += rng.choice(dictionary)
        return bytes(out[:page_size])
    # corpus-class page
    name = rng.choice(CORPUS_NAMES)
    return generate_corpus(name, page_size, seed=rng.getrandbits(31))


def gen_corpus_mix(
    rng: random.Random, pages: int = 4, page_size: int = PAGE_SIZE
) -> List[bytes]:
    """A mixed batch: corpus pages interleaved with adversarial shapes."""
    out: List[bytes] = []
    for _ in range(pages):
        if rng.random() < 0.25:
            out.append(rng.choice(ADVERSARIAL_BUFFERS))
        else:
            out.append(gen_page(rng, page_size))
    return out


# -- data-structure operation scripts ---------------------------------------


def gen_rbtree_ops(
    rng: random.Random, n: int = 200, key_space: int = 256
) -> List[Tuple]:
    """Insert/delete/lookup script over a bounded key space (bounded so
    per-mutation full-tree checks stay affordable at 10k ops)."""
    ops: List[Tuple] = []
    for i in range(n):
        key = rng.randrange(key_space)
        roll = rng.random()
        if roll < 0.5:
            ops.append(("insert", key, i))
        elif roll < 0.85:
            ops.append(("delete", key))
        else:
            ops.append(("lookup", key))
    return ops


def gen_zpool_ops(rng: random.Random, n: int = 120) -> List[Tuple]:
    """Store/free/compact/load churn; indices are resolved against the
    live handle list at execution time, so scripts stay replayable."""
    ops: List[Tuple] = []
    for _ in range(n):
        roll = rng.random()
        if roll < 0.45:
            length = rng.choice(
                (1, 16, rng.randint(17, 512), rng.randint(513, 2048), 4096)
            )
            fill = rng.getrandbits(8)
            ops.append(("store", length, fill))
        elif roll < 0.75:
            ops.append(("free", rng.getrandbits(16)))
        elif roll < 0.9:
            ops.append(("load", rng.getrandbits(16)))
        else:
            ops.append(("compact",))
    return ops


# -- swap traces -------------------------------------------------------------


def gen_swap_trace(
    rng: random.Random,
    events: int = 200,
    mean_gap_s: float = 1e-4,
    out_fraction: float = 0.6,
):
    """A time-ordered swap-in/out trace with Poisson-ish gaps."""
    from repro.workloads.traces import SWAP_IN, SWAP_OUT, SwapTrace

    trace = SwapTrace()
    t = 0.0
    for i in range(events):
        t += rng.expovariate(1.0 / mean_gap_s)
        kind = SWAP_OUT if rng.random() < out_fraction else SWAP_IN
        trace.record(t, kind, i * PAGE_SIZE)
    return trace


# -- MMIO register programs --------------------------------------------------


def gen_register_program(rng: random.Random, n: int = 60) -> List[Tuple]:
    """A host/device MMIO op sequence, including illegal accesses the
    register file must reject (read-only writes, unknown offsets,
    negative values)."""
    from repro.core.registers import Registers

    offsets = [int(register) for register in Registers]
    ops: List[Tuple] = []
    for _ in range(n):
        roll = rng.random()
        if roll < 0.1:  # unknown offset
            offset = rng.choice((0x4, 0x100, 0x7F, 0xFF8))
        else:
            offset = rng.choice(offsets)
        kind = rng.choice(("read", "write", "device_set"))
        if kind == "read":
            ops.append(("read", offset))
        elif kind == "write":
            value = rng.randint(-4, 1 << 32) if rng.random() < 0.2 else (
                rng.getrandbits(20)
            )
            ops.append(("write", offset, value))
        else:
            ops.append(("device_set", rng.choice(offsets), rng.getrandbits(20)))
    return ops


# -- offload batches (differential oracle input) -----------------------------


@dataclass(frozen=True)
class OffloadOp:
    """One NMA access submission in a replayable offload batch."""

    ref: int  # REF index at which the request is submitted
    is_write: bool
    row: Optional[int]  # None = placement-flexible
    nbytes: int


def gen_offload_batch(
    rng: random.Random,
    num_refs: int = 64,
    rows: int = 128 * 1024,
    max_ops_per_ref: int = 3,
    page_bytes: int = PAGE_SIZE,
) -> List[OffloadOp]:
    """A seeded batch mixing compression reads (placement-flexible
    writebacks), fixed-row prefetch reads, and blob-sized transfers —
    the same shapes the emulator submits per window."""
    batch: List[OffloadOp] = []
    blob = max(64, page_bytes // 3)
    for ref in range(num_refs):
        for _ in range(rng.randint(0, max_ops_per_ref)):
            roll = rng.random()
            if roll < 0.3:
                # Compressed-blob writeback: placement-flexible.
                batch.append(
                    OffloadOp(ref=ref, is_write=True, row=None, nbytes=blob)
                )
            elif roll < 0.55:
                # Compression input read: cold candidates are abundant,
                # the controller picks one in the refreshing rows.
                batch.append(
                    OffloadOp(
                        ref=ref, is_write=False, row=None, nbytes=page_bytes
                    )
                )
            elif roll < 0.8:
                # Prefetch read of a fixed-row blob.
                batch.append(
                    OffloadOp(
                        ref=ref,
                        is_write=False,
                        row=rng.randrange(rows),
                        nbytes=blob,
                    )
                )
            else:
                # Decompressed-page writeback to a fresh frame.
                batch.append(
                    OffloadOp(
                        ref=ref, is_write=True, row=None, nbytes=page_bytes
                    )
                )
    return batch


def gen_fault_plan(
    rng: random.Random,
    max_sites: int = 6,
    max_probability: float = 0.15,
) -> "FaultPlan":
    """A seeded :class:`~repro.resilience.faults.FaultPlan`: a random
    subset of injection sites with moderate probabilities, so a fuzzed
    chaos run sees several distinct fault kinds without drowning the
    workload. The plan seed itself is drawn from ``rng``, keeping the
    whole campaign reproducible from one case seed."""
    from repro.resilience.faults import ALL_SITES, FaultPlan, FaultSpec

    count = rng.randint(1, min(max_sites, len(ALL_SITES)))
    sites = rng.sample(ALL_SITES, count)
    specs = tuple(
        FaultSpec(
            site=site,
            probability=round(rng.uniform(0.01, max_probability), 4),
            skip_calls=rng.choice((0, 0, 0, 5, 20)),
            max_fires=rng.choice((0, 0, 1, 4)),
            magnitude=(
                round(rng.uniform(2.0, 16.0), 2)
                if site == "dfm.latency_spike" else 0.0
            ),
        )
        for site in sorted(sites)
    )
    return FaultPlan(seed=rng.getrandbits(32), specs=specs)
