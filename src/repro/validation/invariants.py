"""Pluggable structural invariant checkers.

Each checker takes one live object and raises :class:`InvariantViolation`
(with a precise message) if a structural property does not hold:

* :func:`check_rbtree` — BST ordering, root-black, no red-red edge,
  equal black heights, size consistency;
* :func:`check_zpool` — no overlapping allocations inside a slab, the
  locator and slab entry tables agree exactly, payload + gaps account
  for every slab byte, capacity bounds;
* :func:`check_spm` — byte accounting sums over the live entries,
  occupancy within [0, capacity], peak monotonicity;
* :func:`check_nma` — the device register mirror
  (``SP_Capacity_Register``, ``CRQ_FREE``) agrees with the actual SPM
  occupancy and queue depth;
* :func:`check_register_file` — register values are unsigned and every
  architected offset is present;
* :func:`check_window_scheduler` — the pending counter matches the
  queued requests, budgets within configured bounds;
* :func:`check_xfm_module` — after each window the rank must look
  untouched to the host and the command trace must be time-ordered;
* :func:`check_tier_pipeline` — the pipeline's placement map, per-tier
  LRU lists, keyed index, and the tiers' own ``contains`` all agree.

All checkers are registered with :mod:`repro.validation.hooks` at import
time, which is what makes ``hooks.checkpoint(obj)`` dispatch to them.
They are also directly callable from tests.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.nma import NearMemoryAccelerator
from repro.core.refresh_channel import WindowScheduler
from repro.core.registers import RegisterFile, Registers
from repro.core.spm import ScratchpadMemory, SpmTag
from repro.core.xfm_module import XfmModule
from repro.errors import ReproError
from repro.sfm.rbtree import RedBlackTree
from repro.sfm.zpool import Zpool
from repro.tiering.pipeline import TierPipeline
from repro.validation import hooks


class InvariantViolation(ReproError, AssertionError):
    """A structural invariant of a model object does not hold.

    Derives from ``AssertionError`` as well so legacy ``pytest.raises``
    guards written against assert-style checkers keep working.
    """


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise InvariantViolation(message)


# -- red-black tree ----------------------------------------------------------


def check_rbtree(tree: RedBlackTree) -> None:
    """BST + red-black properties plus size consistency."""
    try:
        tree.check_invariants()
    except AssertionError as exc:
        raise InvariantViolation(f"rbtree: {exc}") from exc
    keys = tree.keys()
    _require(
        len(keys) == len(tree),
        f"rbtree: size {len(tree)} but iteration yields {len(keys)} keys",
    )
    _require(
        keys == sorted(set(keys)),
        "rbtree: in-order iteration is not strictly increasing",
    )


# -- zpool -------------------------------------------------------------------


def check_zpool(pool: Zpool) -> None:
    """Allocation-map consistency of the compressed pool."""
    _require(
        len(pool._slabs) <= pool.max_slabs,
        f"zpool: {len(pool._slabs)} slab slots exceed max {pool.max_slabs}",
    )
    seen_handles = set()
    for index, slab in enumerate(pool._slabs):
        if slab is None:
            continue
        _require(
            bool(slab.entries),
            f"zpool: slab {index} is empty but not released",
        )
        spans: List[Tuple[int, int]] = sorted(slab.entries.values())
        cursor = 0
        payload = 0
        for offset, length in spans:
            _require(
                length > 0,
                f"zpool: slab {index} holds a zero-length entry",
            )
            _require(
                offset >= cursor,
                f"zpool: slab {index} entries overlap at offset {offset}",
            )
            _require(
                offset + length <= pool.slab_size,
                f"zpool: slab {index} entry [{offset}, {offset + length}) "
                f"exceeds slab size {pool.slab_size}",
            )
            cursor = offset + length
            payload += length
        gap_bytes = sum(length for _, length in slab.gaps(pool.slab_size))
        _require(
            payload + gap_bytes == pool.slab_size,
            f"zpool: slab {index} payload {payload} + gaps {gap_bytes} "
            f"!= slab size {pool.slab_size}",
        )
        for handle, (offset, length) in slab.entries.items():
            _require(
                handle not in seen_handles,
                f"zpool: handle {handle} appears in more than one slab",
            )
            seen_handles.add(handle)
            _require(
                pool._locator.get(handle) == (index, offset, length),
                f"zpool: locator for handle {handle} disagrees with "
                f"slab {index} entry ({offset}, {length})",
            )
    _require(
        seen_handles == set(pool._locator),
        "zpool: locator handles and slab handles differ: "
        f"{sorted(seen_handles.symmetric_difference(pool._locator))[:8]}",
    )
    _require(
        pool.stored_bytes() <= pool.capacity_bytes,
        f"zpool: stored {pool.stored_bytes()} exceeds capacity "
        f"{pool.capacity_bytes}",
    )


# -- scratchpad memory -------------------------------------------------------


def check_spm(spm: ScratchpadMemory) -> None:
    """Byte accounting of the staging buffer."""
    total = sum(entry.nbytes for entry in spm._entries.values())
    _require(
        total == spm.used_bytes,
        f"spm: used_bytes {spm.used_bytes} but entries sum to {total}",
    )
    _require(
        0 <= spm.used_bytes <= spm.capacity_bytes,
        f"spm: used {spm.used_bytes} outside [0, {spm.capacity_bytes}]",
    )
    _require(
        spm.peak_used >= spm.used_bytes,
        f"spm: peak {spm.peak_used} below current use {spm.used_bytes}",
    )
    for entry in spm._entries.values():
        _require(
            entry.nbytes > 0,
            f"spm: entry {entry.entry_id} has non-positive size",
        )
        _require(
            entry.tag in (SpmTag.PENDING, SpmTag.COMPLETED),
            f"spm: entry {entry.entry_id} has invalid tag {entry.tag!r}",
        )


# -- NMA register mirror -----------------------------------------------------


def check_nma(nma: NearMemoryAccelerator) -> None:
    """The MMIO mirror must agree with the device state it advertises."""
    check_spm(nma.spm)
    _require(
        nma.registers[Registers.SP_CAPACITY] == nma.spm.free_bytes,
        f"nma: SP_Capacity_Register {nma.registers[Registers.SP_CAPACITY]} "
        f"!= SPM free bytes {nma.spm.free_bytes}",
    )
    _require(
        nma.registers[Registers.CRQ_FREE] == nma.queue_free_slots(),
        f"nma: CRQ_FREE {nma.registers[Registers.CRQ_FREE]} != free slots "
        f"{nma.queue_free_slots()}",
    )
    _require(
        0 <= nma.queue_depth <= nma.config.crq_depth,
        f"nma: queue depth {nma.queue_depth} outside "
        f"[0, {nma.config.crq_depth}]",
    )
    check_register_file(nma.registers)


def check_register_file(registers: RegisterFile) -> None:
    """All architected registers present, all values unsigned."""
    for register in Registers:
        _require(
            int(register) in registers._values,
            f"registers: architected offset {register.name} missing",
        )
    for offset, value in registers._values.items():
        _require(
            value >= 0,
            f"registers: offset 0x{offset:x} holds negative value {value}",
        )


# -- refresh-window scheduler ------------------------------------------------


def check_window_scheduler(scheduler: WindowScheduler) -> None:
    """The pending counter must match the queued request population."""
    queued = len(scheduler._flexible) + sum(
        1
        for bucket in scheduler._slot_buckets.values()
        for request in bucket
        if request.request_id not in scheduler._done
    )
    _require(
        scheduler.pending_count == queued,
        f"scheduler: pending_count {scheduler.pending_count} but "
        f"{queued} requests queued",
    )
    _require(
        scheduler.accesses_per_ref >= 1,
        "scheduler: accesses_per_ref must stay >= 1",
    )
    _require(
        0 <= scheduler.random_per_ref <= scheduler.accesses_per_ref,
        "scheduler: random_per_ref outside [0, accesses_per_ref]",
    )


# -- protocol-checked module -------------------------------------------------


def check_xfm_module(module: XfmModule) -> None:
    """Host transparency (§5) plus trace ordering after each window."""
    _require(
        module.host_window_clean(),
        "xfm_module: rank not host-clean between refresh windows "
        "(refresh in progress or rows left open)",
    )
    check_window_scheduler(module.scheduler)
    times = [command.time_ns for command in module.commands]
    _require(
        all(a <= b for a, b in zip(times, times[1:])),
        "xfm_module: command trace is not time-ordered",
    )


# -- tier pipeline -----------------------------------------------------------


def check_tier_pipeline(pipeline: TierPipeline) -> None:
    """Placement bookkeeping must agree with the tiers themselves."""
    num_tiers = len(pipeline.tiers)
    for vaddr, index in pipeline._where.items():
        _require(
            0 <= index < num_tiers,
            f"pipeline: vaddr 0x{vaddr:x} mapped to invalid tier {index}",
        )
        _require(
            vaddr in pipeline._lru[index],
            f"pipeline: vaddr 0x{vaddr:x} mapped to tier {index} but "
            "missing from that tier's LRU list",
        )
        _require(
            pipeline.tiers[index].contains(vaddr),
            f"pipeline: tier {pipeline.tier_names[index]} does not hold "
            f"vaddr 0x{vaddr:x} the placement map assigns to it",
        )
    lru_total = sum(len(lru) for lru in pipeline._lru)
    _require(
        lru_total == len(pipeline._where),
        f"pipeline: LRU lists track {lru_total} pages but the placement "
        f"map holds {len(pipeline._where)}",
    )
    for index, lru in enumerate(pipeline._lru):
        for vaddr in lru:
            _require(
                pipeline._where.get(vaddr) == index,
                f"pipeline: tier {index} LRU lists vaddr 0x{vaddr:x} but "
                f"the placement map says {pipeline._where.get(vaddr)}",
            )
    for key, page in pipeline._keyed.items():
        _require(
            page.vaddr in pipeline._where,
            f"pipeline: keyed entry {key} points at vaddr "
            f"0x{page.vaddr:x} which no tier holds",
        )
    for name, tier in zip(pipeline.tier_names, pipeline.tiers):
        _require(
            tier.used_bytes() <= tier.capacity_bytes,
            f"pipeline: tier {name} uses {tier.used_bytes()} bytes, over "
            f"its capacity {tier.capacity_bytes}",
        )


# -- registration ------------------------------------------------------------

hooks.register_checker(RedBlackTree, check_rbtree)
hooks.register_checker(Zpool, check_zpool)
hooks.register_checker(ScratchpadMemory, check_spm)
hooks.register_checker(NearMemoryAccelerator, check_nma)
hooks.register_checker(RegisterFile, check_register_file)
hooks.register_checker(WindowScheduler, check_window_scheduler)
hooks.register_checker(XfmModule, check_xfm_module)
hooks.register_checker(TierPipeline, check_tier_pipeline)
