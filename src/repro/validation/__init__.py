"""Cross-layer validation subsystem (differential oracles, invariant
checkers, deterministic fuzzing).

This package is the correctness tooling that lets perf/scaling PRs
refactor hot paths without silently breaking paper fidelity:

* :mod:`repro.validation.hooks` — the zero-cost-when-disabled
  checkpoint switch every instrumented class calls after mutations;
* :mod:`repro.validation.invariants` — the structural checkers those
  checkpoints dispatch to (rbtree, zpool, SPM, register mirror, window
  scheduler, XFM module);
* :mod:`repro.validation.oracles` — differential oracles: codecs vs
  stdlib zlib, the optimistic emulator engine vs the FSM-protocol-
  checked :class:`~repro.core.xfm_module.XfmModule`, and independent
  command-trace replay;
* :mod:`repro.validation.fuzz` — a deterministic stdlib-only fuzz
  micro-framework with single-seed reproduction and shrinking;
* :mod:`repro.validation.generators` — seeded case generators (pages,
  corpus mixes, operation scripts, swap traces, register programs,
  offload batches).

Enable checkpoints globally with ``REPRO_VALIDATION=1``, scoped with
``with validation(): ...``, or for a whole pytest run with
``--validation``.

Symbols from :mod:`~repro.validation.invariants` and
:mod:`~repro.validation.oracles` are loaded lazily (PEP 562): those
modules import the instrumented data structures, which themselves import
:mod:`~repro.validation.hooks`, so importing them eagerly here would
create a cycle for any module that merely wants a checkpoint.
"""

from repro.validation.fuzz import (
    Fuzzer,
    FuzzFailure,
    FuzzReport,
    case_seed,
    fuzz_reproduce,
    shrink_candidates,
)
from repro.validation.hooks import (
    checkpoint,
    register_checker,
    set_validation,
    validation,
    validation_enabled,
)

#: Lazily-resolved exports: name -> defining submodule.
_LAZY = {
    "InvariantViolation": "invariants",
    "check_nma": "invariants",
    "check_rbtree": "invariants",
    "check_register_file": "invariants",
    "check_spm": "invariants",
    "check_window_scheduler": "invariants",
    "check_xfm_module": "invariants",
    "check_zpool": "invariants",
    "OracleMismatch": "oracles",
    "ReplayResult": "oracles",
    "check_command_trace": "oracles",
    "check_roundtrip": "oracles",
    "crosscheck_vs_zlib": "oracles",
    "differential_offload_check": "oracles",
    "replay_batch_module": "oracles",
    "replay_batch_optimistic": "oracles",
    "ADVERSARIAL_BUFFERS": "generators",
    "OffloadOp": "generators",
    "gen_corpus_mix": "generators",
    "gen_offload_batch": "generators",
    "gen_page": "generators",
    "gen_register_program": "generators",
    "gen_rbtree_ops": "generators",
    "gen_swap_trace": "generators",
    "gen_zpool_ops": "generators",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    module = importlib.import_module(f"{__name__}.{module_name}")
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "ADVERSARIAL_BUFFERS",
    "Fuzzer",
    "FuzzFailure",
    "FuzzReport",
    "InvariantViolation",
    "OffloadOp",
    "OracleMismatch",
    "ReplayResult",
    "case_seed",
    "check_command_trace",
    "check_nma",
    "check_rbtree",
    "check_register_file",
    "check_roundtrip",
    "check_spm",
    "check_window_scheduler",
    "check_xfm_module",
    "check_zpool",
    "checkpoint",
    "crosscheck_vs_zlib",
    "differential_offload_check",
    "fuzz_reproduce",
    "gen_corpus_mix",
    "gen_offload_batch",
    "gen_page",
    "gen_register_program",
    "gen_rbtree_ops",
    "gen_swap_trace",
    "gen_zpool_ops",
    "register_checker",
    "replay_batch_module",
    "replay_batch_optimistic",
    "set_validation",
    "shrink_candidates",
    "validation",
    "validation_enabled",
]
