"""Zero-cost-when-disabled validation checkpoints.

Data-structure classes across the library call :func:`checkpoint` at the
end of every mutating operation. When validation is disabled (the
default) the call is a single module-level boolean test — cheap enough
to leave in benchmark hot paths. When enabled (``with validation():``,
:func:`set_validation`, the ``REPRO_VALIDATION`` environment variable,
or pytest's ``--validation`` flag) every checkpoint dispatches to the
invariant checker registered for the object's class in
:mod:`repro.validation.invariants` and raises
:class:`~repro.validation.invariants.InvariantViolation` on the first
broken structural property.

The registry is keyed by class and walked through the MRO, so a checker
registered for a base class also covers subclasses (e.g. ``XfmBackend``
inherits ``SfmBackend``'s checks).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional

#: The global switch. Read directly by hot paths via
#: :func:`validation_enabled`; mutate only through :func:`set_validation`.
_enabled: bool = bool(os.environ.get("REPRO_VALIDATION"))

#: class -> checker(instance) -> None (raises InvariantViolation).
_checkers: Dict[type, Callable] = {}

_registry_loaded: bool = False


def validation_enabled() -> bool:
    """Whether invariant checkpoints are active."""
    return _enabled


def set_validation(enabled: bool) -> bool:
    """Globally enable/disable checkpoints; returns the previous state."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    if _enabled:
        _ensure_registry()
    return previous


@contextmanager
def validation(enabled: bool = True) -> Iterator[None]:
    """Scoped enable (or disable) of invariant checkpoints."""
    previous = set_validation(enabled)
    try:
        yield
    finally:
        set_validation(previous)


def register_checker(cls: type, checker: Callable) -> None:
    """Bind ``checker`` to instances of ``cls`` (and subclasses)."""
    _checkers[cls] = checker


def checker_for(cls: type) -> Optional[Callable]:
    """The registered checker for ``cls``, resolved through the MRO."""
    _ensure_registry()
    for base in cls.__mro__:
        checker = _checkers.get(base)
        if checker is not None:
            return checker
    return None


def checkpoint(obj: object) -> None:
    """Validate ``obj`` if validation is on; free when it is off."""
    if not _enabled:
        return
    checker = checker_for(type(obj))
    if checker is not None:
        checker(obj)


def _ensure_registry() -> None:
    """Populate the checker registry (lazy import breaks the cycle:
    invariants imports the data structures, which import this module)."""
    global _registry_loaded
    if _registry_loaded:
        return
    _registry_loaded = True
    import repro.validation.invariants  # noqa: F401  (registers on import)
