"""Differential oracles: cross-implementation agreement checks.

Three families of oracle, all raising :class:`OracleMismatch` with a
precise diff on disagreement:

* **codec vs stdlib zlib** — our codecs are from-scratch and their
  containers are not RFC 1950 interchangeable, so the overlap with zlib
  is semantic, not bitwise: both must round-trip the same plaintext
  byte-exactly, and for the Deflate family (the algorithm zlib
  implements) compressed sizes must land in a fixed band around zlib's.

* **emulator vs xfm_module** — the optimistic refresh-window engine
  (:class:`~repro.core.refresh_channel.WindowScheduler` driven exactly
  the way :class:`~repro.core.emulator.XfmEmulator` drives it) and the
  FSM-protocol-checked :class:`~repro.core.xfm_module.XfmModule` replay
  the *same* offload batch; they must service the same requests in the
  same windows with the same conditional/random split, and the module
  path must complete with zero
  :class:`~repro.errors.DramProtocolError`.

* **command-trace replay** — the module's emitted command stream is
  re-validated from scratch by :class:`~repro.dram.trace.TraceValidator`
  (independent bank FSM instances), so a bug in the module's in-line
  checking cannot self-certify.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compression.base import Codec
from repro.core.refresh_channel import AccessKind, WindowScheduler
from repro.core.xfm_module import XfmModule
from repro.dram.device import DDR5_32GB, DramDeviceConfig, timings_for_device
from repro.dram.refresh import RefreshScheduler
from repro.dram.timing import DramTimings
from repro.dram.trace import TraceStats, TraceValidator
from repro.errors import ReproError
from repro.validation.generators import OffloadOp


class OracleMismatch(ReproError, AssertionError):
    """Two implementations that must agree disagreed."""


# -- codec oracles -----------------------------------------------------------


def check_roundtrip(codec: Codec, data: bytes) -> bytes:
    """Byte-exact round-trip through ``codec``; returns the blob."""
    blob = codec.compress(data)
    restored = codec.decompress(blob)
    if restored != data:
        prefix = next(
            (
                i
                for i, (a, b) in enumerate(zip(restored, data))
                if a != b
            ),
            min(len(restored), len(data)),
        )
        raise OracleMismatch(
            f"{codec.name}: round-trip mismatch on {len(data)}-byte input "
            f"(restored {len(restored)} bytes, first divergence at "
            f"offset {prefix})"
        )
    return blob


def crosscheck_vs_zlib(
    codec: Codec,
    data: bytes,
    size_band: Optional[Tuple[float, float]] = None,
) -> Tuple[int, int]:
    """Differential round-trip against stdlib zlib on the same plaintext.

    Both stacks must restore ``data`` exactly from their own containers.
    When ``size_band=(low, high)`` is given (the Deflate-family case,
    where the algorithms overlap), our compressed size must satisfy
    ``low * zlib_size <= ours <= high * zlib_size``. Returns
    ``(our_size, zlib_size)``.
    """
    blob = check_roundtrip(codec, data)
    reference = zlib.compress(data, 6)
    if zlib.decompress(reference) != data:  # pragma: no cover — stdlib
        raise OracleMismatch("stdlib zlib failed its own round-trip")
    if size_band is not None and data:
        low, high = size_band
        if not low * len(reference) <= len(blob) <= high * len(reference):
            raise OracleMismatch(
                f"{codec.name}: compressed {len(data)} bytes to "
                f"{len(blob)}, outside [{low}, {high}] x zlib's "
                f"{len(reference)}"
            )
    return len(blob), len(reference)


# -- emulator vs xfm_module --------------------------------------------------


@dataclass
class ReplayResult:
    """What one path serviced while replaying an offload batch."""

    serviced: int = 0
    conditional: int = 0
    random: int = 0
    bytes_moved: int = 0
    #: ref index -> number of accesses executed in that window.
    per_window: Dict[int, int] = field(default_factory=dict)
    #: request ids in execution order (both paths number submissions
    #: identically, so these must match element-wise).
    order: List[int] = field(default_factory=list)


def _record(result: ReplayResult, executed, ref: int) -> None:
    for access in executed:
        result.serviced += 1
        if access.conditional:
            result.conditional += 1
        else:
            result.random += 1
        result.bytes_moved += access.request.nbytes
        result.order.append(access.request.request_id)
    if executed:
        result.per_window[ref] = (
            result.per_window.get(ref, 0) + len(executed)
        )


def replay_batch_optimistic(
    batch: Sequence[OffloadOp],
    device: DramDeviceConfig = DDR5_32GB,
    timings: Optional[DramTimings] = None,
    accesses_per_ref: int = 3,
    random_per_ref: int = 1,
    num_refs: Optional[int] = None,
    pressure: bool = False,
) -> ReplayResult:
    """The emulator's engine: a bare :class:`WindowScheduler` over a
    :class:`RefreshScheduler`, no bank state machines — exactly the
    optimistic path :meth:`XfmEmulator._simulate` drives."""
    timings = timings if timings is not None else timings_for_device(device)
    scheduler = WindowScheduler(
        refresh=RefreshScheduler(device, timings),
        accesses_per_ref=accesses_per_ref,
        random_per_ref=random_per_ref,
    )
    result = ReplayResult()
    for ref in range(_horizon(batch, num_refs)):
        for op in batch:
            if op.ref == ref:
                scheduler.submit(
                    AccessKind.WRITE if op.is_write else AccessKind.READ,
                    op.row,
                    ref,
                    nbytes=op.nbytes,
                )
        _record(result, scheduler.drain(ref, pressure=pressure), ref)
    return result


def replay_batch_module(
    batch: Sequence[OffloadOp],
    device: DramDeviceConfig = DDR5_32GB,
    timings: Optional[DramTimings] = None,
    accesses_per_ref: int = 3,
    random_per_ref: int = 1,
    num_refs: Optional[int] = None,
    pressure: bool = False,
) -> Tuple[ReplayResult, XfmModule]:
    """The FSM-checked path: every scheduler decision is executed by
    :class:`XfmModule` against real rank/bank state, raising
    :class:`~repro.errors.DramProtocolError` on any illegal access."""
    module = XfmModule(
        device=device,
        timings=timings,
        accesses_per_ref=accesses_per_ref,
        random_per_ref=random_per_ref,
    )
    result = ReplayResult()
    for ref in range(_horizon(batch, num_refs)):
        for op in batch:
            if op.ref == ref:
                if op.is_write:
                    module.submit_write(op.row, nbytes=op.nbytes)
                else:
                    module.submit_read(op.row, nbytes=op.nbytes)
        _record(result, module.step(pressure=pressure), ref)
    return result, module


def _horizon(batch: Sequence[OffloadOp], num_refs: Optional[int]) -> int:
    if num_refs is not None:
        return num_refs
    last = max((op.ref for op in batch), default=0)
    # Drain slack: every fixed row meets its refresh slot within one
    # retention period (8192 REFs) — cap well below that for test speed.
    return last + 64


def differential_offload_check(
    batch: Sequence[OffloadOp],
    device: DramDeviceConfig = DDR5_32GB,
    timings: Optional[DramTimings] = None,
    accesses_per_ref: int = 3,
    random_per_ref: int = 1,
    num_refs: Optional[int] = None,
    pressure: bool = False,
    validate_trace: bool = True,
) -> Tuple[ReplayResult, ReplayResult]:
    """Replay ``batch`` through both paths and require exact agreement.

    Any :class:`~repro.errors.DramProtocolError` from the module path
    propagates (zero tolerance); disagreement in service counts, window
    placement, execution order, or conditional/random split raises
    :class:`OracleMismatch`. With ``validate_trace`` the module's command
    stream is additionally replayed through an independent
    :class:`TraceValidator`.
    """
    optimistic = replay_batch_optimistic(
        batch,
        device=device,
        timings=timings,
        accesses_per_ref=accesses_per_ref,
        random_per_ref=random_per_ref,
        num_refs=num_refs,
        pressure=pressure,
    )
    checked, module = replay_batch_module(
        batch,
        device=device,
        timings=timings,
        accesses_per_ref=accesses_per_ref,
        random_per_ref=random_per_ref,
        num_refs=num_refs,
        pressure=pressure,
    )
    if optimistic.serviced != checked.serviced:
        raise OracleMismatch(
            f"serviced counts diverge: optimistic {optimistic.serviced} "
            f"vs FSM-checked {checked.serviced}"
        )
    if optimistic.order != checked.order:
        first = next(
            i
            for i, (a, b) in enumerate(
                zip(optimistic.order, checked.order)
            )
            if a != b
        )
        raise OracleMismatch(
            f"execution order diverges at position {first}: "
            f"optimistic request {optimistic.order[first]} vs "
            f"FSM-checked {checked.order[first]}"
        )
    if (optimistic.conditional, optimistic.random) != (
        checked.conditional,
        checked.random,
    ):
        raise OracleMismatch(
            "conditional/random split diverges: optimistic "
            f"{optimistic.conditional}/{optimistic.random} vs FSM-checked "
            f"{checked.conditional}/{checked.random}"
        )
    if optimistic.per_window != checked.per_window:
        raise OracleMismatch(
            "per-window service counts diverge between the optimistic "
            "and FSM-checked paths"
        )
    if validate_trace:
        stats = check_command_trace(module)
        if stats.nma_accesses != checked.serviced:
            raise OracleMismatch(
                f"trace replay counted {stats.nma_accesses} NMA accesses "
                f"but the module serviced {checked.serviced}"
            )
    return optimistic, checked


def check_command_trace(module: XfmModule) -> TraceStats:
    """Replay the module's emitted command stream through an independent
    :class:`TraceValidator` (fresh bank FSMs and refresh schedule)."""
    validator = TraceValidator(
        module.device, module.timings, num_ranks=module.rank.index + 1
    )
    return validator.validate(module.commands)
