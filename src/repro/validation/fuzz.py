"""Deterministic stdlib-only fuzz micro-framework.

A tiny property-testing engine with the three features the validation
suite needs and nothing else:

* **single-seed reproduction** — every case is generated from a *case
  seed* derived purely from ``(root seed, run index)``; a failure
  message prints that one integer and
  :meth:`Fuzzer.reproduce`/``fuzz_reproduce`` regenerates the exact
  case from it, independent of run counts, time budgets, or which run
  tripped;
* **shrinking** — on failure the framework greedily minimizes the case
  with type-directed candidates (shorter lists/bytes, smaller ints,
  field-wise tuple shrinks) while the property keeps failing;
* **time budgets** — a wall-clock cap (for CI smoke runs) that stops
  *generating new cases* without affecting determinism of the cases
  that do run.

Usage::

    fuzzer = Fuzzer(seed=1234, runs=200)
    fuzzer.run(gen_page, lambda page: check_roundtrip(codec, page))

On failure a :class:`FuzzFailure` is raised whose message contains the
``case_seed=`` line; reproduce with::

    fuzz_reproduce(gen_page, check, case_seed=<printed value>)
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass, field, fields, is_dataclass, replace
from typing import Any, Callable, Iterable, Iterator, List, Optional

from repro.errors import ReproError

#: Safety valve for the greedy shrink loop.
_MAX_SHRINK_ATTEMPTS = 400


def case_seed(root_seed: int, index: int) -> int:
    """The derived seed for run ``index`` of a fuzzer rooted at
    ``root_seed`` — a pure function, stable across platforms and runs."""
    digest = hashlib.blake2b(
        f"repro.fuzz:{root_seed}:{index}".encode("ascii"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class FuzzFailure(ReproError, AssertionError):
    """A fuzzed property failed; carries everything needed to reproduce."""

    def __init__(
        self,
        message: str,
        *,
        seed: int,
        run: int,
        failing_seed: int,
        case: Any,
        shrunk: Any,
        cause: BaseException,
    ) -> None:
        super().__init__(message)
        self.seed = seed
        self.run = run
        self.case_seed = failing_seed
        self.case = case
        self.shrunk = shrunk
        self.cause = cause


@dataclass
class FuzzReport:
    """Outcome of a completed (non-failing) fuzz run."""

    seed: int
    cases_run: int
    elapsed_s: float
    stopped_by_budget: bool = False


@dataclass
class Fuzzer:
    """Deterministic property fuzzer.

    ``runs`` bounds the number of cases; ``time_budget_s`` (optional)
    additionally stops the loop once the wall clock is spent — whichever
    comes first.
    """

    seed: int
    runs: int = 100
    time_budget_s: Optional[float] = None
    #: Shrink candidates tried per accepted reduction (breadth cap).
    shrink_attempts: int = _MAX_SHRINK_ATTEMPTS

    def run(
        self,
        generate: Callable[[random.Random], Any],
        check: Callable[[Any], None],
        shrink: Optional[Callable[[Any], Iterable[Any]]] = None,
    ) -> FuzzReport:
        """Generate and check up to ``runs`` cases; raise on failure.

        ``generate(rng)`` builds one case from a seeded
        ``random.Random``; ``check(case)`` raises (any exception) to
        signal a failing property; ``shrink(case)`` optionally yields
        reduced candidate cases (defaults to :func:`shrink_candidates`).
        """
        started = time.monotonic()
        cases_run = 0
        stopped = False
        for index in range(self.runs):
            if (
                self.time_budget_s is not None
                and time.monotonic() - started >= self.time_budget_s
            ):
                stopped = True
                break
            derived = case_seed(self.seed, index)
            case = generate(random.Random(derived))
            try:
                check(case)
            except Exception as exc:  # noqa: BLE001 — any failure counts
                self._fail(index, derived, case, exc, check, shrink)
            cases_run += 1
        return FuzzReport(
            seed=self.seed,
            cases_run=cases_run,
            elapsed_s=time.monotonic() - started,
            stopped_by_budget=stopped,
        )

    def _fail(
        self,
        index: int,
        derived: int,
        case: Any,
        exc: BaseException,
        check: Callable[[Any], None],
        shrink: Optional[Callable[[Any], Iterable[Any]]],
    ) -> None:
        shrunk = self._shrink(case, check, shrink or shrink_candidates)
        message = (
            f"fuzz property failed on run {index} (root seed {self.seed})\n"
            f"  case_seed={derived}\n"
            f"  reproduce: fuzz_reproduce(generate, check, "
            f"case_seed={derived})\n"
            f"  failure: {type(exc).__name__}: {exc}\n"
            f"  case: {_render(case)}\n"
            f"  shrunk: {_render(shrunk)}"
        )
        raise FuzzFailure(
            message,
            seed=self.seed,
            run=index,
            failing_seed=derived,
            case=case,
            shrunk=shrunk,
            cause=exc,
        ) from exc

    def _shrink(
        self,
        case: Any,
        check: Callable[[Any], None],
        shrink: Callable[[Any], Iterable[Any]],
    ) -> Any:
        current = case
        attempts = 0
        improved = True
        while improved and attempts < self.shrink_attempts:
            improved = False
            for candidate in shrink(current):
                attempts += 1
                if attempts >= self.shrink_attempts:
                    break
                try:
                    check(candidate)
                except Exception:  # noqa: BLE001 — still failing: accept
                    current = candidate
                    improved = True
                    break
        return current

    def reproduce(
        self,
        generate: Callable[[random.Random], Any],
        check: Callable[[Any], None],
        case_seed: int,
    ) -> Any:
        """Re-run one case from its printed seed; returns the case if the
        property now holds, re-raises the original failure otherwise."""
        case = generate(random.Random(case_seed))
        check(case)
        return case


def fuzz_reproduce(
    generate: Callable[[random.Random], Any],
    check: Callable[[Any], None],
    case_seed: int,
) -> Any:
    """Module-level convenience mirroring :meth:`Fuzzer.reproduce`."""
    case = generate(random.Random(case_seed))
    check(case)
    return case


# -- generic shrinking -------------------------------------------------------


def _render(case: Any, limit: int = 160) -> str:
    text = repr(case)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def shrink_candidates(case: Any) -> Iterator[Any]:
    """Type-directed reduction candidates for ``case``.

    Lists/tuples drop chunks then elements, bytes shorten and zero out,
    ints move toward zero, dataclasses shrink field-wise. Unknown types
    yield nothing (no shrinking, which is always sound).
    """
    if isinstance(case, list):
        yield from _shrink_sequence(case, list)
    elif isinstance(case, tuple):
        yield from _shrink_sequence(list(case), lambda items: tuple(items))
    elif isinstance(case, (bytes, bytearray)):
        yield from _shrink_bytes(bytes(case))
    elif isinstance(case, bool):
        if case:
            yield False
    elif isinstance(case, int):
        yield from _shrink_int(case)
    elif is_dataclass(case) and not isinstance(case, type):
        for f in fields(case):
            value = getattr(case, f.name)
            for reduced in shrink_candidates(value):
                yield replace(case, **{f.name: reduced})


def _shrink_sequence(items: List[Any], rebuild: Callable) -> Iterator[Any]:
    n = len(items)
    if n == 0:
        return
    yield rebuild([])
    if n > 1:
        yield rebuild(items[: n // 2])
        yield rebuild(items[n // 2 :])
    for index in range(min(n, 16)):
        yield rebuild(items[:index] + items[index + 1 :])
    for index in range(min(n, 8)):
        for reduced in shrink_candidates(items[index]):
            yield rebuild(items[:index] + [reduced] + items[index + 1 :])


def _shrink_bytes(data: bytes) -> Iterator[bytes]:
    n = len(data)
    if n == 0:
        return
    yield b""
    if n > 1:
        yield data[: n // 2]
        yield data[n // 2 :]
        yield data[:-1]
    if any(byte != 0 for byte in data):
        yield bytes(n)


def _shrink_int(value: int) -> Iterator[int]:
    if value == 0:
        return
    yield 0
    if abs(value) > 1:
        yield value // 2
    if value < 0:
        yield -value
