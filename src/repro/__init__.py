"""XFM: Accelerated Software-Defined Far Memory — full-system reproduction.

A from-scratch Python implementation of the MICRO 2023 paper "XFM:
Accelerated Software-Defined Far Memory" (Patel, Quinn, Mamandipoor,
Alian): the refresh-cycle-multiplexed near-memory compression architecture,
the zswap/AIFM-style software-defined far memory stack it accelerates, and
every substrate its evaluation depends on (codecs, DRAM timing/refresh,
cache and bandwidth interference, cost/carbon modeling, hardware-overhead
models).

Quickstart::

    from repro import XfmBackend, Page, PAGE_SIZE

    backend = XfmBackend(capacity_bytes=64 * PAGE_SIZE)
    page = Page(vaddr=0, data=b"x" * PAGE_SIZE)
    outcome = backend.xfm_swap_out(page)       # offloaded to the NMA
    data = backend.xfm_swap_in(page)           # CPU_Fallback by default

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure and table.
"""

from repro.compression import (
    Codec,
    DeflateCodec,
    LzFastCodec,
    ZstdLikeCodec,
    available_codecs,
    get_codec,
)
from repro.core import (
    EmulatorConfig,
    EmulatorReport,
    MultiChannelLayout,
    NearMemoryAccelerator,
    NmaConfig,
    XfmBackend,
    XfmDriver,
    XfmEmulator,
)
from repro.costmodel import CostParams, MemoryKind, fig3_series
from repro.dfm import DfmBackend
from repro.dram import (
    AddressMapping,
    DramDeviceConfig,
    DramTimings,
    RefreshScheduler,
)
from repro.core.system import MultiChannelXfmBackend
from repro.interference import CorunConfig, SfmMode, simulate_corun
from repro.sfm import PAGE_SIZE, Page, SfmBackend
from repro.tiering import FarMemoryTier, SwapOutcome, TierPipeline
from repro.workloads import CORPUS_NAMES, corpus_pages, generate_corpus

__version__ = "1.0.0"

__all__ = [
    "AddressMapping",
    "CORPUS_NAMES",
    "Codec",
    "CorunConfig",
    "CostParams",
    "DeflateCodec",
    "DfmBackend",
    "DramDeviceConfig",
    "DramTimings",
    "EmulatorConfig",
    "EmulatorReport",
    "FarMemoryTier",
    "LzFastCodec",
    "MemoryKind",
    "MultiChannelLayout",
    "MultiChannelXfmBackend",
    "NearMemoryAccelerator",
    "NmaConfig",
    "PAGE_SIZE",
    "Page",
    "RefreshScheduler",
    "SfmBackend",
    "SfmMode",
    "SwapOutcome",
    "TierPipeline",
    "XfmBackend",
    "XfmDriver",
    "XfmEmulator",
    "ZstdLikeCodec",
    "available_codecs",
    "corpus_pages",
    "fig3_series",
    "generate_corpus",
    "get_codec",
    "simulate_corun",
    "__version__",
]
