"""Far-memory prefetchers.

§3.2's closing argument: once (de)compression stops hogging DDR
bandwidth, the control plane can afford aggressive prefetching ("early
decompression due to predictable access pattern"), and §6 routes exactly
those promotions through ``xfm_swap_in(do_offload=True)``. These
predictors supply the predictions:

* :class:`SequentialPrefetcher` — next-N pages after each access; right
  for scan-dominated workloads.
* :class:`StridePrefetcher` — classic confidence-counted stride detection;
  degenerates to sequential at stride 1 and stays quiet on random access.

Both report issued/useful statistics so callers can measure accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.errors import ConfigError
from repro.sfm.page import PAGE_SIZE


@dataclass
class PrefetchStats:
    issued: int = 0
    useful: int = 0

    @property
    def accuracy(self) -> float:
        return self.useful / self.issued if self.issued else 0.0


class Prefetcher:
    """Base: observe accesses, emit predicted vaddrs."""

    def __init__(self) -> None:
        self.stats = PrefetchStats()
        self._outstanding: Set[int] = set()

    def observe(self, vaddr: int) -> List[int]:
        """Feed one access; returns vaddrs predicted to be touched soon."""
        if vaddr in self._outstanding:
            self._outstanding.discard(vaddr)
            self.stats.useful += 1
        predictions = self._predict(vaddr)
        for prediction in predictions:
            if prediction not in self._outstanding:
                self._outstanding.add(prediction)
                self.stats.issued += 1
        return predictions

    def _predict(self, vaddr: int) -> List[int]:
        raise NotImplementedError


class SequentialPrefetcher(Prefetcher):
    """Predict the next ``degree`` pages after every access."""

    def __init__(self, degree: int = 4) -> None:
        if degree < 1:
            raise ConfigError("degree must be >= 1")
        super().__init__()
        self.degree = degree

    def _predict(self, vaddr: int) -> List[int]:
        return [vaddr + i * PAGE_SIZE for i in range(1, self.degree + 1)]


class StridePrefetcher(Prefetcher):
    """Single-stream stride detector with a confidence counter.

    Issues predictions only after the same stride repeats
    ``confidence_threshold`` times, so random access patterns generate no
    useless promotions (which would waste NMA access budget).
    """

    def __init__(
        self, degree: int = 4, confidence_threshold: int = 2
    ) -> None:
        if degree < 1 or confidence_threshold < 1:
            raise ConfigError("degree and confidence must be >= 1")
        super().__init__()
        self.degree = degree
        self.confidence_threshold = confidence_threshold
        self._last_vaddr: Optional[int] = None
        self._stride: Optional[int] = None
        self._confidence = 0

    def _predict(self, vaddr: int) -> List[int]:
        predictions: List[int] = []
        if self._last_vaddr is not None:
            stride = vaddr - self._last_vaddr
            if stride != 0 and stride == self._stride:
                self._confidence += 1
            else:
                self._stride = stride if stride else self._stride
                self._confidence = 1 if stride else 0
            if (
                self._stride
                and self._confidence >= self.confidence_threshold
            ):
                predictions = [
                    vaddr + i * self._stride
                    for i in range(1, self.degree + 1)
                    if vaddr + i * self._stride >= 0
                ]
        self._last_vaddr = vaddr
        return predictions

    @property
    def current_stride(self) -> Optional[int]:
        return self._stride
