"""AIFM-like application-integrated far-memory runtime.

The paper integrates its SFM/XFM backends into AIFM (Ruan et al., OSDI'20)
and drives them with an application allocating page-granularity objects
(§7). :class:`FarMemoryRuntime` reproduces that integration seam: the
application reads/writes pages through the runtime; a bounded *local*
capacity forces cold pages into the far-memory backend via the SFM
controller; accesses to far pages trigger swap-ins (demand faults on the
CPU path, or ``do_offload`` prefetches when a predictor announces them);
every swap is recorded into a :class:`~repro.workloads.traces.SwapTrace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigError, SfmError
from repro.sfm.controller import ColdScanController
from repro.sfm.page import PAGE_SIZE, Page
from repro.tiering.protocol import FarMemoryTier
from repro.workloads.traces import SWAP_IN, SWAP_OUT, SwapTrace


@dataclass
class RuntimeStats:
    reads: int = 0
    writes: int = 0
    demand_faults: int = 0
    prefetch_promotions: int = 0
    evictions: int = 0

    @property
    def fault_rate(self) -> float:
        accesses = self.reads + self.writes
        return self.demand_faults / accesses if accesses else 0.0


class FarMemoryRuntime:
    """Page-granular far-memory runtime over a swappable backend."""

    def __init__(
        self,
        backend: FarMemoryTier,
        local_capacity_pages: int,
        controller: Optional[ColdScanController] = None,
        prefetcher=None,
    ) -> None:
        if local_capacity_pages < 1:
            raise ConfigError("local capacity must be >= 1 page")
        self.backend = backend
        self.local_capacity_pages = local_capacity_pages
        self.controller = (
            controller
            if controller is not None
            else ColdScanController(cold_threshold_s=30.0, scan_period_s=5.0)
        )
        #: Optional :class:`~repro.workloads.prefetch.Prefetcher` fed on
        #: every read; its predictions are promoted via the offload path.
        self.prefetcher = prefetcher
        self.pages: Dict[int, Page] = {}
        self.trace = SwapTrace()
        self.stats = RuntimeStats()
        self._next_vaddr = 0

    # -- allocation --------------------------------------------------------

    def allocate(self, initial_data: Sequence[bytes], now_s: float = 0.0) -> List[int]:
        """Allocate one page per buffer; returns their vaddrs."""
        vaddrs = []
        for data in initial_data:
            if len(data) != PAGE_SIZE:
                raise ConfigError(
                    f"initial data must be {PAGE_SIZE} bytes, got {len(data)}"
                )
            vaddr = self._next_vaddr
            self._next_vaddr += PAGE_SIZE
            self.pages[vaddr] = Page(
                vaddr=vaddr, data=bytes(data), last_access_s=now_s
            )
            vaddrs.append(vaddr)
        return vaddrs

    def resident_pages(self) -> int:
        return sum(1 for page in self.pages.values() if not page.swapped)

    # -- access path ----------------------------------------------------------

    def _page(self, vaddr: int) -> Page:
        try:
            return self.pages[vaddr]
        except KeyError:
            raise SfmError(f"vaddr 0x{vaddr:x} was never allocated") from None

    def read(self, vaddr: int, now_s: float) -> bytes:
        """Application load; faults the page in if it is in far memory.

        When a prefetcher is attached, each read trains it and its
        predictions are promoted ahead of time through the offload path.
        """
        page = self._page(vaddr)
        self._ensure_resident(page, now_s, prefetch=False)
        page.touch(now_s)
        self.stats.reads += 1
        if self.prefetcher is not None:
            predicted = self.prefetcher.observe(vaddr)
            if predicted:
                self.prefetch(predicted, now_s)
        assert page.data is not None
        return page.data

    def write(self, vaddr: int, data: bytes, now_s: float) -> None:
        """Application store."""
        if len(data) != PAGE_SIZE:
            raise ConfigError(f"writes are page-granular ({PAGE_SIZE} bytes)")
        page = self._page(vaddr)
        self._ensure_resident(page, now_s, prefetch=False)
        page.touch(now_s)
        page.data = bytes(data)
        self.stats.writes += 1

    def prefetch(self, vaddrs: Sequence[int], now_s: float) -> int:
        """Promote predicted-soon pages ahead of access. Uses the XFM
        offload path (``do_offload=True``) when the backend supports it —
        the §6 policy: only prefetches ride the NMA's latency."""
        promoted = 0
        for vaddr in vaddrs:
            page = self.pages.get(vaddr)
            if page is None or not page.swapped:
                continue
            self._ensure_resident(page, now_s, prefetch=True)
            promoted += 1
        return promoted

    def _ensure_resident(self, page: Page, now_s: float, prefetch: bool) -> None:
        if not page.swapped:
            return
        if prefetch:
            self._promote_offloaded(page)
            self.stats.prefetch_promotions += 1
        else:
            self.backend.swap_in(page)
            self.stats.demand_faults += 1
        self.trace.record(now_s, SWAP_IN, page.vaddr)

    def _promote_offloaded(self, page: Page) -> None:
        """Prefetch promotion through the tier's promotion path — the
        accelerator offload on XFM tiers, a plain swap-in elsewhere."""
        self.backend.promote(page)

    # -- reclaim ------------------------------------------------------------------

    def maintain(self, now_s: float) -> int:
        """Run the control plane: if local memory exceeds its budget, swap
        the coldest candidates out. Returns pages evicted."""
        over = self.resident_pages() - self.local_capacity_pages
        if over <= 0 or not self.controller.due(now_s):
            return 0
        evicted = 0
        for page in self.controller.scan(self.pages.values(), now_s):
            if evicted >= over:
                break
            outcome = self.backend.swap_out(page)
            if outcome.accepted:
                self.trace.record(
                    now_s, SWAP_OUT, page.vaddr, outcome.compressed_len
                )
                evicted += 1
        self.stats.evictions += evicted
        return evicted
