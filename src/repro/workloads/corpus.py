"""Deterministic synthetic compression corpora.

The paper's Fig. 8 compresses "page-divided corpuses" (Silesia/Calgary-style
files plus memory snapshots) at channel-interleave granularity. Those files
are not redistributable here, so this module generates sixteen synthetic
corpora with controlled redundancy structure spanning the same spectrum:
natural-ish text, source code, logs, serialized records, numeric tables,
binary structures, pointer-rich heaps, and incompressible data.

What matters for the experiment is *how the match structure degrades when a
page is split across DIMMs*, which these generators exercise because their
redundancy comes from genuine repeated substrings at realistic distances,
not from a compressibility dial.

All generators are pure functions of ``(size, seed)``.
"""

from __future__ import annotations

import random
import string
import struct
import zlib
from typing import Callable, Dict, List

from repro.errors import ConfigError

PAGE_SIZE = 4096

_WORDS = (
    "the of and a to in is was he for it with as his on be at by had not "
    "are but from or have an they which one you were her all she there "
    "would their we him been has when who will more no if out so said what "
    "up its about into than them can only other new some could time these "
    "two may then do first any my now such like our over man me even most "
    "made after also did many before must through years where much your "
    "way well down should because each just those people how too little "
    "state good very make world still own see men work long get here "
    "between both life being under never day same another know while last "
    "might us great old year off come since against go came right used "
    "take three"
).split()

_IDENTIFIERS = (
    "buffer index offset length count entry node page frame slot cache "
    "queue table request response handler worker stream chunk region pool "
    "header footer record cursor status config context result value key"
).split()


def _text_english(size: int, rng: random.Random) -> bytes:
    """Natural-language-like text via a word-level bigram walk."""
    out: List[str] = []
    total = 0
    sentence_len = 0
    while total < size:
        word = rng.choice(_WORDS)
        if sentence_len == 0:
            word = word.capitalize()
        out.append(word)
        total += len(word) + 1
        sentence_len += 1
        if sentence_len >= rng.randint(6, 18):
            out[-1] += "."
            sentence_len = 0
    return " ".join(out).encode("ascii")[:size]


def _source_code(size: int, rng: random.Random) -> bytes:
    """C-like source: heavy identifier reuse, indentation, punctuation."""
    lines: List[str] = []
    total = 0
    locals_pool = rng.sample(_IDENTIFIERS, 12)
    while total < size:
        kind = rng.random()
        a, b, c = (rng.choice(locals_pool) for _ in range(3))
        if kind < 0.25:
            line = f"    int {a}_{b} = {a}->{c} + {rng.randint(0, 255)};"
        elif kind < 0.5:
            line = f"    if ({a}->{b} != NULL && {a}->{c} > 0) {{"
        elif kind < 0.7:
            line = f"        {a}_{b}({c}, sizeof(struct {a}_{c}));"
        elif kind < 0.85:
            line = f"    return {a}->{b}[{c}_index];"
        else:
            line = f"}}  /* end of {a}_{b} */"
        lines.append(line)
        total += len(line) + 1
    return "\n".join(lines).encode("ascii")[:size]


def _server_log(size: int, rng: random.Random) -> bytes:
    """Timestamped log lines with a small message vocabulary."""
    messages = [
        "GET /api/v1/users/%d HTTP/1.1 200 %d",
        "POST /api/v1/orders HTTP/1.1 201 %d id=%d",
        "connection from 10.0.%d.%d closed",
        "cache miss for key user:%d:profile latency=%dus",
        "swap-out page=%d pool=zsmalloc bytes=%d",
        "worker %d heartbeat ok rtt=%dms",
    ]
    lines: List[str] = []
    total = 0
    ts = 1_690_000_000
    while total < size:
        ts += rng.randint(0, 3)
        msg = rng.choice(messages) % (rng.randint(1, 9999), rng.randint(1, 9999))
        line = f"2023-07-22T10:{(ts // 60) % 60:02d}:{ts % 60:02d}Z srv{rng.randint(1, 8)} INFO {msg}"
        lines.append(line)
        total += len(line) + 1
    return "\n".join(lines).encode("ascii")[:size]


def _json_records(size: int, rng: random.Random) -> bytes:
    """Serialized JSON documents with a fixed schema (key-name redundancy)."""
    docs: List[str] = []
    total = 0
    cities = ["lawrence", "toronto", "boston", "seattle", "austin", "denver"]
    while total < size:
        doc = (
            '{"user_id":%d,"name":"user_%04d","city":"%s",'
            '"active":%s,"score":%0.2f,"tags":["t%d","t%d"]}'
            % (
                rng.randint(1, 100000),
                rng.randint(0, 9999),
                rng.choice(cities),
                rng.choice(["true", "false"]),
                rng.random() * 100,
                rng.randint(0, 30),
                rng.randint(0, 30),
            )
        )
        docs.append(doc)
        total += len(doc) + 1
    return "\n".join(docs).encode("utf-8")[:size]


def _csv_table(size: int, rng: random.Random) -> bytes:
    """Comma-separated numeric table with correlated columns."""
    rows = ["timestamp,sensor,temp_c,humidity,pressure,status"]
    total = len(rows[0]) + 1
    base_t = 21.0
    while total < size:
        base_t += rng.uniform(-0.2, 0.2)
        row = "%d,s%02d,%.2f,%.1f,%.1f,%s" % (
            1_690_000_000 + len(rows),
            rng.randint(0, 15),
            base_t,
            45 + rng.uniform(-2, 2),
            1013 + rng.uniform(-1, 1),
            rng.choice(["ok", "ok", "ok", "warn"]),
        )
        rows.append(row)
        total += len(row) + 1
    return "\n".join(rows).encode("ascii")[:size]


def _html_markup(size: int, rng: random.Random) -> bytes:
    """HTML with nested, highly repetitive tag structure."""
    out: List[str] = ["<html><body>"]
    total = len(out[0])
    while total < size:
        cls = rng.choice(["row", "cell", "item card", "nav-link"])
        word = rng.choice(_WORDS)
        frag = f'<div class="{cls}"><span>{word} {rng.randint(0, 999)}</span></div>'
        out.append(frag)
        total += len(frag)
    out.append("</body></html>")
    return "".join(out).encode("ascii")[:size]


def _binary_structs(size: int, rng: random.Random) -> bytes:
    """Packed C-struct records: fixed layout, small varying fields."""
    out = bytearray()
    record_type = rng.randint(1, 7)
    while len(out) < size:
        out += struct.pack(
            "<IHHQdII",
            0xDEADBEEF,
            record_type,
            rng.randint(0, 15),
            len(out),
            rng.random(),
            rng.randint(0, 1023),
            0,
        )
    return bytes(out[:size])


def _heap_pointers(size: int, rng: random.Random) -> bytes:
    """64-bit pointer-rich heap page: shared high bytes, varying low bits."""
    out = bytearray()
    heap_base = 0x7F3A_0000_0000 + rng.randint(0, 0xFFFF) * 0x10000
    while len(out) < size:
        if rng.random() < 0.7:
            ptr = heap_base + rng.randint(0, 1 << 20) * 16
            out += struct.pack("<Q", ptr)
        else:
            out += struct.pack("<Q", rng.randint(0, 255))
    return bytes(out[:size])


def _integer_array(size: int, rng: random.Random) -> bytes:
    """Monotone int64 array (timestamps/IDs): small deltas, shared bytes."""
    out = bytearray()
    value = rng.randint(1 << 40, 1 << 41)
    while len(out) < size:
        value += rng.randint(1, 64)
        out += struct.pack("<q", value)
    return bytes(out[:size])


def _float_matrix(size: int, rng: random.Random) -> bytes:
    """Float64 matrix of smooth values: repetitive exponent bytes."""
    out = bytearray()
    value = rng.uniform(0.9, 1.1)
    while len(out) < size:
        value += rng.uniform(-1e-3, 1e-3)
        out += struct.pack("<d", value)
    return bytes(out[:size])


def _db_btree_page(size: int, rng: random.Random) -> bytes:
    """Database-style pages: header, sorted key prefixes, slot array."""
    out = bytearray()
    while len(out) < size:
        page = bytearray(struct.pack("<IHHII", 0xB7EE, 64, 0, len(out), 0))
        key_base = rng.randint(0, 1 << 20)
        for i in range(64):
            key = f"key{key_base + i:012d}"
            page += struct.pack("<H", len(key)) + key.encode("ascii")
            page += struct.pack("<I", rng.randint(0, 1 << 30))
        out += page
    return bytes(out[:size])


def _zero_pages(size: int, rng: random.Random) -> bytes:
    """All-zero data: freed/untouched pages, the best case for SFM."""
    return bytes(size)


def _sparse_pages(size: int, rng: random.Random) -> bytes:
    """Mostly-zero pages with scattered initialized islands."""
    out = bytearray(size)
    num_islands = max(1, size // 512)
    for _ in range(num_islands):
        start = rng.randrange(0, max(1, size - 64))
        for i in range(rng.randint(8, 64)):
            if start + i < size:
                out[start + i] = rng.randint(1, 255)
    return bytes(out)


def _random_bytes(size: int, rng: random.Random) -> bytes:
    """Uniform random data: the incompressible floor."""
    return bytes(rng.getrandbits(8) for _ in range(size))


def _base64_blob(size: int, rng: random.Random) -> bytes:
    """Base64-looking data: high-entropy but restricted alphabet."""
    alphabet = string.ascii_letters + string.digits + "+/"
    return "".join(rng.choice(alphabet) for _ in range(size)).encode("ascii")


def _xml_config(size: int, rng: random.Random) -> bytes:
    """XML configuration: deeply repetitive element names and values."""
    out: List[str] = ["<?xml version=\"1.0\"?>\n<configuration>\n"]
    total = len(out[0])
    while total < size:
        key = rng.choice(_IDENTIFIERS)
        frag = (
            f'  <property><name>sfm.{key}.size</name>'
            f"<value>{rng.randint(0, 4096)}</value></property>\n"
        )
        out.append(frag)
        total += len(frag)
    out.append("</configuration>\n")
    return "".join(out).encode("ascii")[:size]


def _mixed_office(size: int, rng: random.Random) -> bytes:
    """Alternating text and binary segments (document-format-like)."""
    out = bytearray()
    while len(out) < size:
        if rng.random() < 0.6:
            out += _text_english(rng.randint(200, 800), rng)
        else:
            out += _binary_structs(rng.randint(100, 400), rng)
    return bytes(out[:size])


_GENERATORS: Dict[str, Callable[[int, random.Random], bytes]] = {
    "text-english": _text_english,
    "source-code": _source_code,
    "server-log": _server_log,
    "json-records": _json_records,
    "csv-table": _csv_table,
    "html-markup": _html_markup,
    "binary-structs": _binary_structs,
    "heap-pointers": _heap_pointers,
    "integer-array": _integer_array,
    "float-matrix": _float_matrix,
    "db-btree": _db_btree_page,
    "zero-pages": _zero_pages,
    "sparse-pages": _sparse_pages,
    "random-bytes": _random_bytes,
    "base64-blob": _base64_blob,
    "xml-config": _xml_config,
}

#: The sixteen corpora, matching the paper's "16 corpus files" (Fig. 8, §8).
CORPUS_NAMES = sorted(_GENERATORS)

_DESCRIPTIONS = {
    "text-english": "natural-language-like text (bigram word walk)",
    "source-code": "C-like source with heavy identifier reuse",
    "server-log": "timestamped server log lines",
    "json-records": "fixed-schema JSON documents",
    "csv-table": "numeric CSV with correlated columns",
    "html-markup": "repetitive nested HTML",
    "binary-structs": "packed fixed-layout C structs",
    "heap-pointers": "pointer-rich 64-bit heap pages",
    "integer-array": "monotone int64 arrays (small deltas)",
    "float-matrix": "smooth float64 matrices",
    "db-btree": "database B-tree pages with sorted keys",
    "zero-pages": "all-zero pages",
    "sparse-pages": "mostly-zero pages with initialized islands",
    "random-bytes": "uniform random (incompressible floor)",
    "base64-blob": "base64-alphabet high-entropy data",
    "xml-config": "repetitive XML configuration",
}


def describe_corpus(name: str) -> str:
    """One-line description of a corpus category."""
    try:
        return _DESCRIPTIONS[name]
    except KeyError:
        raise ConfigError(f"unknown corpus {name!r}") from None


def generate_corpus(name: str, size: int, seed: int = 0) -> bytes:
    """Generate ``size`` bytes of the named corpus, deterministically."""
    if size < 0:
        raise ConfigError(f"size must be non-negative, got {size}")
    try:
        generator = _GENERATORS[name]
    except KeyError:
        known = ", ".join(CORPUS_NAMES)
        raise ConfigError(f"unknown corpus {name!r}; available: {known}") from None
    # zlib.crc32 rather than hash(): stable across interpreter runs.
    rng = random.Random(zlib.crc32(name.encode("utf-8")) ^ seed)
    data = generator(size, rng)
    # Text generators built from joined lines can land one byte short;
    # pad deterministically with a self-repeat so sizes are exact.
    while len(data) < size:
        data = (data + (data or b"\x00"))[:size]
    return data


def corpus_pages(
    name: str, num_pages: int, page_size: int = PAGE_SIZE, seed: int = 0
) -> List[bytes]:
    """Generate ``num_pages`` pages of ``page_size`` bytes from a corpus."""
    data = generate_corpus(name, num_pages * page_size, seed)
    return [
        data[i * page_size : (i + 1) * page_size] for i in range(num_pages)
    ]


def tunable_page(
    target_ratio: float, page_size: int = PAGE_SIZE, seed: int = 0
) -> bytes:
    """A page whose deflate compression ratio lands near ``target_ratio``.

    Useful for sweeping compressibility as an independent variable (the
    corpora above have fixed, category-determined ratios). Built by
    interleaving incompressible random runs with a repeated dictionary
    chunk: a fraction ``p`` of repeated content gives a ratio of roughly
    ``1 / (1 - p)`` once the repeats collapse to near-zero cost, so ``p``
    is solved from the target. Exactness is not promised — entropy-coding
    overheads shift the result a few percent — which is why the function
    is used for sweeps, not calibration.
    """
    if target_ratio < 1.0:
        raise ConfigError("target_ratio must be >= 1")
    rng = random.Random(0x7AB1E ^ seed)
    if target_ratio <= 1.001:
        return bytes(rng.getrandbits(8) for _ in range(page_size))
    repeated_fraction = min(0.995, 1.0 - 1.0 / target_ratio)
    dictionary = bytes(rng.getrandbits(8) for _ in range(64))
    out = bytearray()
    block = 64
    while len(out) < page_size:
        if rng.random() < repeated_fraction:
            out += dictionary
        else:
            out += bytes(rng.getrandbits(8) for _ in range(block))
    return bytes(out[:page_size])
