"""Swap-in/out trace format.

The paper's emulator is driven by "swap-in/out traces generated using the
AIFM userspace far memory framework when running a synthetic web front-end
application" (§7). :class:`SwapTrace` is that artifact: a time-ordered list
of page-granular swap events, serializable to JSONL, with helpers to derive
the quantities the models need (promotion rate, arrival rates per tREFI).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Union

from repro._units import SECONDS_PER_MINUTE
from repro.errors import ConfigError
from repro.sfm.page import PAGE_SIZE

SWAP_OUT = "out"
SWAP_IN = "in"


@dataclass(frozen=True)
class SwapEvent:
    """One page-granular swap event."""

    time_s: float
    kind: str
    vaddr: int
    compressed_len: int = 0

    def __post_init__(self) -> None:
        if self.kind not in (SWAP_OUT, SWAP_IN):
            raise ConfigError(f"kind must be in/out, got {self.kind!r}")
        if self.time_s < 0:
            raise ConfigError("event time must be non-negative")


@dataclass
class SwapTrace:
    """A time-ordered swap event stream."""

    events: List[SwapEvent] = field(default_factory=list)

    def record(
        self, time_s: float, kind: str, vaddr: int, compressed_len: int = 0
    ) -> None:
        self.events.append(
            SwapEvent(
                time_s=time_s,
                kind=kind,
                vaddr=vaddr,
                compressed_len=compressed_len,
            )
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[SwapEvent]:
        return iter(self.events)

    @property
    def duration_s(self) -> float:
        if not self.events:
            return 0.0
        return self.events[-1].time_s - self.events[0].time_s

    def count(self, kind: str) -> int:
        return sum(1 for event in self.events if event.kind == kind)

    def swap_in_bytes_per_min(self) -> float:
        """Promoted bytes per minute — the numerator of the promotion rate."""
        duration = self.duration_s
        if duration <= 0:
            return 0.0
        return (
            self.count(SWAP_IN) * PAGE_SIZE * SECONDS_PER_MINUTE / duration
        )

    def promotion_rate(self, far_bytes: float) -> float:
        """Observed promotion rate against a far-memory capacity (§2.1)."""
        if far_bytes <= 0:
            return 0.0
        return self.swap_in_bytes_per_min() / far_bytes

    def mean_compression_ratio(self) -> float:
        outs = [
            event
            for event in self.events
            if event.kind == SWAP_OUT and event.compressed_len > 0
        ]
        if not outs:
            return 0.0
        return sum(PAGE_SIZE for _ in outs) / sum(
            event.compressed_len for event in outs
        )

    # -- interop -------------------------------------------------------------

    @classmethod
    def from_scenario(cls, scenario) -> "SwapTrace":
        """Project a :class:`repro.scenarios.format.ScenarioTrace` onto
        this legacy §7 artifact: stores become swap-outs, loads and
        promotes become swap-ins (both move a page toward the CPU),
        invalidates carry no bandwidth and are dropped. Simulated
        nanoseconds become seconds."""
        trace = cls()
        for event in scenario:
            if event.op == "store":
                kind = SWAP_OUT
            elif event.op in ("load", "promote"):
                kind = SWAP_IN
            else:
                continue
            trace.record(
                event.t_ns * 1e-9, kind, event.vaddr, event.compressed_len
            )
        return trace

    # -- persistence ---------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as JSON lines."""
        with open(path, "w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(
                    json.dumps(
                        {
                            "t": event.time_s,
                            "k": event.kind,
                            "v": event.vaddr,
                            "c": event.compressed_len,
                        }
                    )
                    + "\n"
                )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SwapTrace":
        trace = cls()
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                raw = json.loads(line)
                trace.record(raw["t"], raw["k"], raw["v"], raw.get("c", 0))
        return trace
