"""Real-page corpora for benchmarks: the ingested alternative to the
synthetic generators in :mod:`repro.workloads.corpus`.

The synthetic corpora are deterministic by construction and anchor the
golden-snapshot figures; this module supplies the *real* byte classes the
paper ultimately cares about, sourced from an ingested file tree. Pages
come from, in priority order:

1. ``$REPRO_CORPUS_DIR`` — a directory produced by ``python -m repro
   ingest`` (digest-verified manifest + page files);
2. this repository's own source tree, ingested in memory on first use
   (the first corpus the static-table training targets).

Benchmarks that consume these pages assert *structural* properties
(orderings, monotone degradation) rather than exact values: unlike the
synthetics, real trees change as the repository grows.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import ConfigError, ManifestError
from repro.scenarios.ingest import (
    MANIFEST_NAME,
    CorpusManifest,
    IngestConfig,
    ingest_pages,
)

#: Environment override: a pre-ingested corpus directory.
CORPUS_DIR_ENV = "REPRO_CORPUS_DIR"

#: root-path-str -> domain -> pages (in-memory ingestions are cached; a
#: benchmark sweep should not re-walk the tree per codec).
_TREE_CACHE: Dict[str, Dict[str, List[bytes]]] = {}


def repo_root() -> Optional[Path]:
    """This repository's checkout root, or ``None`` when the package is
    running from an installed location with no tree around it."""
    candidate = Path(__file__).resolve().parents[3]
    return candidate if (candidate / "src").is_dir() else None


def _load_domains(manifest_dir: Optional[Path]) -> Dict[str, List[bytes]]:
    env_dir = os.environ.get(CORPUS_DIR_ENV)
    if manifest_dir is None and env_dir:
        manifest_dir = Path(env_dir)
    if manifest_dir is not None:
        if not (manifest_dir / MANIFEST_NAME).exists():
            raise ManifestError(
                f"{manifest_dir} has no {MANIFEST_NAME}; run "
                "`python -m repro ingest <tree> --out` first"
            )
        manifest = CorpusManifest.load(manifest_dir)
        return {
            domain: manifest.load_pages(domain)
            for domain in sorted(manifest.domains)
        }
    root = repo_root()
    if root is None:
        raise ConfigError(
            "no ingested corpus available: set $REPRO_CORPUS_DIR or run "
            "from a repository checkout"
        )
    key = str(root)
    if key not in _TREE_CACHE:
        _TREE_CACHE[key] = ingest_pages(root, IngestConfig())
    return _TREE_CACHE[key]


def ingested_domains(manifest_dir: Optional[Path] = None) -> List[str]:
    """Domains with at least one page in the active corpus source."""
    return sorted(
        domain
        for domain, pages in _load_domains(manifest_dir).items()
        if pages
    )


def ingested_corpus_pages(
    domain: str,
    num_pages: Optional[int] = None,
    manifest_dir: Optional[Path] = None,
) -> List[bytes]:
    """Pages of one ingested domain, optionally truncated to
    ``num_pages`` (evenly strided so a small sample still spans the
    corpus rather than its first file)."""
    domains = _load_domains(manifest_dir)
    pages = domains.get(domain)
    if not pages:
        raise ConfigError(
            f"ingested corpus has no domain {domain!r}; "
            f"have {sorted(d for d, p in domains.items() if p)}"
        )
    if num_pages is None or num_pages >= len(pages):
        return list(pages)
    if num_pages <= 0:
        raise ConfigError("num_pages must be positive")
    step = len(pages) / num_pages
    return [pages[int(i * step)] for i in range(num_pages)]
