"""lzbench-style codec benchmark harness.

The paper's artifact evaluates compression with lzbench over public
corpora (Appendix A). This module is the equivalent harness over this
repo's codecs and synthetic corpora: for each (codec, corpus) pair it
measures compression ratio and wall-clock throughput, verifying every
round trip. Throughputs are pure-Python and meaningful *relatively*
(codec vs codec), not against C implementations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.compression.base import Codec, get_codec
from repro.errors import ConfigError, CorruptStreamError
from repro.workloads.corpus import CORPUS_NAMES, corpus_pages

DEFAULT_CODECS = ("deflate", "lzfast", "zstd-like")


@dataclass(frozen=True)
class LzBenchRow:
    """One (codec, corpus) measurement."""

    codec: str
    corpus: str
    input_bytes: int
    compressed_bytes: int
    compress_s: float
    decompress_s: float

    @property
    def ratio(self) -> float:
        return self.input_bytes / self.compressed_bytes

    @property
    def compress_mbps(self) -> float:
        return self.input_bytes / max(self.compress_s, 1e-12) / 1e6

    @property
    def decompress_mbps(self) -> float:
        return self.input_bytes / max(self.decompress_s, 1e-12) / 1e6


def run_lzbench(
    corpora: Optional[Sequence[str]] = None,
    codecs: Optional[Sequence[str]] = None,
    pages_per_corpus: int = 4,
    seed: int = 0,
) -> List[LzBenchRow]:
    """Measure every codec on every corpus; round trips are verified."""
    if pages_per_corpus < 1:
        raise ConfigError("pages_per_corpus must be >= 1")
    corpus_list = list(corpora) if corpora is not None else list(CORPUS_NAMES)
    codec_list: List[Codec] = [
        get_codec(name) for name in (codecs or DEFAULT_CODECS)
    ]
    rows: List[LzBenchRow] = []
    for corpus in corpus_list:
        pages = corpus_pages(corpus, pages_per_corpus, seed=seed)
        total = sum(len(page) for page in pages)
        for codec in codec_list:
            start = time.perf_counter()
            blobs = [codec.compress(page) for page in pages]
            compress_s = time.perf_counter() - start
            start = time.perf_counter()
            for blob, page in zip(blobs, pages):
                if codec.decompress(blob) != page:
                    raise CorruptStreamError(
                        f"{codec.name} failed to round-trip {corpus}"
                    )
            decompress_s = time.perf_counter() - start
            rows.append(
                LzBenchRow(
                    codec=codec.name,
                    corpus=corpus,
                    input_bytes=total,
                    compressed_bytes=sum(len(blob) for blob in blobs),
                    compress_s=compress_s,
                    decompress_s=decompress_s,
                )
            )
    return rows


def format_lzbench(rows: Sequence[LzBenchRow]) -> str:
    """Render measurements lzbench-style."""
    from repro.analysis.report import format_table

    return format_table(
        ["codec", "corpus", "ratio", "comp MB/s", "decomp MB/s"],
        [
            [
                row.codec,
                row.corpus,
                round(row.ratio, 2),
                round(row.compress_mbps, 2),
                round(row.decompress_mbps, 2),
            ]
            for row in rows
        ],
        title="lzbench-style codec comparison (pure-Python throughputs)",
    )


def summarize_by_codec(rows: Sequence[LzBenchRow]) -> dict:
    """Geometric-mean ratio and mean throughput per codec."""
    import math

    out = {}
    for codec in {row.codec for row in rows}:
        mine = [row for row in rows if row.codec == codec]
        out[codec] = {
            "geomean_ratio": math.exp(
                sum(math.log(row.ratio) for row in mine) / len(mine)
            ),
            "mean_compress_mbps": sum(row.compress_mbps for row in mine)
            / len(mine),
            "mean_decompress_mbps": sum(
                row.decompress_mbps for row in mine
            )
            / len(mine),
        }
    return out
