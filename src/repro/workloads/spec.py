"""SPEC-CPU-2017-like workload profiles.

The paper co-runs "LLC and memory sensitive SPEC workloads" with SFM
antagonists (§3.2, §8, Fig. 11). SPEC binaries cannot ship here, so each
benchmark is represented by the tuple of characteristics the interference
model consumes: baseline CPI, LLC misses per kilo-instruction when the
working set fits, LLC footprint, memory bandwidth demand, and memory-level
parallelism. Values are modeled on published SPEC 2017 characterization
studies (order-of-magnitude fidelity; Fig. 11 reports *relative*
degradations, which is what the model reproduces).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import ConfigError


@dataclass(frozen=True)
class SpecProfile:
    """Modeled memory behaviour of one benchmark."""

    name: str
    #: Cycles per instruction with a private, fitting LLC.
    base_cpi: float
    #: LLC misses per kilo-instruction when its footprint fits.
    base_mpki: float
    #: LLC bytes the benchmark wants.
    llc_footprint_mib: float
    #: DRAM bandwidth demand at full speed, GB/s.
    bandwidth_gbps: float
    #: Effective memory-level parallelism (overlapping misses).
    mlp: float = 2.0
    #: How steeply misses grow when the share shrinks below the footprint
    #: (miss-ratio-curve exponent).
    mrc_exponent: float = 0.6

    def __post_init__(self) -> None:
        if self.base_cpi <= 0 or self.mlp <= 0:
            raise ConfigError(f"{self.name}: CPI and MLP must be positive")

    def mpki_at_share(self, share_mib: float) -> float:
        """Misses per kilo-instruction given an effective LLC share."""
        if share_mib <= 0:
            share_mib = 0.25
        if share_mib >= self.llc_footprint_mib:
            return self.base_mpki
        return self.base_mpki * (
            self.llc_footprint_mib / share_mib
        ) ** self.mrc_exponent

    def cpi(self, mpki: float, memory_latency_cycles: float) -> float:
        """Total CPI with the given miss rate and loaded memory latency."""
        return self.base_cpi + (mpki / 1000.0) * memory_latency_cycles / self.mlp


# Modeled profiles for the memory-intensive SPEC 2017 subset the paper's
# methodology targets. Footprints/bandwidths follow published
# characterizations (e.g. mcf and lbm are the canonical LLC/bandwidth
# stressors; gcc is comparatively compute-bound).
SPEC_PROFILES: Dict[str, SpecProfile] = {
    profile.name: profile
    for profile in (
        SpecProfile("mcf", base_cpi=1.10, base_mpki=9.5,
                    llc_footprint_mib=24.0, bandwidth_gbps=5.0, mlp=2.6),
        SpecProfile("lbm", base_cpi=0.85, base_mpki=20.0,
                    llc_footprint_mib=12.0, bandwidth_gbps=11.0, mlp=4.0),
        SpecProfile("omnetpp", base_cpi=1.35, base_mpki=6.5,
                    llc_footprint_mib=18.0, bandwidth_gbps=2.5, mlp=1.6),
        SpecProfile("xalancbmk", base_cpi=1.05, base_mpki=3.5,
                    llc_footprint_mib=14.0, bandwidth_gbps=2.0, mlp=1.8),
        SpecProfile("gcc", base_cpi=0.90, base_mpki=1.8,
                    llc_footprint_mib=8.0, bandwidth_gbps=1.2, mlp=1.7),
        SpecProfile("cactuBSSN", base_cpi=0.95, base_mpki=5.5,
                    llc_footprint_mib=10.0, bandwidth_gbps=4.5, mlp=3.0),
        SpecProfile("fotonik3d", base_cpi=0.80, base_mpki=14.0,
                    llc_footprint_mib=9.0, bandwidth_gbps=9.0, mlp=3.6),
        SpecProfile("roms", base_cpi=0.85, base_mpki=10.0,
                    llc_footprint_mib=11.0, bandwidth_gbps=7.0, mlp=3.2),
        SpecProfile("bwaves", base_cpi=0.80, base_mpki=12.0,
                    llc_footprint_mib=10.0, bandwidth_gbps=8.5, mlp=3.8),
        SpecProfile("wrf", base_cpi=0.95, base_mpki=4.0,
                    llc_footprint_mib=9.0, bandwidth_gbps=3.5, mlp=2.4),
    )
}

#: The paper co-runs 8 workloads; this is the default job mix.
DEFAULT_JOB_MIX: List[str] = [
    "mcf", "lbm", "omnetpp", "xalancbmk",
    "gcc", "cactuBSSN", "fotonik3d", "roms",
]


def get_profile(name: str) -> SpecProfile:
    try:
        return SPEC_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(SPEC_PROFILES))
        raise ConfigError(f"unknown workload {name!r}; available: {known}") from None


def job_mix(names: Sequence[str]) -> List[SpecProfile]:
    return [get_profile(name) for name in names]
