"""Page-access pattern generators.

SFM pays off for applications with *predictable access patterns over
compressible data* (§1, §3.2). These generators produce the page-access
streams the far-memory runtime and the controllers are exercised with:

* :class:`HotColdPattern` — a hot set absorbing most accesses, the classic
  warehouse-scale shape (Google: ~30% of memory cold at a 120 s age).
* :class:`ZipfPattern` — skewed popularity without a hard hot/cold split.
* :class:`ScanPattern` — periodic sequential sweeps (analytics), the
  prefetch-friendly pattern XFM's ``do_offload`` swap-ins target.
* :class:`MixedPattern` — weighted composition of the above.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigError


class AccessPattern:
    """Base: a deterministic stream of page indices in ``[0, num_pages)``."""

    num_pages: int

    def next_accesses(self, count: int) -> List[int]:
        """Produce the next ``count`` page accesses."""
        raise NotImplementedError


@dataclass
class HotColdPattern(AccessPattern):
    """A hot fraction of pages receives most accesses."""

    num_pages: int
    hot_fraction: float = 0.3
    hot_access_probability: float = 0.95
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ConfigError("hot_fraction must be in (0, 1]")
        if not 0.0 <= self.hot_access_probability <= 1.0:
            raise ConfigError("hot_access_probability must be in [0, 1]")
        self._rng = np.random.default_rng(self.seed)

    @property
    def hot_pages(self) -> int:
        return max(1, int(self.num_pages * self.hot_fraction))

    def next_accesses(self, count: int) -> List[int]:
        rng = self._rng
        hot = self.hot_pages
        is_hot = rng.random(count) < self.hot_access_probability
        hot_picks = rng.integers(0, hot, count)
        cold_span = max(1, self.num_pages - hot)
        cold_picks = hot + rng.integers(0, cold_span, count)
        return [
            int(hot_picks[i]) if is_hot[i] else int(cold_picks[i])
            for i in range(count)
        ]


@dataclass
class ZipfPattern(AccessPattern):
    """Zipf-distributed page popularity."""

    num_pages: int
    exponent: float = 1.1
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)
    _cdf: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.exponent <= 0:
            raise ConfigError("zipf exponent must be positive")
        self._rng = np.random.default_rng(self.seed)
        ranks = np.arange(1, self.num_pages + 1, dtype=float)
        weights = ranks ** (-self.exponent)
        self._cdf = np.cumsum(weights / weights.sum())

    def next_accesses(self, count: int) -> List[int]:
        draws = self._rng.random(count)
        return [int(i) for i in np.searchsorted(self._cdf, draws)]


@dataclass
class ScanPattern(AccessPattern):
    """Sequential sweep over all pages, restarting at the end."""

    num_pages: int
    stride: int = 1
    _cursor: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.stride < 1:
            raise ConfigError("stride must be >= 1")

    def next_accesses(self, count: int) -> List[int]:
        out = []
        for _ in range(count):
            out.append(self._cursor)
            self._cursor = (self._cursor + self.stride) % self.num_pages
        return out

    def predicted_next(self, lookahead: int) -> List[int]:
        """The pages the sweep will touch next — what a prefetcher sees."""
        return [
            (self._cursor + i * self.stride) % self.num_pages
            for i in range(lookahead)
        ]


@dataclass
class MixedPattern(AccessPattern):
    """Weighted mixture of sub-patterns over the same page range."""

    patterns: Sequence[AccessPattern] = ()
    weights: Sequence[float] = ()
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.patterns or len(self.patterns) != len(self.weights):
            raise ConfigError("patterns and weights must align and be non-empty")
        spans = {p.num_pages for p in self.patterns}
        if len(spans) != 1:
            raise ConfigError("all sub-patterns must cover the same pages")
        self.num_pages = self.patterns[0].num_pages
        self._rng = np.random.default_rng(self.seed)

    def next_accesses(self, count: int) -> List[int]:
        weights = np.asarray(self.weights, dtype=float)
        weights = weights / weights.sum()
        choices = self._rng.choice(len(self.patterns), size=count, p=weights)
        out: List[int] = []
        for index in choices:
            out.extend(self.patterns[int(index)].next_accesses(1))
        return out
