"""Synthetic web front-end workload (the paper's trace generator, §7).

The paper drives AIFM with "a synthetic web front-end application" built on
a DataFrame library, allocating objects at page granularity. This module
reproduces that: a table of user records stored page-per-row-group, a
request mix of point lookups (Zipf-skewed — sessions hit popular users),
periodic full-table analytics scans (sequential, prefetchable), and writes.
Running it against a :class:`~repro.workloads.aifm.FarMemoryRuntime`
produces the swap-in/out trace the emulator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigError
from repro.sfm.page import PAGE_SIZE
from repro.workloads.access_patterns import ScanPattern, ZipfPattern
from repro.workloads.aifm import FarMemoryRuntime
from repro.workloads.corpus import generate_corpus


@dataclass
class WebFrontendConfig:
    """Shape of the synthetic service."""

    num_pages: int = 256
    #: Point lookups per simulated second.
    lookups_per_s: float = 40.0
    #: Fraction of lookups that also write.
    write_fraction: float = 0.2
    #: Seconds between analytics scans (0 disables them).
    scan_period_s: float = 20.0
    #: Pages touched per scan burst.
    scan_burst_pages: int = 64
    #: Prefetch lookahead announced to the runtime before scans.
    prefetch_lookahead: int = 8
    zipf_exponent: float = 1.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_pages < 1:
            raise ConfigError("num_pages must be >= 1")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigError("write_fraction must be in [0, 1]")


@dataclass
class WebFrontendReport:
    simulated_s: float
    lookups: int
    scans: int
    demand_faults: int
    prefetch_promotions: int
    swap_outs: int
    swap_ins: int

    @property
    def fault_rate(self) -> float:
        return self.demand_faults / self.lookups if self.lookups else 0.0


class WebFrontend:
    """The request generator bound to a far-memory runtime."""

    def __init__(
        self,
        runtime: FarMemoryRuntime,
        config: Optional[WebFrontendConfig] = None,
    ) -> None:
        self.config = config if config is not None else WebFrontendConfig()
        self.runtime = runtime
        cfg = self.config
        # Populate the table with JSON-record pages (realistic content so
        # the backend's real compression sees realistic ratios).
        data = generate_corpus(
            "json-records", cfg.num_pages * PAGE_SIZE, seed=cfg.seed
        )
        pages = [
            data[i * PAGE_SIZE : (i + 1) * PAGE_SIZE]
            for i in range(cfg.num_pages)
        ]
        self.vaddrs: List[int] = runtime.allocate(pages)
        self._lookup_pattern = ZipfPattern(
            num_pages=cfg.num_pages,
            exponent=cfg.zipf_exponent,
            seed=cfg.seed,
        )
        self._scan_pattern = ScanPattern(num_pages=cfg.num_pages)
        self._write_toggle = 0

    def run(self, duration_s: float, step_s: float = 1.0) -> WebFrontendReport:
        """Simulate ``duration_s`` seconds of traffic."""
        cfg = self.config
        runtime = self.runtime
        now = 0.0
        lookups = 0
        scans = 0
        next_scan = cfg.scan_period_s if cfg.scan_period_s > 0 else float("inf")
        while now < duration_s:
            count = max(1, int(cfg.lookups_per_s * step_s))
            for page_index in self._lookup_pattern.next_accesses(count):
                vaddr = self.vaddrs[page_index]
                self._write_toggle += 1
                if (
                    cfg.write_fraction > 0
                    and self._write_toggle
                    % max(1, int(1 / max(cfg.write_fraction, 1e-9)))
                    == 0
                ):
                    data = runtime.read(vaddr, now)
                    runtime.write(vaddr, data, now)
                else:
                    runtime.read(vaddr, now)
                lookups += 1
            if now >= next_scan:
                scans += 1
                next_scan += cfg.scan_period_s
                # Announce the scan to the prefetcher, then sweep.
                predicted = self._scan_pattern.predicted_next(
                    cfg.prefetch_lookahead
                )
                runtime.prefetch(
                    [self.vaddrs[i] for i in predicted], now
                )
                for page_index in self._scan_pattern.next_accesses(
                    cfg.scan_burst_pages
                ):
                    runtime.read(self.vaddrs[page_index], now)
            runtime.maintain(now)
            now += step_s
        stats = runtime.stats
        backend = runtime.backend
        return WebFrontendReport(
            simulated_s=duration_s,
            lookups=lookups,
            scans=scans,
            demand_faults=stats.demand_faults,
            prefetch_promotions=stats.prefetch_promotions,
            swap_outs=backend.stats.swap_outs,
            swap_ins=backend.stats.swap_ins,
        )
