"""Workload substrates: corpora, access patterns, far-memory traces,
an AIFM-like runtime, a synthetic web front-end, and SPEC-like profiles.

These packages stand in for the proprietary inputs of the paper's
evaluation (Silesia-style corpus files, SPEC CPU 2017, the DataFrame web
front-end driving AIFM) with deterministic synthetic equivalents — see
DESIGN.md's substitution table.
"""

from repro.workloads.corpus import (
    CORPUS_NAMES,
    corpus_pages,
    describe_corpus,
    generate_corpus,
    tunable_page,
)
from repro.workloads.prefetch import SequentialPrefetcher, StridePrefetcher
from repro.workloads.traces import SwapTrace

__all__ = [
    "CORPUS_NAMES",
    "SequentialPrefetcher",
    "StridePrefetcher",
    "SwapTrace",
    "corpus_pages",
    "describe_corpus",
    "generate_corpus",
    "tunable_page",
]
