"""Versioned swap-trace format: portable, replayable workload artifacts.

A :class:`ScenarioTrace` is the unit the scenario zoo ships: a header
(format version, scenario name, seed, page size, free-form origin
metadata), a content-addressed page library (unique 4 KiB payloads keyed
by blake2b digest, stored once no matter how often they recur), and a
time-ordered stream of :class:`TraceEvent` records — ``store`` / ``load``
/ ``invalidate`` / ``promote`` with vaddr, page digest, simulated
timestamp, and origin tag.

On disk a trace is gzipped JSONL (``*.trace.jsonl.gz``): one header
line, then one line per unique page (zlib+base64 payload), then one line
per event. Writes pin the gzip mtime to zero so the same trace always
produces the same bytes — trace artifacts diff cleanly in git and can be
digest-compared in CI. Loads are strict: a truncated stream, a corrupt
line, an unknown format version, a page whose bytes do not hash to their
declared digest, or an event referencing an unknown digest all raise
typed :mod:`repro.errors` exceptions instead of yielding a silently
wrong workload.

Version rules: ``version`` is bumped only for changes an old reader
would misinterpret; additive header metadata goes into ``meta`` and must
be ignored by readers that do not know it. Readers reject versions newer
than :data:`TRACE_FORMAT_VERSION`.
"""

from __future__ import annotations

import base64
import gzip
import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.errors import ConfigError, TraceFormatError, TraceVersionError
from repro.sfm.digest_cache import page_digest
from repro.sfm.page import PAGE_SIZE

#: Newest trace format this build reads and the version it writes.
TRACE_FORMAT_VERSION = 1

#: Event operations (the four verbs of the tier protocol's data plane).
OP_STORE = "store"
OP_LOAD = "load"
OP_INVALIDATE = "invalidate"
OP_PROMOTE = "promote"

OPS = (OP_STORE, OP_LOAD, OP_INVALIDATE, OP_PROMOTE)

#: ``origin`` tag of a promote event that raises a blob toward tier 0
#: *inside* far memory (pipeline ``promote_up``) rather than prefetching
#: it back to local DRAM (the tier protocol's exclusive ``promote``).
ORIGIN_UPWARD = "upward"


def digest_hex(data: bytes) -> str:
    """Content digest used throughout the trace format (blake2b-128)."""
    return page_digest(data).hex()


@dataclass(frozen=True)
class TraceEvent:
    """One recorded data-plane operation."""

    seq: int
    #: Simulated time of the operation, nanoseconds.
    t_ns: float
    op: str
    vaddr: int
    #: Content digest of the page moved ("" for invalidate).
    digest: str = ""
    #: Compressed size reported by the recording tier (stores only).
    compressed_len: int = 0
    #: Free-form provenance: "accepted", "reject:pool-full", "demand",
    #: "prefetch", "upward", ...
    origin: str = ""

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ConfigError(f"op must be one of {OPS}, got {self.op!r}")
        if self.t_ns < 0:
            raise ConfigError("event time must be non-negative")
        if self.vaddr < 0:
            raise ConfigError("vaddr must be non-negative")

    def to_json(self) -> Dict[str, object]:
        return {
            "kind": "event",
            "seq": self.seq,
            "t_ns": self.t_ns,
            "op": self.op,
            "vaddr": self.vaddr,
            "digest": self.digest,
            "clen": self.compressed_len,
            "origin": self.origin,
        }


@dataclass
class ScenarioTrace:
    """A replayable swap-trace artifact (header + page library + events)."""

    name: str = "unnamed"
    seed: int = 0
    page_size: int = PAGE_SIZE
    #: Free-form origin metadata (recording backend, generator config,
    #: ...). Additive; readers ignore unknown keys.
    meta: Dict[str, object] = field(default_factory=dict)
    #: Content-addressed page library: digest -> page bytes.
    pages: Dict[str, bytes] = field(default_factory=dict)
    events: List[TraceEvent] = field(default_factory=list)

    # -- construction --------------------------------------------------------

    def add_page(self, data: bytes) -> str:
        """Intern a page payload; returns its digest."""
        if len(data) != self.page_size:
            raise ConfigError(
                f"trace pages are {self.page_size} bytes, got {len(data)}"
            )
        digest = digest_hex(data)
        self.pages.setdefault(digest, bytes(data))
        return digest

    def append(
        self,
        t_ns: float,
        op: str,
        vaddr: int,
        digest: str = "",
        compressed_len: int = 0,
        origin: str = "",
    ) -> TraceEvent:
        if digest and digest not in self.pages:
            raise ConfigError(
                f"event references unknown page digest {digest!r}; "
                "add_page() the payload first"
            )
        event = TraceEvent(
            seq=len(self.events),
            t_ns=t_ns,
            op=op,
            vaddr=vaddr,
            digest=digest,
            compressed_len=compressed_len,
            origin=origin,
        )
        self.events.append(event)
        return event

    def page_for(self, digest: str) -> bytes:
        try:
            return self.pages[digest]
        except KeyError:
            raise TraceFormatError(
                f"trace {self.name!r} has no page with digest {digest!r}"
            ) from None

    # -- views ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def count(self, op: str) -> int:
        return sum(1 for event in self.events if event.op == op)

    @property
    def duration_ns(self) -> float:
        if not self.events:
            return 0.0
        return self.events[-1].t_ns - self.events[0].t_ns

    def to_swap_trace(self):
        """Bridge to the legacy §7 emulator artifact: stores become
        swap-outs, loads/promotes become swap-ins (see
        :meth:`repro.workloads.traces.SwapTrace.from_scenario`)."""
        from repro.workloads.traces import SwapTrace

        return SwapTrace.from_scenario(self)

    # -- persistence ---------------------------------------------------------

    def save(self, path: Union[str, Path]) -> Path:
        """Write gzipped JSONL; byte-identical for identical traces."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "kind": "header",
            "version": TRACE_FORMAT_VERSION,
            "name": self.name,
            "seed": self.seed,
            "page_size": self.page_size,
            "meta": self.meta,
            "num_pages": len(self.pages),
            "num_events": len(self.events),
        }
        with open(target, "wb") as raw:
            # mtime=0 keeps the gzip container reproducible.
            with gzip.GzipFile(
                filename="", mode="wb", fileobj=raw, mtime=0
            ) as fh:
                fh.write(_dumps(header))
                for digest in sorted(self.pages):
                    packed = base64.b64encode(
                        zlib.compress(self.pages[digest], 6)
                    ).decode("ascii")
                    fh.write(
                        _dumps({"kind": "page", "digest": digest, "z": packed})
                    )
                for event in self.events:
                    fh.write(_dumps(event.to_json()))
        return target

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ScenarioTrace":
        """Read a trace; raises typed errors on any malformation."""
        source = Path(path)
        if not source.exists():
            raise TraceFormatError(f"trace file {source} does not exist")
        try:
            with gzip.open(source, "rt", encoding="utf-8") as fh:
                lines = fh.readlines()
        except (OSError, EOFError, zlib.error) as exc:
            raise TraceFormatError(
                f"trace file {source} is not readable gzip: {exc}"
            ) from exc
        if not lines:
            raise TraceFormatError(f"trace file {source} is empty")
        records = []
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    f"{source}:{lineno}: corrupt JSON line: {exc}"
                ) from exc
            if not isinstance(record, dict) or "kind" not in record:
                raise TraceFormatError(
                    f"{source}:{lineno}: record has no 'kind' field"
                )
            records.append((lineno, record))

        lineno, header = records[0]
        if header["kind"] != "header":
            raise TraceFormatError(
                f"{source}: first record must be the header, "
                f"got kind={header['kind']!r}"
            )
        version = header.get("version")
        if not isinstance(version, int) or version < 1:
            raise TraceFormatError(f"{source}: bad format version {version!r}")
        if version > TRACE_FORMAT_VERSION:
            raise TraceVersionError(
                f"{source}: format version {version} is newer than this "
                f"reader (max {TRACE_FORMAT_VERSION})"
            )
        try:
            trace = cls(
                name=str(header["name"]),
                seed=int(header["seed"]),
                page_size=int(header["page_size"]),
                meta=dict(header.get("meta", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(
                f"{source}: malformed header: {exc}"
            ) from exc

        for lineno, record in records[1:]:
            kind = record["kind"]
            if kind == "page":
                trace._load_page(source, lineno, record)
            elif kind == "event":
                trace._load_event(source, lineno, record)
            else:
                raise TraceFormatError(
                    f"{source}:{lineno}: unknown record kind {kind!r}"
                )
        declared_pages = header.get("num_pages")
        declared_events = header.get("num_events")
        if declared_pages is not None and declared_pages != len(trace.pages):
            raise TraceFormatError(
                f"{source}: header declares {declared_pages} pages, "
                f"found {len(trace.pages)} (truncated?)"
            )
        if declared_events is not None and declared_events != len(trace.events):
            raise TraceFormatError(
                f"{source}: header declares {declared_events} events, "
                f"found {len(trace.events)} (truncated?)"
            )
        return trace

    def _load_page(self, source: Path, lineno: int, record: Dict) -> None:
        try:
            digest = record["digest"]
            data = zlib.decompress(base64.b64decode(record["z"]))
        except (KeyError, TypeError, ValueError, zlib.error) as exc:
            raise TraceFormatError(
                f"{source}:{lineno}: corrupt page record: {exc}"
            ) from exc
        if len(data) != self.page_size:
            raise TraceFormatError(
                f"{source}:{lineno}: page is {len(data)} bytes, "
                f"expected {self.page_size}"
            )
        if digest_hex(data) != digest:
            raise TraceFormatError(
                f"{source}:{lineno}: page bytes do not match declared "
                f"digest {digest!r}"
            )
        self.pages[digest] = data

    def _load_event(self, source: Path, lineno: int, record: Dict) -> None:
        try:
            event = TraceEvent(
                seq=int(record["seq"]),
                t_ns=float(record["t_ns"]),
                op=str(record["op"]),
                vaddr=int(record["vaddr"]),
                digest=str(record.get("digest", "")),
                compressed_len=int(record.get("clen", 0)),
                origin=str(record.get("origin", "")),
            )
        except (KeyError, TypeError, ValueError, ConfigError) as exc:
            raise TraceFormatError(
                f"{source}:{lineno}: corrupt event record: {exc}"
            ) from exc
        if event.digest and event.digest not in self.pages:
            raise TraceFormatError(
                f"{source}:{lineno}: event references unknown page "
                f"digest {event.digest!r}"
            )
        self.events.append(event)


def _dumps(record: Dict[str, object]) -> bytes:
    return (
        json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def trace_fingerprint(trace: ScenarioTrace) -> str:
    """Digest over the logical content (header fields, events, page
    digests) — stable across serializations, used by CI's record ->
    replay -> compare step."""
    import hashlib

    h = hashlib.blake2b(digest_size=16)
    h.update(
        _dumps(
            {
                "name": trace.name,
                "seed": trace.seed,
                "page_size": trace.page_size,
            }
        )
    )
    for digest in sorted(trace.pages):
        h.update(digest.encode("ascii"))
    for event in trace.events:
        h.update(_dumps(event.to_json()))
    return h.hexdigest()
