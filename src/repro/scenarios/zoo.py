"""The scenario zoo: a shipped library of replayable swap traces.

Four canonical far-memory workload shapes, each recorded from a live
:class:`~repro.tiering.pipeline.TierPipeline` run through a
:class:`~repro.scenarios.recorder.TraceRecorder` and checked in as a
small compressed artifact under ``repro/scenarios/data/``:

* ``kv-cache``       — hot/cold keyed churn: skewed re-stores, demand
  loads, upward promotions of hot keys, TTL-style invalidations.
* ``analytics-scan`` — a resident working set swept sequentially, each
  page re-admitted after its scan touch (the paper's prefetchable
  pattern).
* ``web-session``    — the §7 synthetic web front-end (Zipf lookups +
  periodic scans) driven through the AIFM runtime over the pipeline.
* ``chaos-soak``     — a long mixed store/load/promote/invalidate soak
  sized to cascade into DFM; recorded clean, designed to be replayed
  under fault profiles (``--fault-profile``).

Every builder is deterministic in its seed (stdlib ``random.Random``
op-mix, seeded corpus pages, simulated clock), so
``build_scenario(name)`` regenerates the shipped artifact bit-for-bit —
which the freshness test and CI's record -> replay -> compare job both
exploit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.errors import ConfigError
from repro.scenarios.format import ScenarioTrace
from repro.scenarios.recorder import TraceRecorder
from repro.sfm.page import PAGE_SIZE
from repro.sim import CLOCK as _sim_clock
from repro.workloads.corpus import corpus_pages

#: Where the shipped artifacts live (installed with the package).
DATA_DIR = Path(__file__).parent / "data"

ARTIFACT_SUFFIX = ".trace.jsonl.gz"


@dataclass(frozen=True)
class ScenarioSpec:
    """One zoo entry: a name, a seeded builder, and its story."""

    name: str
    builder: Callable[[int], ScenarioTrace]
    description: str
    default_seed: int = 0


def _recorded_pipeline(
    name: str,
    seed: int,
    cpu_pages: int = 5,
    xfm_pages: int = 5,
    dfm_pages: int = 160,
) -> TraceRecorder:
    """The standard recording rig: a TraceRecorder around the canonical
    3-tier pipeline. The upper tiers are deliberately tiny so every
    scenario exercises demotion cascades into XFM and DFM; the DFM
    floor is sized to hold any builder's whole key universe (a cascade
    past a full floor would abort the recording)."""
    from repro.tiering.pipeline import TierPipeline
    from repro.tiering.policy import LruDemotion

    pipeline = TierPipeline.build(
        cpu_capacity_bytes=cpu_pages * PAGE_SIZE,
        xfm_capacity_bytes=xfm_pages * PAGE_SIZE,
        dfm_capacity_bytes=dfm_pages * PAGE_SIZE,
        demotion=LruDemotion(watermark_fraction=0.6),
    )
    return TraceRecorder(
        pipeline,
        name=name,
        seed=seed,
        meta={
            "generator": f"zoo.{name}",
            "tier_pages": [cpu_pages, xfm_pages, dfm_pages],
        },
    )


# -- builders ----------------------------------------------------------------


def _build_kv_cache(seed: int) -> ScenarioTrace:
    """Keyed churn with a hot set: the remote-KV-cache shape."""
    recorder = _recorded_pipeline("kv-cache", seed)
    rng = random.Random(seed)
    pages = corpus_pages("json-records", 48, seed=seed)
    #: key -> page payload currently stored in far memory.
    live: Dict[int, bytes] = {}
    next_key = 0

    def store_new() -> None:
        nonlocal next_key
        key = next_key % 64
        next_key += 1
        data = pages[key % len(pages)]
        if recorder.store(key, data):
            live[key] = data

    def pick(hot: bool) -> Optional[int]:
        if not live:
            return None
        keys = sorted(live)
        # Hot picks cluster on the lowest (oldest, most re-stored) keys.
        index = (
            min(int(rng.expovariate(0.25)), len(keys) - 1)
            if hot
            else rng.randrange(len(keys))
        )
        return keys[index]

    for _ in range(16):
        store_new()
    for _ in range(240):
        roll = rng.random()
        if roll < 0.35:
            store_new()
        elif roll < 0.65:
            key = pick(hot=True)
            if key is not None and recorder.load(key) is not None:
                live.pop(key, None)  # exclusive load: key left far memory
        elif roll < 0.85:
            key = pick(hot=True)
            if key is not None:
                recorder.promote_key(key)
        else:
            key = pick(hot=False)
            if key is not None and recorder.invalidate(key * PAGE_SIZE):
                live.pop(key, None)
    return recorder.trace


def _build_analytics_scan(seed: int) -> ScenarioTrace:
    """Sequential sweeps with re-admission: the prefetchable shape."""
    recorder = _recorded_pipeline("analytics-scan", seed)
    pages = corpus_pages("csv-table", 36, seed=seed)
    live: Dict[int, bytes] = {}
    for key, data in enumerate(pages):
        if recorder.store(key, data):
            live[key] = data
    for sweep in range(3):
        for key in sorted(live):
            # Announce the next stride to the promotion path, then touch.
            if key % 4 == 0:
                recorder.promote_key(key)
            if recorder.load(key) is not None:
                live.pop(key)
            # Scan results are re-admitted (cold again after the pass).
            data = pages[key]
            if recorder.store(key, data):
                live[key] = data
    return recorder.trace


def _build_web_session(seed: int) -> ScenarioTrace:
    """The §7 synthetic web front-end recorded through the AIFM seam."""
    from repro.sfm.controller import ColdScanController
    from repro.workloads.aifm import FarMemoryRuntime
    from repro.workloads.webfrontend import WebFrontend, WebFrontendConfig

    recorder = _recorded_pipeline("web-session", seed)
    runtime = FarMemoryRuntime(
        recorder,
        local_capacity_pages=20,
        # Aggressive cold-scan so the 10-second run actually swaps (the
        # default 30 s threshold would record an empty trace).
        controller=ColdScanController(
            cold_threshold_s=2.0, scan_period_s=1.0
        ),
    )
    frontend = WebFrontend(
        runtime,
        WebFrontendConfig(
            num_pages=44,
            lookups_per_s=18.0,
            write_fraction=0.25,
            scan_period_s=4.0,
            scan_burst_pages=12,
            prefetch_lookahead=4,
            seed=seed,
        ),
    )
    frontend.run(duration_s=10.0, step_s=1.0)
    return recorder.trace


def _build_chaos_soak(seed: int) -> ScenarioTrace:
    """A mixed soak that cascades into DFM; recorded clean so chaos
    replay (``fault_profile=...``) re-runs the identical workload under
    injected faults."""
    recorder = _recorded_pipeline("chaos-soak", seed)
    rng = random.Random(seed)
    pages = corpus_pages("server-log", 40, seed=seed)
    live: Dict[int, bytes] = {}
    next_key = 0
    for _ in range(420):
        roll = rng.random()
        if roll < 0.5 or not live:
            key = next_key % 96
            next_key += 1
            data = pages[key % len(pages)]
            if recorder.store(key, data):
                live[key] = data
        elif roll < 0.85:
            key = rng.choice(sorted(live))
            if recorder.load(key) is not None:
                live.pop(key, None)
        else:
            key = rng.choice(sorted(live))
            recorder.promote_key(key)
    return recorder.trace


SCENARIOS: Dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            "kv-cache",
            _build_kv_cache,
            "hot/cold keyed churn with promotions and invalidations",
        ),
        ScenarioSpec(
            "analytics-scan",
            _build_analytics_scan,
            "sequential sweeps with re-admission (prefetchable)",
        ),
        ScenarioSpec(
            "web-session",
            _build_web_session,
            "§7 synthetic web front-end via the AIFM runtime",
        ),
        ScenarioSpec(
            "chaos-soak",
            _build_chaos_soak,
            "DFM-cascading mixed soak for chaos replay",
        ),
    )
}


def build_scenario(name: str, seed: Optional[int] = None) -> ScenarioTrace:
    """Regenerate a zoo scenario from scratch (deterministic in seed)."""
    try:
        spec = SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r}; have {', '.join(sorted(SCENARIOS))}"
        ) from None
    # Builders stamp events from the shared simulated clock; scope it
    # to zero for the build (restored on exit) so the recorded trace is
    # identical no matter what ran in this process before.
    with _sim_clock.scoped(start_ns=0.0):
        return spec.builder(seed if seed is not None else spec.default_seed)


def scenario_path(name: str, base_dir: Optional[Path] = None) -> Path:
    """Path of the shipped artifact for ``name``."""
    if name not in SCENARIOS:
        raise ConfigError(
            f"unknown scenario {name!r}; have {', '.join(sorted(SCENARIOS))}"
        )
    return (base_dir if base_dir is not None else DATA_DIR) / (
        name + ARTIFACT_SUFFIX
    )


def load_scenario(
    name: str, base_dir: Optional[Path] = None
) -> ScenarioTrace:
    """Load a shipped zoo artifact (typed errors on malformation)."""
    return ScenarioTrace.load(scenario_path(name, base_dir))


def regenerate_artifacts(
    out_dir: Optional[Union[str, Path]] = None,
) -> List[Path]:
    """(Re)build every shipped artifact; returns the written paths."""
    target = Path(out_dir) if out_dir is not None else DATA_DIR
    written = []
    for name in sorted(SCENARIOS):
        trace = build_scenario(name)
        written.append(trace.save(target / (name + ARTIFACT_SUFFIX)))
    return written
