"""Scenario zoo: swap-trace record/replay and corpus ingestion.

See DESIGN.md §10. :class:`TraceRecorder` shadows any
:class:`~repro.tiering.protocol.FarMemoryTier` and emits a versioned
:class:`ScenarioTrace`; :class:`TraceReplayer` replays one against any
backend or pipeline config under the simulated clock;
:func:`ingest_tree` page-ifies a real file tree into a digest-verified
corpus; :data:`SCENARIOS` is the shipped library of replayable traces.
"""

from repro.scenarios.format import (
    OP_INVALIDATE,
    OP_LOAD,
    OP_PROMOTE,
    OP_STORE,
    OPS,
    ORIGIN_UPWARD,
    TRACE_FORMAT_VERSION,
    ScenarioTrace,
    TraceEvent,
    digest_hex,
    trace_fingerprint,
)
from repro.scenarios.ingest import (
    MANIFEST_VERSION,
    CorpusManifest,
    IngestConfig,
    ingest_tree,
)
from repro.scenarios.recorder import TraceRecorder
from repro.scenarios.replayer import (
    ReplayReport,
    TraceReplayer,
    format_report,
    replay_trace,
)
from repro.scenarios.zoo import (
    SCENARIOS,
    build_scenario,
    load_scenario,
    regenerate_artifacts,
    scenario_path,
)

__all__ = [
    "CorpusManifest",
    "IngestConfig",
    "MANIFEST_VERSION",
    "OP_INVALIDATE",
    "OP_LOAD",
    "OP_PROMOTE",
    "OP_STORE",
    "OPS",
    "ORIGIN_UPWARD",
    "ReplayReport",
    "SCENARIOS",
    "ScenarioTrace",
    "TRACE_FORMAT_VERSION",
    "TraceEvent",
    "TraceRecorder",
    "TraceReplayer",
    "build_scenario",
    "digest_hex",
    "format_report",
    "ingest_tree",
    "load_scenario",
    "regenerate_artifacts",
    "replay_trace",
    "scenario_path",
    "trace_fingerprint",
]
