"""Offline corpus ingestion: page-ify a real file tree for benchmarks.

The compression results in this repo historically came from synthetic
corpora (:mod:`repro.workloads.corpus`). This pipeline turns any local
text/source/JSON tree — this repository's own source tree is the first
corpus — into the artifact the benchmarks consume:

``gather``  — walk the tree deterministically (sorted paths, VCS/cache
directories skipped, oversized files skipped), ``extract`` — read each
file's bytes and classify it into a *domain* by suffix (source / text /
json / config / web), ``chunk`` — split into 4 KiB pages, zero-padding
the final partial page, ``manifest`` — write one ``manifest.json`` plus
one ``<domain>.pages.gz`` per domain, every page blake2b-digested.

Determinism is a contract: ingesting the same tree twice yields
byte-identical manifests and page files (gzip mtime pinned to zero, all
orderings sorted, no wall-clock anywhere), which the determinism tests
enforce. Loads are strict — schema drift, digest mismatches, or a pages
file that disagrees with its manifest raise
:class:`~repro.errors.ManifestError`.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import ConfigError, ManifestError
from repro.scenarios.format import digest_hex
from repro.sfm.page import PAGE_SIZE

#: Bumped only for changes an old reader would misinterpret.
MANIFEST_VERSION = 1

MANIFEST_NAME = "manifest.json"

#: Suffix -> domain classification. Files outside this map are skipped:
#: the corpus targets the byte classes the paper compresses, not
#: arbitrary binaries.
DOMAIN_BY_SUFFIX: Dict[str, str] = {
    ".py": "source", ".c": "source", ".h": "source", ".rs": "source",
    ".go": "source", ".java": "source", ".sh": "source",
    ".md": "text", ".txt": "text", ".rst": "text",
    ".json": "json", ".jsonl": "json",
    ".toml": "config", ".yml": "config", ".yaml": "config",
    ".cfg": "config", ".ini": "config",
    ".html": "web", ".css": "web", ".js": "web", ".xml": "web",
    ".csv": "tabular",
}

#: Directory names never descended into.
SKIP_DIRS = frozenset({
    ".git", "__pycache__", ".pytest_cache", ".hypothesis", ".benchmarks",
    ".claude", ".tox", ".venv", "node_modules", ".mypy_cache",
    ".ruff_cache", "egg-info",
})


@dataclass(frozen=True)
class IngestConfig:
    """Knobs of one ingestion run (all deterministic inputs)."""

    page_size: int = PAGE_SIZE
    #: Files larger than this are skipped (keeps artifacts small and
    #: excludes generated blobs).
    max_file_bytes: int = 512 * 1024
    #: Optional whitelist; None means every domain in DOMAIN_BY_SUFFIX.
    domains: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise ConfigError("page_size must be positive")
        if self.max_file_bytes <= 0:
            raise ConfigError("max_file_bytes must be positive")


@dataclass
class DomainCorpus:
    """One domain's ingested pages plus their provenance."""

    domain: str
    #: (relative posix path, file size in bytes, pages contributed).
    files: List[Tuple[str, int, int]] = field(default_factory=list)
    page_digests: List[str] = field(default_factory=list)
    pages: List[bytes] = field(default_factory=list)

    @property
    def num_pages(self) -> int:
        return len(self.page_digests)


def classify(path: Path) -> Optional[str]:
    """Domain of one file, or None when it is not corpus material."""
    return DOMAIN_BY_SUFFIX.get(path.suffix.lower())


def gather_files(root: Path, config: IngestConfig) -> List[Path]:
    """Deterministic file walk: sorted, filtered, bounded."""
    if not root.is_dir():
        raise ConfigError(f"ingest root {root} is not a directory")
    out: List[Path] = []
    for path in sorted(root.rglob("*")):
        if not path.is_file() or path.is_symlink():
            continue
        relative = path.relative_to(root)
        if any(
            part in SKIP_DIRS or part.endswith(".egg-info")
            for part in relative.parts[:-1]
        ):
            continue
        domain = classify(path)
        if domain is None:
            continue
        if config.domains is not None and domain not in config.domains:
            continue
        if path.stat().st_size > config.max_file_bytes:
            continue
        out.append(path)
    return out


def chunk_pages(data: bytes, page_size: int) -> List[bytes]:
    """Split into fixed pages, zero-padding the final partial one."""
    if not data:
        return []
    pages = []
    for start in range(0, len(data), page_size):
        page = data[start : start + page_size]
        if len(page) < page_size:
            page = page + bytes(page_size - len(page))
        pages.append(page)
    return pages


def ingest_pages(
    root: Union[str, Path],
    config: Optional[IngestConfig] = None,
) -> Dict[str, List[bytes]]:
    """Gather -> extract -> chunk, returning ``domain -> pages`` without
    writing any artifact. The in-memory variant benchmarks use to train
    and score against a live tree (e.g. this repository's own source)
    when no pre-ingested corpus directory is at hand."""
    config = config if config is not None else IngestConfig()
    root = Path(root)
    out: Dict[str, List[bytes]] = {}
    for path in gather_files(root, config):
        pages = chunk_pages(path.read_bytes(), config.page_size)
        if pages:
            out.setdefault(classify(path), []).extend(pages)
    return out


def ingest_tree(
    root: Union[str, Path],
    out_dir: Union[str, Path],
    config: Optional[IngestConfig] = None,
) -> "CorpusManifest":
    """Run the full gather -> extract -> chunk -> manifest pipeline."""
    config = config if config is not None else IngestConfig()
    root = Path(root)
    target = Path(out_dir)
    target.mkdir(parents=True, exist_ok=True)

    domains: Dict[str, DomainCorpus] = {}
    for path in gather_files(root, config):
        domain = classify(path)
        data = path.read_bytes()
        pages = chunk_pages(data, config.page_size)
        if not pages:
            continue
        corpus = domains.setdefault(domain, DomainCorpus(domain=domain))
        corpus.files.append(
            (path.relative_to(root).as_posix(), len(data), len(pages))
        )
        for page in pages:
            corpus.page_digests.append(digest_hex(page))
            corpus.pages.append(page)

    manifest = CorpusManifest(
        page_size=config.page_size,
        root_label=root.name or str(root),
        domains=domains,
    )
    manifest.save(target)
    return manifest


@dataclass
class CorpusManifest:
    """The per-domain manifest + page files of one ingested tree."""

    page_size: int
    root_label: str
    domains: Dict[str, DomainCorpus]
    #: Directory the manifest was saved to / loaded from.
    base_dir: Optional[Path] = None

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": MANIFEST_VERSION,
            "page_size": self.page_size,
            "root_label": self.root_label,
            "domains": {
                name: {
                    "pages_file": f"{name}.pages.gz",
                    "num_pages": corpus.num_pages,
                    "files": [list(item) for item in corpus.files],
                    "page_digests": corpus.page_digests,
                    # One digest over the ordered page digests: the
                    # cheap whole-domain identity CI compares.
                    "digest": digest_hex(
                        "".join(corpus.page_digests).encode("ascii")
                    ),
                }
                for name, corpus in sorted(self.domains.items())
            },
        }

    # -- persistence ---------------------------------------------------------

    def save(self, out_dir: Union[str, Path]) -> Path:
        target = Path(out_dir)
        target.mkdir(parents=True, exist_ok=True)
        manifest_path = target / MANIFEST_NAME
        manifest_path.write_text(
            json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        for name, corpus in sorted(self.domains.items()):
            with open(target / f"{name}.pages.gz", "wb") as raw:
                with gzip.GzipFile(
                    filename="", mode="wb", fileobj=raw, mtime=0
                ) as fh:
                    for page in corpus.pages:
                        fh.write(page)
        self.base_dir = target
        return manifest_path

    @classmethod
    def load(cls, base_dir: Union[str, Path]) -> "CorpusManifest":
        base = Path(base_dir)
        manifest_path = base / MANIFEST_NAME
        if not manifest_path.exists():
            raise ManifestError(f"no {MANIFEST_NAME} in {base}")
        try:
            doc = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ManifestError(
                f"{manifest_path} is corrupt JSON: {exc}"
            ) from exc
        if not isinstance(doc, dict) or doc.get("schema") != MANIFEST_VERSION:
            raise ManifestError(
                f"{manifest_path}: unsupported schema "
                f"{doc.get('schema')!r} (expected {MANIFEST_VERSION})"
            )
        try:
            domains: Dict[str, DomainCorpus] = {}
            for name, entry in doc["domains"].items():
                domains[name] = DomainCorpus(
                    domain=name,
                    files=[tuple(item) for item in entry["files"]],
                    page_digests=list(entry["page_digests"]),
                )
            manifest = cls(
                page_size=int(doc["page_size"]),
                root_label=str(doc["root_label"]),
                domains=domains,
                base_dir=base,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestError(
                f"{manifest_path}: malformed manifest: {exc}"
            ) from exc
        for name, entry in doc["domains"].items():
            if entry["num_pages"] != len(domains[name].page_digests):
                raise ManifestError(
                    f"{manifest_path}: domain {name!r} declares "
                    f"{entry['num_pages']} pages but lists "
                    f"{len(domains[name].page_digests)} digests"
                )
        return manifest

    def load_pages(self, domain: str) -> List[bytes]:
        """Read and digest-verify one domain's pages from disk."""
        if self.base_dir is None:
            raise ManifestError(
                "manifest has no base_dir; save() or load() it first"
            )
        try:
            corpus = self.domains[domain]
        except KeyError:
            raise ManifestError(
                f"manifest has no domain {domain!r}; "
                f"have {sorted(self.domains)}"
            ) from None
        path = self.base_dir / f"{domain}.pages.gz"
        try:
            with gzip.open(path, "rb") as fh:
                blob = fh.read()
        except (OSError, EOFError) as exc:
            raise ManifestError(
                f"pages file {path} unreadable: {exc}"
            ) from exc
        expected = corpus.num_pages * self.page_size
        if len(blob) != expected:
            raise ManifestError(
                f"{path}: {len(blob)} bytes on disk, manifest expects "
                f"{expected}"
            )
        pages = [
            blob[i * self.page_size : (i + 1) * self.page_size]
            for i in range(corpus.num_pages)
        ]
        for index, (page, digest) in enumerate(
            zip(pages, corpus.page_digests)
        ):
            if digest_hex(page) != digest:
                raise ManifestError(
                    f"{path}: page {index} does not match its manifest "
                    "digest"
                )
        corpus.pages = pages
        return pages

    def total_pages(self) -> int:
        return sum(corpus.num_pages for corpus in self.domains.values())

    def summary(self) -> Dict[str, int]:
        """domain -> page count (for CLI output and quick assertions)."""
        return {
            name: corpus.num_pages
            for name, corpus in sorted(self.domains.items())
        }
