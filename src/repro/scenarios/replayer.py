"""TraceReplayer: run a recorded swap trace against any tier config.

Replay is the repo's strongest regression substrate because it is
deterministic twice over: the trace fixes the workload (exact operation
stream, exact page bytes, exact simulated timestamps) and the target
tier is a pure function of its configuration, so two replays of the same
trace against the same config produce identical page bytes, identical
stats, and identical ledgers. The differential test suite exploits this
to pin behavior across all four backends plus the pipeline.

Semantics per event (see :mod:`repro.scenarios.format`):

* ``store``       — place the page (re-store drops any stale copy
  first); a page every tier rejects falls back to a host-side shadow
  dict (the replay analogue of the real swap device), so later loads
  remain verifiable no matter how small the target is.
* ``load``        — demand-fetch from the target (or the shadow) and
  verify the returned bytes hash to the recorded digest. A mismatch is
  counted, never silently ignored.
* ``promote``     — ``origin="upward"`` raises the blob toward tier 0
  (``promote_up`` on pipelines; emulated as exclusive-load + re-store on
  flat tiers); any other origin is the tier protocol's exclusive
  prefetch-load, digest-verified like a demand load.
* ``invalidate``  — drop the stored copy.

Chaos replay: pass ``fault_profile`` to re-run the same recorded
workload under a seeded :class:`~repro.resilience.faults.FaultInjector`
plan — transient faults must heal (zero mismatches), persistent ones
must surface as explicit data-loss counts.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.amat import AmatConfig, TierLatency, amat_s
from repro.errors import (
    CorruptedBlobError,
    SfmError,
    TierUnavailableError,
)
from repro.scenarios.format import (
    OP_INVALIDATE,
    OP_LOAD,
    OP_PROMOTE,
    OP_STORE,
    ORIGIN_UPWARD,
    ScenarioTrace,
    digest_hex,
)
from repro.sfm.page import Page
from repro.sim import CLOCK as _sim_clock
from repro.telemetry.session import TelemetrySession
from repro.tiering.protocol import FarMemoryTier


@dataclass
class ReplayReport:
    """One replay run's outcome, JSON-ready via :meth:`as_dict`."""

    scenario: str
    backend: str
    events: int = 0
    stores: int = 0
    stores_accepted: int = 0
    stores_rejected: int = 0
    loads: int = 0
    loads_from_shadow: int = 0
    promotes: int = 0
    upward_promotes: int = 0
    invalidates: int = 0
    #: Loads whose bytes did not hash to the recorded digest — the
    #: differential suite asserts this stays zero.
    digest_mismatches: int = 0
    #: Loads of pages neither the target nor the shadow held.
    missing_pages: int = 0
    tier_unavailable_errors: int = 0
    data_loss_events: int = 0
    #: Total ledger traffic of the target (all actors, both directions).
    bytes_moved: int = 0
    #: Ledger traffic that crossed the DDR channel (non-NMA actors).
    channel_bytes: int = 0
    #: Demand-load fraction of far-memory fetches (1 - prefetch hit).
    fault_rate: float = 0.0
    #: Hierarchical AMAT for the observed mix on this target, seconds.
    amat_s: float = 0.0
    per_tier: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: op-class x tier latency percentile rows (see
    #: :func:`repro.telemetry.quantiles.collect_percentiles`); only
    #: populated when the replay ran under tracing — the quantile
    #: histograms record nothing otherwise.
    latency_percentiles: list = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (self.digest_mismatches or self.missing_pages)

    def as_dict(self) -> Dict[str, object]:
        doc = {
            name: getattr(self, name)
            for name in (
                "scenario", "backend", "events", "stores",
                "stores_accepted", "stores_rejected", "loads",
                "loads_from_shadow", "promotes", "upward_promotes",
                "invalidates", "digest_mismatches", "missing_pages",
                "tier_unavailable_errors", "data_loss_events",
                "bytes_moved", "channel_bytes",
            )
        }
        doc["fault_rate"] = round(self.fault_rate, 6)
        doc["amat_us"] = round(self.amat_s * 1e6, 4)
        doc["clean"] = self.clean
        doc["per_tier"] = self.per_tier
        # Omitted entirely when tracing was off, so the pinned replay
        # goldens (recorded session-less) stay byte-identical.
        if self.latency_percentiles:
            doc["latency_percentiles"] = self.latency_percentiles
        return doc


class TraceReplayer:
    """Replays one :class:`ScenarioTrace` against one target tier."""

    def __init__(
        self,
        trace: ScenarioTrace,
        target: FarMemoryTier,
        backend_name: Optional[str] = None,
        fault_profile: Optional[str] = None,
        fault_seed: int = 0,
        session: Optional[TelemetrySession] = None,
        slo_engine: Optional[object] = None,
    ) -> None:
        """``slo_engine``, when provided (a
        :class:`~repro.telemetry.slo.SloEngine`), is ticked with every
        replayed event's timestamp and finalized at the end of the run,
        so SLO windows close on the trace's own simulated clock."""
        self.trace = trace
        self.target = target
        self.backend_name = (
            backend_name
            if backend_name is not None
            else getattr(target, "tier_name", "?")
        )
        self.fault_profile = fault_profile
        self.fault_seed = fault_seed
        self.session = session
        self.slo_engine = slo_engine
        #: Pages the target rejected — the replay-side swap device.
        self.shadow: Dict[int, bytes] = {}

    # -- fault plan -----------------------------------------------------------

    def _fault_context(self):
        if self.fault_profile is None:
            return contextlib.nullcontext()
        from repro.resilience import faults as _faults
        from repro.resilience.chaos import fault_plan_for

        injector = _faults.FaultInjector(
            fault_plan_for(self.fault_profile, self.fault_seed)
        )
        return _faults.fault_injection(injector)

    # -- replay loop ----------------------------------------------------------

    def run(self) -> ReplayReport:
        report = ReplayReport(
            scenario=self.trace.name, backend=self.backend_name
        )
        handlers = {
            OP_STORE: self._replay_store,
            OP_LOAD: self._replay_load,
            OP_PROMOTE: self._replay_promote,
            OP_INVALIDATE: self._replay_invalidate,
        }
        # Drive the shared simulated clock from the trace inside a
        # save/restore scope — replay borrows the timeline and must not
        # perturb later recordings (scopes nest, so replays inside
        # sessions inside replays all compose).
        last_t_ns = 0.0
        with _sim_clock.scoped():
            with self._fault_context():
                for event in self.trace:
                    _sim_clock.set_ns(event.t_ns)
                    handlers[event.op](event, report)
                    report.events += 1
                    if self.slo_engine is not None:
                        self.slo_engine.tick(event.t_ns)
                        last_t_ns = event.t_ns
        if self.slo_engine is not None:
            self.slo_engine.finalize(last_t_ns)
        self._finalize(report)
        return report

    def _replay_store(self, event, report: ReplayReport) -> None:
        report.stores += 1
        data = self.trace.page_for(event.digest)
        # A re-store supersedes any stale copy (keyed-API semantics).
        if self.target.contains(event.vaddr):
            try:
                self.target.invalidate(event.vaddr)
            except TierUnavailableError:
                report.tier_unavailable_errors += 1
        self.shadow.pop(event.vaddr, None)
        try:
            outcome = self.target.swap_out(Page(vaddr=event.vaddr, data=data))
        except TierUnavailableError:
            report.tier_unavailable_errors += 1
            outcome = None
        if outcome is not None and outcome.accepted:
            report.stores_accepted += 1
        else:
            report.stores_rejected += 1
            self.shadow[event.vaddr] = data

    def _fetch(self, event, report: ReplayReport, demand: bool):
        """Shared load path: target first, shadow fallback; returns the
        bytes or None (already counted)."""
        if self.target.contains(event.vaddr):
            # swapped=True: the fetch paths reject pages that do not
            # claim to live in far memory.
            page = Page(vaddr=event.vaddr, swapped=True)
            try:
                return (
                    self.target.swap_in(page)
                    if demand
                    else self.target.promote(page)
                )
            except TierUnavailableError:
                report.tier_unavailable_errors += 1
                return None
            except CorruptedBlobError:
                report.data_loss_events += 1
                return None
            except SfmError:
                # Bookkeeping said held but the tier lost it mid-cascade
                # (only reachable under fault injection).
                report.missing_pages += 1
                return None
        if event.vaddr in self.shadow:
            report.loads_from_shadow += 1
            return self.shadow.pop(event.vaddr)
        report.missing_pages += 1
        return None

    def _verify(self, event, data: bytes, report: ReplayReport) -> None:
        if digest_hex(data) != event.digest:
            report.digest_mismatches += 1

    def _replay_load(self, event, report: ReplayReport) -> None:
        report.loads += 1
        data = self._fetch(event, report, demand=(event.origin != "prefetch"))
        if data is not None:
            self._verify(event, data, report)

    def _replay_promote(self, event, report: ReplayReport) -> None:
        if event.origin != ORIGIN_UPWARD:
            # Exclusive prefetch-load recorded through the offload path.
            report.promotes += 1
            data = self._fetch(event, report, demand=False)
            if data is not None:
                self._verify(event, data, report)
            return
        report.upward_promotes += 1
        promote_up = getattr(self.target, "promote_up", None)
        if promote_up is not None:
            try:
                promote_up(event.vaddr)
            except TierUnavailableError:
                report.tier_unavailable_errors += 1
            except CorruptedBlobError:
                report.data_loss_events += 1
            return
        # Flat tiers have no "toward tier 0": emulate by exclusive-load
        # + re-store so residency after the event matches the pipeline.
        if not self.target.contains(event.vaddr):
            return
        data = self._fetch(event, report, demand=False)
        if data is None:
            return
        self._verify(event, data, report)
        try:
            outcome = self.target.swap_out(Page(vaddr=event.vaddr, data=data))
        except TierUnavailableError:
            report.tier_unavailable_errors += 1
            outcome = None
        if outcome is None or not outcome.accepted:
            self.shadow[event.vaddr] = data

    def _replay_invalidate(self, event, report: ReplayReport) -> None:
        report.invalidates += 1
        self.shadow.pop(event.vaddr, None)
        try:
            self.target.invalidate(event.vaddr)
        except TierUnavailableError:
            report.tier_unavailable_errors += 1

    # -- derived metrics ------------------------------------------------------

    def _finalize(self, report: ReplayReport) -> None:
        ledger = self.target.ledger
        report.bytes_moved = sum(ledger.snapshot().values())
        report.channel_bytes = ledger.channel_bytes()
        far_fetches = report.loads + report.promotes
        prefetch_hit = report.promotes / far_fetches if far_fetches else 0.0
        report.fault_rate = 1.0 - prefetch_hit if far_fetches else 0.0
        total_ops = max(1, report.events)
        config = AmatConfig(
            far_access_fraction=min(1.0, far_fetches / total_ops),
            prefetch_hit_rate=prefetch_hit,
        )
        tier = TierLatency(
            name=self.backend_name,
            fault_latency_s=self.target.swap_latency_s("in"),
        )
        report.amat_s = amat_s(config, tier)
        tiers_by_name = getattr(self.target, "tiers_by_name", None)
        if tiers_by_name is not None:
            for name, tier_obj in tiers_by_name().items():
                stats = tier_obj.stats
                report.per_tier[name] = {
                    "swap_outs": stats.swap_outs,
                    "swap_ins": stats.swap_ins,
                    "rejected": stats.rejected,
                    "stored_pages": tier_obj.stored_pages(),
                    "ledger_bytes": sum(
                        tier_obj.ledger.snapshot().values()
                    ),
                }
        registry = getattr(self.target, "registry", None)
        if registry is not None:
            from repro.telemetry.quantiles import collect_percentiles

            report.latency_percentiles = collect_percentiles(registry)
        if self.session is not None:
            self._export(report)

    def _export(self, report: ReplayReport) -> None:
        """Publish the run into the telemetry session (gauges + an
        annotation block in ``metrics.json``)."""
        session = self.session
        for name in (
            "events", "stores", "stores_accepted", "loads",
            "digest_mismatches", "missing_pages", "bytes_moved",
            "channel_bytes",
        ):
            session.registry.gauge(
                f"replay.{name}", scenario=self.trace.name
            ).set(getattr(report, name))
        session.add_stats("replay_target", self.target.stats)
        session.annotate("replay", report.as_dict())


def replay_trace(
    trace: ScenarioTrace,
    target: FarMemoryTier,
    **kwargs,
) -> ReplayReport:
    """One-shot convenience wrapper around :class:`TraceReplayer`."""
    return TraceReplayer(trace, target, **kwargs).run()


def format_report(report: ReplayReport) -> str:
    """Human-readable replay summary for the CLI."""
    doc = report.as_dict()
    per_tier = doc.pop("per_tier")
    percentiles = doc.pop("latency_percentiles", [])
    lines = [
        f"replay: scenario={report.scenario} backend={report.backend}"
    ]
    for key in sorted(doc):
        if key in ("scenario", "backend"):
            continue
        lines.append(f"  {key:24s}: {doc[key]}")
    if per_tier:
        lines.append("  per-tier:")
        for name, counters in per_tier.items():
            rendered = " ".join(
                f"{key}={value}" for key, value in sorted(counters.items())
            )
            lines.append(f"    {name:12s}: {rendered}")
    if percentiles:
        from repro.analysis.report import format_latency_table

        lines.append("  latency percentiles:")
        table = format_latency_table(percentiles)
        lines.extend("    " + line for line in table.splitlines())
    return "\n".join(lines)
