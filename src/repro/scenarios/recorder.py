"""TraceRecorder: shadow any FarMemoryTier and record its data plane.

The recorder wraps a concrete tier (any of the four backends or a whole
:class:`~repro.tiering.pipeline.TierPipeline`) and satisfies the
:class:`~repro.tiering.protocol.FarMemoryTier` protocol itself, so it
drops transparently into the zswap frontend, the AIFM runtime, the
web-frontend workload, or application code. Every protocol-level
``swap_out`` / ``swap_in`` / ``promote`` / ``invalidate`` — plus the
pipeline's keyed ``store`` / ``load`` / ``promote_key`` convenience API —
is forwarded to the inner tier and appended to a
:class:`~repro.scenarios.format.ScenarioTrace` with the page's content
digest, the simulated timestamp, and an origin tag (``accepted``,
``reject:<reason>``, ``demand``, ``prefetch``, ``upward``).

Timestamps come from the shared simulated clock
(:data:`repro.sim.CLOCK`); when the driving workload does not advance
that clock the recorder self-advances by ``tick_ns`` per event so
replay ordering is always well-defined.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sfm.page import Page
from repro.scenarios.format import (
    OP_INVALIDATE,
    OP_LOAD,
    OP_PROMOTE,
    OP_STORE,
    ORIGIN_UPWARD,
    ScenarioTrace,
)
from repro.sim import CLOCK as _sim_clock
from repro.tiering.protocol import FarMemoryTier, SwapOutcome


class TraceRecorder:
    """A recording shim around one far-memory tier."""

    def __init__(
        self,
        inner: FarMemoryTier,
        name: str = "recorded",
        seed: int = 0,
        meta: Optional[Dict[str, object]] = None,
        tick_ns: float = 1_000.0,
    ) -> None:
        self.inner = inner
        self.tick_ns = tick_ns
        full_meta = {"recorded_from": getattr(inner, "tier_name", "?")}
        if meta:
            full_meta.update(meta)
        self.trace = ScenarioTrace(name=name, seed=seed, meta=full_meta)
        #: vaddr -> digest of the last stored content (promote events
        #: reference data without moving it, so the digest comes from
        #: this map rather than from returned bytes).
        self._digests: Dict[int, str] = {}
        self._last_t_ns = -tick_ns

    # -- timestamping --------------------------------------------------------

    def _now_ns(self) -> float:
        """Simulated-clock timestamp, self-advancing when the workload
        leaves the clock parked (keeps event times strictly increasing)."""
        t = _sim_clock.now_ns()
        if t <= self._last_t_ns:
            t = self._last_t_ns + self.tick_ns
        self._last_t_ns = t
        return t

    def _record(self, op: str, vaddr: int, digest: str = "",
                compressed_len: int = 0, origin: str = "") -> None:
        self.trace.append(
            self._now_ns(), op, vaddr, digest=digest,
            compressed_len=compressed_len, origin=origin,
        )

    # -- protocol: data plane (recorded) -------------------------------------

    def swap_out(self, page: Page) -> SwapOutcome:
        digest = self.trace.add_page(page.data)
        outcome = self.inner.swap_out(page)
        origin = "accepted" if outcome.accepted else f"reject:{outcome.reason}"
        self._record(
            OP_STORE, page.vaddr, digest,
            compressed_len=outcome.compressed_len, origin=origin,
        )
        if outcome.accepted:
            self._digests[page.vaddr] = digest
        return outcome

    def swap_in(self, page: Page) -> bytes:
        data = self.inner.swap_in(page)
        digest = self.trace.add_page(data)
        self._record(OP_LOAD, page.vaddr, digest, origin="demand")
        self._digests.pop(page.vaddr, None)
        return data

    def promote(self, page: Page) -> bytes:
        data = self.inner.promote(page)
        digest = self.trace.add_page(data)
        self._record(OP_LOAD, page.vaddr, digest, origin="prefetch")
        self._digests.pop(page.vaddr, None)
        return data

    def invalidate(self, vaddr: int) -> bool:
        dropped = self.inner.invalidate(vaddr)
        if dropped:
            self._record(OP_INVALIDATE, vaddr)
            self._digests.pop(vaddr, None)
        return dropped

    # -- keyed convenience API (recorded when the inner tier has one) --------

    def store(self, key: int, data: bytes) -> bool:
        digest = self.trace.add_page(data)
        accepted = self.inner.store(key, data)
        vaddr = key * self.trace.page_size
        origin = "accepted" if accepted else "reject:all-tiers-rejected"
        self._record(OP_STORE, vaddr, digest, origin=origin)
        if accepted:
            self._digests[vaddr] = digest
        return accepted

    def load(self, key: int) -> Optional[bytes]:
        data = self.inner.load(key)
        if data is not None:
            vaddr = key * self.trace.page_size
            digest = self.trace.add_page(data)
            self._record(OP_LOAD, vaddr, digest, origin="demand")
            self._digests.pop(vaddr, None)
        return data

    def promote_key(self, key: int) -> Optional[str]:
        landed = self.inner.promote_key(key)
        if landed is not None:
            vaddr = key * self.trace.page_size
            digest = self._digests.get(vaddr, "")
            self._record(OP_PROMOTE, vaddr, digest, origin=ORIGIN_UPWARD)
        return landed

    # -- protocol: passthrough ------------------------------------------------

    @property
    def stats(self):
        return self.inner.stats

    @property
    def ledger(self):
        return self.inner.ledger

    @property
    def capacity_bytes(self) -> int:
        return self.inner.capacity_bytes

    @property
    def tier_name(self) -> str:
        return self.inner.tier_name

    def contains(self, vaddr: int) -> bool:
        return self.inner.contains(vaddr)

    def stored_pages(self) -> int:
        return self.inner.stored_pages()

    def used_bytes(self) -> int:
        return self.inner.used_bytes()

    def effective_bytes_freed(self) -> int:
        return self.inner.effective_bytes_freed()

    def compact(self) -> int:
        return self.inner.compact()

    def swap_latency_s(self, direction: str) -> float:
        return self.inner.swap_latency_s(direction)

    def __getattr__(self, attr: str):
        # Anything beyond the protocol (registry, breakers, tier_of, ...)
        # passes through un-recorded.
        return getattr(self.inner, attr)
