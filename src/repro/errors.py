"""Exception hierarchy for the XFM reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single except clause while still
letting programming errors (``TypeError``, ``ValueError`` from misuse of the
stdlib, ...) propagate untouched.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class CompressionError(ReproError):
    """A codec failed to encode or decode a buffer."""


class CorruptStreamError(CompressionError):
    """A compressed stream failed validation during decode."""


class DramProtocolError(ReproError):
    """A DRAM command violated the device's timing or state rules."""


class AddressMapError(ReproError):
    """A physical address cannot be mapped onto the DRAM topology."""


class SfmError(ReproError):
    """An SFM control-plane or backend operation failed."""


class ZpoolFullError(SfmError):
    """The compressed pool has no room for a new entry, even after compaction."""


class EntryNotFoundError(SfmError):
    """Lookup of a swapped-out page in the far-memory index failed."""


class XfmError(ReproError):
    """An XFM device, driver, or backend operation failed."""


class SpmFullError(XfmError):
    """The scratchpad memory cannot admit another page."""


class QueueFullError(XfmError):
    """The Compress_Request_Queue is at capacity."""


class MmioError(XfmError):
    """An MMIO access targeted an unknown or read-only register."""


class ConfigError(ReproError):
    """A model was constructed with inconsistent or out-of-range parameters."""


class DeviceFault(ReproError):
    """A (possibly transient) hardware-level failure: a lost doorbell, an
    accelerator stall/timeout, or a far-memory link error.

    Transient by contract: callers are expected to retry (see
    :func:`repro.resilience.retry.retry_with_backoff`) before degrading
    to a fallback path or reporting the device unavailable.
    """


class CorruptedBlobError(SfmError):
    """A stored blob failed its integrity check and could not be
    recovered by re-reading — the page's contents are lost (poisoned).

    Carries ``vaddr`` when the failing page is known, so poison-page
    accounting can report *which* page was lost to the caller.
    """

    def __init__(self, message: str, vaddr: int = -1) -> None:
        super().__init__(message)
        self.vaddr = vaddr


class TierUnavailableError(ReproError):
    """A far-memory tier is (temporarily) unreachable: retries against a
    faulting device were exhausted, or its circuit breaker is open.

    Unlike :class:`CorruptedBlobError` the stored data still exists —
    the operation may succeed once the tier recovers.
    """


class ScenarioError(ReproError):
    """A scenario artifact (swap trace or ingested corpus) is unusable."""


class TraceFormatError(ScenarioError):
    """A swap-trace file is truncated, corrupt, or schema-invalid."""


class TraceVersionError(TraceFormatError):
    """A swap-trace file declares a format version this code can't read."""


class ManifestError(ScenarioError):
    """A corpus manifest is corrupt, schema-invalid, or inconsistent
    with its page files."""
