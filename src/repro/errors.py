"""Exception hierarchy for the XFM reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single except clause while still
letting programming errors (``TypeError``, ``ValueError`` from misuse of the
stdlib, ...) propagate untouched.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class CompressionError(ReproError):
    """A codec failed to encode or decode a buffer."""


class CorruptStreamError(CompressionError):
    """A compressed stream failed validation during decode."""


class DramProtocolError(ReproError):
    """A DRAM command violated the device's timing or state rules."""


class AddressMapError(ReproError):
    """A physical address cannot be mapped onto the DRAM topology."""


class SfmError(ReproError):
    """An SFM control-plane or backend operation failed."""


class ZpoolFullError(SfmError):
    """The compressed pool has no room for a new entry, even after compaction."""


class EntryNotFoundError(SfmError):
    """Lookup of a swapped-out page in the far-memory index failed."""


class XfmError(ReproError):
    """An XFM device, driver, or backend operation failed."""


class SpmFullError(XfmError):
    """The scratchpad memory cannot admit another page."""


class QueueFullError(XfmError):
    """The Compress_Request_Queue is at capacity."""


class MmioError(XfmError):
    """An MMIO access targeted an unknown or read-only register."""


class ConfigError(ReproError):
    """A model was constructed with inconsistent or out-of-range parameters."""


class DeviceFault(ReproError):
    """A (possibly transient) hardware-level failure: a lost doorbell, an
    accelerator stall/timeout, or a far-memory link error.

    Transient by contract: callers are expected to retry (see
    :func:`repro.resilience.retry.retry_with_backoff`) before degrading
    to a fallback path or reporting the device unavailable.
    """


class CorruptedBlobError(SfmError):
    """A stored blob failed its integrity check and could not be
    recovered by re-reading — the page's contents are lost (poisoned).

    Carries ``vaddr`` when the failing page is known, so poison-page
    accounting can report *which* page was lost to the caller.
    """

    def __init__(self, message: str, vaddr: int = -1) -> None:
        super().__init__(message)
        self.vaddr = vaddr


class TierUnavailableError(ReproError):
    """A far-memory tier is (temporarily) unreachable: retries against a
    faulting device were exhausted, or its circuit breaker is open.

    Unlike :class:`CorruptedBlobError` the stored data still exists —
    the operation may succeed once the tier recovers.
    """


class OverloadError(ReproError):
    """The serving layer refused work to protect itself (load shedding).

    Raised *before* any work is done on the request — admission control
    found the tenant over quota, the target shard's queue was full, or
    the request could no longer meet its deadline. Carries a
    machine-readable ``reason`` and a ``retry_after_ns`` hint (simulated
    nanoseconds) so callers back off instead of hammering; well-behaved
    clients retry once the hint elapses, charging the shared retry
    budget (:class:`RetryBudgetExhausted`).
    """

    def __init__(
        self, message: str, reason: str = "overload",
        retry_after_ns: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.retry_after_ns = retry_after_ns


class RetryBudgetExhausted(OverloadError):
    """The fleet-wide retry budget is spent: the retry is refused
    outright (fast-fail) rather than amplifying an overload into a
    retry storm. Clients must treat this as a terminal failure for the
    attempt — not something to retry harder."""

    def __init__(self, message: str, retry_after_ns: float = 0.0) -> None:
        super().__init__(
            message, reason="retry-budget", retry_after_ns=retry_after_ns
        )


class ScenarioError(ReproError):
    """A scenario artifact (swap trace or ingested corpus) is unusable."""


class TraceFormatError(ScenarioError):
    """A swap-trace file is truncated, corrupt, or schema-invalid."""


class TraceVersionError(TraceFormatError):
    """A swap-trace file declares a format version this code can't read."""


class ManifestError(ScenarioError):
    """A corpus manifest is corrupt, schema-invalid, or inconsistent
    with its page files."""
