"""OS page representation used throughout the SFM stack.

SFM swap ins and outs happen at OS-page granularity (§1: this is one of the
properties that makes SFM a good near-memory offload target). A
:class:`Page` carries its virtual address, its current resident data, and
the access metadata the cold-page controllers use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigError

PAGE_SIZE = 4096


@dataclass
class Page:
    """One 4 KiB application page with access-tracking metadata."""

    vaddr: int
    data: Optional[bytes] = None
    #: Simulation time of the most recent access, seconds.
    last_access_s: float = 0.0
    #: Total accesses observed (controller statistics).
    access_count: int = 0
    #: True while the page lives in far memory (compressed).
    swapped: bool = False

    def __post_init__(self) -> None:
        if self.vaddr % PAGE_SIZE:
            raise ConfigError(
                f"vaddr 0x{self.vaddr:x} is not page-aligned"
            )
        if self.data is not None and len(self.data) != PAGE_SIZE:
            raise ConfigError(
                f"page data must be {PAGE_SIZE} bytes, got {len(self.data)}"
            )

    def touch(self, now_s: float) -> None:
        """Record an access at time ``now_s``."""
        self.last_access_s = now_s
        self.access_count += 1

    def idle_s(self, now_s: float) -> float:
        """Seconds since the last access."""
        return now_s - self.last_access_s

    def is_cold(self, now_s: float, threshold_s: float) -> bool:
        """Google's criterion (§3.1): no access for ``threshold_s``."""
        return self.idle_s(now_s) >= threshold_s
