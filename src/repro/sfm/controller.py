"""SFM control plane: cold-page selection policies.

Two policies mirror the production systems the paper describes (§2.1):

* :class:`ColdScanController` — Google's approach: a kstaled-like scanner
  periodically sweeps page access timestamps and nominates pages idle
  longer than a cold-age threshold (120 s in Google's fleet, yielding
  ~30% cold memory and a ~15% promotion rate, §3.1).
* :class:`PressureController` — Meta's senpai approach: drive reclaim from
  a pressure signal, adapting the cold-age threshold so the observed
  refault (premature swap-in) rate stays under a target.

Both return candidate lists; the backend decides acceptance (compressible,
pool space). Neither touches page *contents* — control plane and data
plane are separate, which is what lets XFM swap the data plane out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

from repro.errors import ConfigError
from repro.sfm.page import Page


@dataclass
class ColdScanController:
    """Periodic cold-age scanner (kstaled/kreclaimd-like)."""

    cold_threshold_s: float = 120.0
    scan_period_s: float = 60.0
    #: Cap on candidates per scan (reclaim batching).
    max_candidates_per_scan: int = 1 << 20
    _last_scan_s: float = field(default=float("-inf"), init=False)

    def __post_init__(self) -> None:
        if self.cold_threshold_s <= 0 or self.scan_period_s <= 0:
            raise ConfigError("thresholds must be positive")

    def due(self, now_s: float) -> bool:
        """Whether a scan is due at ``now_s``."""
        return now_s - self._last_scan_s >= self.scan_period_s

    def scan(self, pages: Iterable[Page], now_s: float) -> List[Page]:
        """Return resident pages idle for at least the cold threshold,
        coldest first."""
        self._last_scan_s = now_s
        cold = [
            page
            for page in pages
            if not page.swapped and page.is_cold(now_s, self.cold_threshold_s)
        ]
        cold.sort(key=lambda page: page.last_access_s)
        return cold[: self.max_candidates_per_scan]


@dataclass
class PressureController:
    """Refault-feedback controller (senpai-like).

    The cold-age threshold breathes: every adjustment period, if the
    refault rate (swap-ins of pages that were swapped out within
    ``refault_horizon_s``) exceeds the target, the threshold grows
    (reclaim less aggressively); otherwise it shrinks, probing for more
    reclaimable memory — exactly senpai's proportional probing.
    """

    initial_threshold_s: float = 120.0
    min_threshold_s: float = 15.0
    max_threshold_s: float = 1800.0
    #: Acceptable refaults per minute before backing off.
    target_refaults_per_min: float = 8.0
    adjust_period_s: float = 60.0
    growth: float = 1.5
    shrink: float = 0.9
    refault_horizon_s: float = 60.0

    _threshold_s: float = field(init=False)
    _refaults_in_period: int = field(default=0, init=False)
    _last_adjust_s: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if not (
            self.min_threshold_s
            <= self.initial_threshold_s
            <= self.max_threshold_s
        ):
            raise ConfigError("initial threshold outside [min, max]")
        if self.growth <= 1.0 or not 0.0 < self.shrink < 1.0:
            raise ConfigError("growth must exceed 1 and shrink be in (0,1)")
        self._threshold_s = self.initial_threshold_s

    @property
    def threshold_s(self) -> float:
        return self._threshold_s

    def record_refault(self, swapped_for_s: float) -> None:
        """Report a swap-in; counts as a refault if the page spent less
        than the horizon in far memory."""
        if swapped_for_s < self.refault_horizon_s:
            self._refaults_in_period += 1

    def maybe_adjust(self, now_s: float) -> None:
        """Apply the proportional threshold adjustment if a period elapsed."""
        if now_s - self._last_adjust_s < self.adjust_period_s:
            return
        elapsed_min = (now_s - self._last_adjust_s) / 60.0
        rate = self._refaults_in_period / elapsed_min if elapsed_min else 0.0
        if rate > self.target_refaults_per_min:
            self._threshold_s = min(
                self.max_threshold_s, self._threshold_s * self.growth
            )
        else:
            self._threshold_s = max(
                self.min_threshold_s, self._threshold_s * self.shrink
            )
        self._refaults_in_period = 0
        self._last_adjust_s = now_s

    def scan(self, pages: Iterable[Page], now_s: float) -> List[Page]:
        """Candidates under the current adaptive threshold, coldest first."""
        self.maybe_adjust(now_s)
        cold = [
            page
            for page in pages
            if not page.swapped and page.is_cold(now_s, self._threshold_s)
        ]
        cold.sort(key=lambda page: page.last_access_s)
        return cold
