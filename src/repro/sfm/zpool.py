"""zsmalloc-style compressed-memory pool (zpool).

zswap stores compressed pages inside encapsulating OS pages via zsmalloc,
packing as many objects per page as possible at the cost of intermittent
compaction that memcpy-shifts objects to squeeze out holes (§2.1, §6).
This pool reproduces that behaviour: first-fit allocation of variable-size
blobs into 4 KiB slabs, explicit :meth:`Zpool.compact` that both shifts
objects within slabs and migrates objects out of nearly-empty slabs, and
accounting of the memcpy traffic compaction generates (the cost
``xfm_compact()`` exposes to the SFM controller).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError, EntryNotFoundError, ZpoolFullError
from repro.resilience import faults as _faults
from repro.sfm.page import PAGE_SIZE
from repro.validation.hooks import checkpoint


@dataclass(frozen=True)
class ZpoolEntry:
    """Snapshot of one stored object's location."""

    handle: int
    slab: int
    offset: int
    length: int


class _Slab:
    """One encapsulating OS page holding packed compressed objects."""

    __slots__ = ("buffer", "entries")

    def __init__(self, size: int) -> None:
        self.buffer = bytearray(size)
        #: handle -> (offset, length), kept sorted by offset on demand.
        self.entries: Dict[int, Tuple[int, int]] = {}

    def used_bytes(self) -> int:
        return sum(length for _, length in self.entries.values())

    def gaps(self, size: int) -> List[Tuple[int, int]]:
        """Free (offset, length) intervals, in offset order."""
        spans = sorted(self.entries.values())
        out: List[Tuple[int, int]] = []
        cursor = 0
        for offset, length in spans:
            if offset > cursor:
                out.append((cursor, offset - cursor))
            cursor = offset + length
        if cursor < size:
            out.append((cursor, size - cursor))
        return out

    def first_fit(self, length: int, size: int) -> Optional[int]:
        """Offset of the first gap that fits ``length`` bytes, or None."""
        for offset, gap in self.gaps(size):
            if gap >= length:
                return offset
        return None

    def shift_compact(self) -> int:
        """Slide all objects to the front of the slab; returns bytes moved."""
        moved = 0
        cursor = 0
        for handle, (offset, length) in sorted(
            self.entries.items(), key=lambda item: item[1][0]
        ):
            if offset != cursor:
                self.buffer[cursor : cursor + length] = self.buffer[
                    offset : offset + length
                ]
                self.entries[handle] = (cursor, length)
                moved += length
            cursor += length
        return moved


class Zpool:
    """Bounded pool of slabs holding compressed page blobs."""

    def __init__(self, capacity_bytes: int, slab_size: int = PAGE_SIZE) -> None:
        if capacity_bytes < slab_size:
            raise ConfigError(
                f"capacity {capacity_bytes} below one slab ({slab_size})"
            )
        self.slab_size = slab_size
        self.max_slabs = capacity_bytes // slab_size
        self._slabs: List[Optional[_Slab]] = []
        self._locator: Dict[int, Tuple[int, int, int]] = {}
        self._next_handle = 1
        self.compaction_memcpy_bytes = 0
        self.compactions = 0
        self.stores = 0
        self.loads = 0

    # -- capacity accounting ---------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return self.max_slabs * self.slab_size

    def used_slabs(self) -> int:
        return sum(1 for slab in self._slabs if slab is not None)

    def stored_bytes(self) -> int:
        """Total payload bytes currently stored."""
        return sum(length for _, _, length in self._locator.values())

    def occupancy(self) -> float:
        """Stored payload over the pool's slab footprint."""
        footprint = self.used_slabs() * self.slab_size
        return self.stored_bytes() / footprint if footprint else 0.0

    def fragmentation(self) -> float:
        """Fraction of slab footprint that is neither payload nor a usable
        whole free slab — the space compaction can win back."""
        footprint = self.used_slabs() * self.slab_size
        if not footprint:
            return 0.0
        return 1.0 - self.stored_bytes() / footprint

    def __len__(self) -> int:
        return len(self._locator)

    def __contains__(self, handle: int) -> bool:
        return handle in self._locator

    # -- allocation --------------------------------------------------------------

    def store(self, blob: bytes) -> int:
        """Store ``blob``; returns its handle.

        Raises :class:`ZpoolFullError` if the blob does not fit even after
        compaction (the caller's cue to stop selecting swap-out candidates).
        """
        if not blob:
            raise ConfigError("cannot store an empty blob")
        if len(blob) > self.slab_size:
            raise ConfigError(
                f"blob of {len(blob)} bytes exceeds slab size "
                f"{self.slab_size}; incompressible pages stay resident"
            )
        placement = self._place(len(blob))
        if placement is None:
            self.compact()
            placement = self._place(len(blob))
        if placement is None:
            raise ZpoolFullError(
                f"no room for {len(blob)} bytes "
                f"({self.used_slabs()}/{self.max_slabs} slabs)"
            )
        slab_index, offset = placement
        slab = self._slabs[slab_index]
        assert slab is not None
        slab.buffer[offset : offset + len(blob)] = blob
        handle = self._next_handle
        self._next_handle += 1
        slab.entries[handle] = (offset, len(blob))
        self._locator[handle] = (slab_index, offset, len(blob))
        self.stores += 1
        checkpoint(self)
        return handle

    def _place(self, length: int) -> Optional[Tuple[int, int]]:
        for index, slab in enumerate(self._slabs):
            if slab is None:
                continue
            offset = slab.first_fit(length, self.slab_size)
            if offset is not None:
                return index, offset
        # Reuse a released slot or grow the pool.
        for index, slab in enumerate(self._slabs):
            if slab is None:
                self._slabs[index] = _Slab(self.slab_size)
                return index, 0
        if len(self._slabs) < self.max_slabs:
            self._slabs.append(_Slab(self.slab_size))
            return len(self._slabs) - 1, 0
        return None

    def load(self, handle: int) -> bytes:
        """Read a stored blob without freeing it.

        Two injection sites live here: ``zpool.media_corruption`` flips
        a bit in the backing slab itself (persistent — every re-read
        sees it; the page is lost and must be poisoned), while
        ``zpool.read_corruption`` flips a bit only in the returned copy
        (transient — a re-read heals it).
        """
        slab_index, offset, length = self._lookup(handle)
        slab = self._slabs[slab_index]
        assert slab is not None
        self.loads += 1
        data = bytes(slab.buffer[offset : offset + length])
        if _faults.injection_enabled():
            event = _faults.fire(_faults.ZPOOL_MEDIA_CORRUPTION)
            if event is not None:
                data = _faults.corrupt_bytes(data, event.salt)
                slab.buffer[offset : offset + length] = data
            else:
                event = _faults.fire(_faults.ZPOOL_READ_CORRUPTION)
                if event is not None:
                    data = _faults.corrupt_bytes(data, event.salt)
        return data

    def free(self, handle: int) -> int:
        """Release a blob; returns its length. Empty slabs are returned to
        the pool (this is how SFM capacity flexes, §4.2)."""
        slab_index, offset, length = self._lookup(handle)
        slab = self._slabs[slab_index]
        assert slab is not None
        del slab.entries[handle]
        del self._locator[handle]
        if not slab.entries:
            self._slabs[slab_index] = None
        checkpoint(self)
        return length

    def entry(self, handle: int) -> ZpoolEntry:
        slab_index, offset, length = self._lookup(handle)
        return ZpoolEntry(handle=handle, slab=slab_index, offset=offset, length=length)

    def _lookup(self, handle: int) -> Tuple[int, int, int]:
        try:
            return self._locator[handle]
        except KeyError:
            raise EntryNotFoundError(f"unknown handle {handle}") from None

    # -- compaction ---------------------------------------------------------------

    def compact(self) -> int:
        """Shift objects within slabs and migrate objects out of
        lightly-used slabs; returns total memcpy bytes."""
        self.compactions += 1
        moved = 0
        for index, slab in enumerate(self._slabs):
            if slab is None:
                continue
            moved += slab.shift_compact()
            for handle, (offset, length) in slab.entries.items():
                self._locator[handle] = (index, offset, length)

        # Migrate from emptiest slabs into fuller ones to release slabs.
        order = sorted(
            (
                index
                for index, slab in enumerate(self._slabs)
                if slab is not None
            ),
            key=lambda index: self._slabs[index].used_bytes(),  # type: ignore[union-attr]
        )
        for source_index in order:
            source = self._slabs[source_index]
            if source is None:
                continue
            for handle in list(source.entries):
                offset, length = source.entries[handle]
                target = self._find_migration_target(length, source_index)
                if target is None:
                    continue
                target_index, target_offset = target
                target_slab = self._slabs[target_index]
                assert target_slab is not None
                blob = source.buffer[offset : offset + length]
                target_slab.buffer[
                    target_offset : target_offset + length
                ] = blob
                target_slab.entries[handle] = (target_offset, length)
                del source.entries[handle]
                self._locator[handle] = (target_index, target_offset, length)
                moved += length
            if not source.entries:
                self._slabs[source_index] = None
        self.compaction_memcpy_bytes += moved
        checkpoint(self)
        return moved

    def _find_migration_target(
        self, length: int, exclude: int
    ) -> Optional[Tuple[int, int]]:
        """A slab (other than ``exclude``) with room, fullest-first so
        migration empties slabs instead of spreading objects."""
        candidates = sorted(
            (
                index
                for index, slab in enumerate(self._slabs)
                if slab is not None and index != exclude
            ),
            key=lambda index: -self._slabs[index].used_bytes(),  # type: ignore[union-attr]
        )
        for index in candidates:
            slab = self._slabs[index]
            assert slab is not None
            offset = slab.first_fit(length, self.slab_size)
            if offset is not None:
                return index, offset
        return None
