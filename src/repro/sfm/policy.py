"""Offload policy: when should decompression go to the NMA? (§3.2)

The paper gives the SFM controller two disqualifiers for near-memory
decompression: (1) the NMA's decompression latency exceeds the CPU's, and
(2) the I/O amplification ratio is too low — the decompressed page would
have been consumed straight out of the cache hierarchy, so moving the
work to memory saves no channel traffic.

The I/O amplification ratio is defined as compressed bytes crossing the
channel over decompressed bytes the application actually uses. It rises
with LLC contention and with the *use distance* of the decompressed bytes
(a page decompressed long before use gets written back to DRAM and
re-read). :func:`io_amplification_ratio` models that dependence;
:class:`OffloadPolicy` packages the §3.2 decision for the controller, and
is what justifies §6's choice of ``do_offload`` only for prefetches —
prefetched pages have long use distances by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sfm.page import PAGE_SIZE


def io_amplification_ratio(
    compression_ratio: float,
    writeback_probability: float,
) -> float:
    """Channel bytes with CPU-side decompression per byte of page.

    CPU decompression reads the blob (PAGE/ratio bytes) and produces the
    page in cache; with probability ``writeback_probability`` (rising
    with LLC contention and use distance) the page is written back to
    DRAM and read again at use time, adding 2 x PAGE_SIZE of traffic.
    Normalized to PAGE_SIZE: ratio >= 1/compression_ratio.
    """
    if compression_ratio <= 0:
        raise ConfigError("compression_ratio must be positive")
    if not 0.0 <= writeback_probability <= 1.0:
        raise ConfigError("writeback_probability must be in [0, 1]")
    blob_fraction = 1.0 / compression_ratio
    return blob_fraction + 2.0 * writeback_probability


def writeback_probability(
    use_distance_s: float,
    llc_contention: float,
    residency_halflife_s: float = 0.05,
) -> float:
    """Probability a freshly decompressed page leaves the LLC before use.

    Exponential decay of cache residency with use distance, accelerated
    by contention: ``1 - exp(-d * (1 + k*contention) / halflife)`` — the
    §3.2 mechanism ("if there is contention on the LLC or the use-distance
    ... is long, the I/O amplification ratio increases").
    """
    import math

    if use_distance_s < 0:
        raise ConfigError("use_distance must be non-negative")
    if not 0.0 <= llc_contention <= 1.0:
        raise ConfigError("llc_contention must be in [0, 1]")
    rate = (1.0 + 4.0 * llc_contention) / residency_halflife_s
    return 1.0 - math.exp(-use_distance_s * rate)


@dataclass(frozen=True)
class OffloadPolicy:
    """The controller's per-promotion offload decision."""

    #: NMA decompression latency for one page (engine + side-channel wait).
    nma_decompress_latency_s: float = 30e-6
    #: CPU decompression latency for one page.
    cpu_decompress_latency_s: float = 8e-6
    #: Offload pays off when CPU-side traffic would exceed this multiple
    #: of the offloaded traffic (blob only).
    min_amplification_gain: float = 1.5

    def should_offload(
        self,
        compression_ratio: float,
        use_distance_s: float,
        llc_contention: float,
        latency_critical: bool,
    ) -> bool:
        """§3.2's two conditions, plus the fault-path rule of §6.

        A latency-critical promotion (demand fault) only offloads if the
        NMA is actually faster; a prefetch offloads whenever the channel-
        traffic saving is material.
        """
        if latency_critical:
            return (
                self.nma_decompress_latency_s
                < self.cpu_decompress_latency_s
            )
        amplification = io_amplification_ratio(
            compression_ratio,
            writeback_probability(use_distance_s, llc_contention),
        )
        offloaded_traffic = 1.0 / compression_ratio  # blob via side channel
        return amplification >= offloaded_traffic * self.min_amplification_gain

    def traffic_saved_bytes(
        self,
        compression_ratio: float,
        use_distance_s: float,
        llc_contention: float,
    ) -> float:
        """Channel bytes saved per page by offloading its decompression."""
        amplification = io_amplification_ratio(
            compression_ratio,
            writeback_probability(use_distance_s, llc_contention),
        )
        return max(0.0, amplification * PAGE_SIZE)
