"""Baseline CPU SFM backend: the zswap-like ``swapOut``/``swapIn`` path.

Implements the control flow of §6's baseline: ``swap_out`` checks pool
capacity (compacting if needed), compresses the cold page on the CPU, and
stores it in the zpool with an rbtree index entry; ``swap_in`` looks up the
entry, decompresses, and returns the page. Every step charges CPU cycles
(via the codec's :class:`~repro.compression.base.CodecSpec`) and DDR
channel traffic (cold page read + compressed write, and the reverse on
swap-in) — overheads O2/O3 of §3.2 that XFM later removes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.compression.base import Codec
from repro.compression.zstd_like import ZstdLikeCodec
from repro.errors import (
    ConfigError,
    CorruptedBlobError,
    CorruptStreamError,
    SfmError,
    ZpoolFullError,
)
from repro.resilience.integrity import BlobRecord, content_digest
from repro.resilience.retry import retry_with_backoff
from repro.sfm.digest_cache import (
    DIGEST_CYCLES_PER_BYTE,
    DigestPageCache,
    page_digest,
)
from repro.sfm.metrics import BandwidthLedger, SwapStats
from repro.sfm.page import PAGE_SIZE, Page
from repro.sfm.rbtree import RedBlackTree
from repro.sfm.zpool import Zpool
from repro.telemetry import flightrec as _flightrec
from repro.telemetry import spans as _spans
from repro.telemetry import trace as _trace
from repro.telemetry.registry import MetricsRegistry

# Canonical home is the tier protocol; re-exported here so historical
# ``from repro.sfm.backend import SwapOutcome`` imports keep working.
from repro.tiering.protocol import SwapOutcome

__all__ = ["BLOB_SIZE_BUCKETS", "SfmBackend", "SwapOutcome"]

#: Compressed-blob size histogram bounds (bytes): page fractions the
#: Fig. 8 ratio sweeps care about.
BLOB_SIZE_BUCKETS = (256, 512, 1024, 1536, 2048, 3072, 4096)


class SfmBackend:
    """CPU-compression far-memory backend over a bounded zpool."""

    #: Pages compressing worse than this fraction of PAGE_SIZE are
    #: rejected: storing them would waste pool space (zswap rejects
    #: same-size-or-bigger results; production stacks use a threshold).
    max_stored_fraction = 0.9

    def __init__(
        self,
        capacity_bytes: int,
        codec: Optional[Codec] = None,
        cpu_freq_hz: float = 2.6e9,
        page_cache_entries: int = 1024,
        registry: Optional[MetricsRegistry] = None,
        ledger: Optional[BandwidthLedger] = None,
        tier: Optional[str] = None,
    ) -> None:
        self.codec = codec if codec is not None else ZstdLikeCodec()
        self.cpu_freq_hz = cpu_freq_hz
        self.zpool = Zpool(capacity_bytes)
        self.index = RedBlackTree()
        #: Per-System metrics home: swap counters, driver counters (XFM),
        #: and the blob-size histogram all live here.
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Report/registry label; ``tier=None`` keeps the historical
        #: unlabelled series names (the single-backend case).
        self.tier_name = tier if tier is not None else "cpu"
        labels = {"tier": tier} if tier is not None else {}
        self.stats = SwapStats(registry=self.registry, labels=labels)
        self.blob_sizes = self.registry.histogram(
            "swap.blob_bytes", buckets=BLOB_SIZE_BUCKETS, **labels
        )
        self.ledger = ledger if ledger is not None else BandwidthLedger()
        #: Device-level latency quantiles per op class (simulated ns),
        #: recorded only under tracing; cached so the hot path skips the
        #: registry lookup.
        self._lat_store = self.registry.quantile(
            "op_latency_ns", op="store", tier=self.tier_name
        )
        self._lat_load = self.registry.quantile(
            "op_latency_ns", op="load", tier=self.tier_name
        )
        #: Content-keyed blob cache; ``page_cache_entries=0`` disables it.
        self.page_cache: Optional[DigestPageCache] = (
            DigestPageCache(page_cache_entries) if page_cache_entries else None
        )
        #: handle -> integrity record; checked on every swap-in so a
        #: corrupted blob is detected before (and after) decompression
        #: instead of returning garbage.
        self._integrity: Dict[int, BlobRecord] = {}

    # -- capacity ------------------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return self.zpool.capacity_bytes

    def stored_pages(self) -> int:
        return len(self.index)

    def used_bytes(self) -> int:
        """Pool footprint: slabs consumed times slab size."""
        return self.zpool.used_slabs() * self.zpool.slab_size

    def effective_bytes_freed(self) -> int:
        """Resident bytes released minus pool footprint consumed — the
        memory SFM actually wins back."""
        resident_released = self.stored_pages() * PAGE_SIZE
        footprint = self.zpool.used_slabs() * self.zpool.slab_size
        return resident_released - footprint

    def contains(self, vaddr: int) -> bool:
        return vaddr in self.index

    # -- swap-out path (compression) -------------------------------------------

    def swap_out(
        self, page: Page, _precompressed: Optional[bytes] = None
    ) -> SwapOutcome:
        """Compress ``page`` into far memory.

        Returns a rejected :class:`SwapOutcome` (rather than raising) when
        the page is incompressible or the pool is full — both are normal
        control-plane signals, not errors.

        ``_precompressed`` is the private hand-off from
        :meth:`swap_out_batch`: the blob for ``page.data`` computed by the
        codec's batch API. It only short-circuits the compressor call —
        every accept/reject decision, cycle charge, and cache update below
        is unchanged.
        """
        if page.swapped:
            raise SfmError(f"page 0x{page.vaddr:x} already swapped")
        if page.data is None:
            raise SfmError(f"page 0x{page.vaddr:x} has no resident data")

        blob = None
        if self.page_cache is not None:
            digest = page_digest(page.data)
            blob = self.page_cache.get(digest)
        if blob is not None:
            # Identical content was compressed before: reuse the blob and
            # pay only the hash, not the compressor.
            self.stats.digest_cache_hits += 1
            cycles = DIGEST_CYCLES_PER_BYTE * PAGE_SIZE
        else:
            if self.page_cache is not None:
                self.stats.digest_cache_misses += 1
            if _precompressed is not None:
                blob = _precompressed
            else:
                blob = self._compress(page.data)
            cycles = self.codec.spec.compress_cycles_per_byte * PAGE_SIZE
            if self.page_cache is not None:
                self.page_cache.put(digest, blob)
        self.stats.cpu_compress_cycles += cycles
        if _trace.tracing_enabled():
            dur_ns = cycles / self.cpu_freq_hz * 1e9
            _spans.emit_under(
                "cpu_compress",
                _trace.TRACK_CPU,
                _trace.clock_ns(),
                dur_ns,
                args={"cached": cycles == DIGEST_CYCLES_PER_BYTE * PAGE_SIZE},
            )
            _trace.advance_clock_ns(dur_ns)
            self._lat_store.observe(dur_ns)
        # O3: the cold page is read from DRAM, the blob written back.
        self.ledger.record("sfm_cpu", "read", PAGE_SIZE)

        if len(blob) > int(PAGE_SIZE * self.max_stored_fraction):
            self.stats.rejected += 1
            return SwapOutcome(
                accepted=False, reason="incompressible", cpu_cycles=cycles
            )
        try:
            handle = self.zpool.store(blob)
        except ZpoolFullError:
            self.stats.rejected += 1
            return SwapOutcome(
                accepted=False, reason="pool-full", cpu_cycles=cycles
            )
        self.ledger.record("sfm_cpu", "write", len(blob))
        self._record_integrity(handle, blob, page.data)
        self.index.insert(page.vaddr, handle)
        page.swapped = True
        page.data = None
        self.stats.swap_outs += 1
        self.stats.bytes_out_uncompressed += PAGE_SIZE
        self.stats.bytes_out_compressed += len(blob)
        self.blob_sizes.observe(len(blob))
        return SwapOutcome(
            accepted=True, compressed_len=len(blob), cpu_cycles=cycles
        )

    def _compress(self, data: bytes) -> bytes:
        return self.codec.compress(data)

    def swap_out_batch(self, pages: Sequence[Page]) -> List[SwapOutcome]:
        """Swap out many pages, batching the compressor hot path.

        Pages whose content will miss the digest cache are compressed in a
        single :meth:`~repro.compression.base.Codec.compress_batch` call
        up front; each page then takes the exact scalar :meth:`swap_out`
        path with its blob precomputed. Compression happens before every
        accept/reject decision in ``swap_out``, so outcomes, statistics,
        traces, and stored bytes are byte-identical to a sequential loop —
        batching is purely a host-performance optimisation. Duplicate
        contents inside one batch are compressed once; later copies hit
        the digest cache exactly as they would sequentially.

        Subclasses that replace the scalar path (e.g. the NMA offload in
        ``XfmBackend``) keep their per-page semantics: the batch defers to
        their ``swap_out`` page by page.
        """
        pages = list(pages)
        if type(self).swap_out is not SfmBackend.swap_out:
            return [self.swap_out(page) for page in pages]
        precomputed: List[Optional[bytes]] = [None] * len(pages)
        to_compress: List[int] = []
        seen_digests = set()
        for i, page in enumerate(pages):
            if page.swapped or page.data is None:
                continue  # scalar swap_out raises its usual error
            if self.page_cache is not None:
                # __contains__ deliberately does not refresh LRU order, so
                # probing here leaves the cache exactly as swap_out finds it.
                digest = page_digest(page.data)
                if digest in self.page_cache or digest in seen_digests:
                    continue
                seen_digests.add(digest)
            to_compress.append(i)
        if to_compress:
            blobs = self.codec.compress_batch(
                [pages[i].data for i in to_compress]
            )
            for i, blob in zip(to_compress, blobs):
                precomputed[i] = blob
        return [
            self.swap_out(page, _precompressed=precomputed[i])
            for i, page in enumerate(pages)
        ]

    # -- verified recovery -------------------------------------------------------

    def _record_integrity(
        self, handle: int, blob: bytes, page_data: bytes
    ) -> None:
        self._integrity[handle] = BlobRecord(
            blob_digest=content_digest(blob),
            page_digest=content_digest(page_data),
        )

    def _load_verified(self, handle: int, vaddr: int) -> bytes:
        """Load a blob and check it against its integrity record.

        A digest mismatch is *detected* corruption: re-reads (bounded,
        backed-off) heal transient read corruption and count as
        *recovered*; persistent media corruption exhausts the retries,
        poisons the page, and raises :class:`CorruptedBlobError` — an
        explicit data-loss report, never silent garbage.
        """
        record = self._integrity.get(handle)
        blob = self.zpool.load(handle)
        if record is None or record.blob_ok(blob):
            return blob
        self.stats.corruptions_detected += 1

        def reread() -> bytes:
            data = self.zpool.load(handle)
            if not record.blob_ok(data):
                raise CorruptedBlobError(
                    f"blob for page 0x{vaddr:x} failed its digest check",
                    vaddr=vaddr,
                )
            return data

        try:
            blob = retry_with_backoff(
                reread,
                retry_on=(CorruptedBlobError,),
                on_retry=self._count_transient_retry,
            )
        except CorruptedBlobError:
            self._poison(handle, vaddr)
            raise
        self.stats.corruptions_recovered += 1
        return blob

    def _count_transient_retry(
        self, attempt: int, exc: BaseException
    ) -> None:
        self.stats.transient_retries += 1

    def _poison(self, handle: int, vaddr: int) -> None:
        """Unrecoverable corruption: drop the blob and its index entry,
        account the loss, and leave the caller an explicit error."""
        self.stats.poison_pages += 1
        self.zpool.free(handle)
        if vaddr in self.index:
            self.index.delete(vaddr)
        self._integrity.pop(handle, None)
        if _trace.tracing_enabled():
            _spans.instant_under(
                "poison_page",
                _trace.TRACK_CPU,
                args={"vaddr": vaddr},
            )
        _flightrec.trigger(
            _flightrec.REASON_POISON,
            {"vaddr": vaddr, "tier": self.tier_name},
        )

    # -- swap-in path (decompression) ---------------------------------------------

    def swap_in(self, page: Page) -> bytes:
        """Decompress ``page`` back into local memory and return its data.

        Raises :class:`~repro.errors.CorruptedBlobError` when the stored
        blob fails verified recovery — the page is poisoned (dropped
        from the pool) and the caller must treat its contents as lost.
        """
        if not page.swapped:
            raise SfmError(f"page 0x{page.vaddr:x} is not in far memory")
        handle = self.index.lookup(page.vaddr)
        blob = self._load_verified(handle, page.vaddr)
        self.ledger.record("sfm_cpu", "read", len(blob))
        record = self._integrity.get(handle)
        try:
            data = self._decompress(blob)
        except CorruptStreamError:
            # The blob digest matched yet the stream is bad — recorded
            # corruption (stored corrupt): poison, report explicitly.
            self.stats.corruptions_detected += 1
            self._poison(handle, page.vaddr)
            raise CorruptedBlobError(
                f"stored blob for page 0x{page.vaddr:x} does not decode",
                vaddr=page.vaddr,
            ) from None
        if len(data) != PAGE_SIZE:
            raise SfmError(
                f"decompressed page is {len(data)} bytes, "
                f"expected {PAGE_SIZE}"
            )
        if record is not None and not record.page_ok(data):
            # The codec tolerated a flipped bit (e.g. in a literal run):
            # caught by the end-to-end page digest.
            self.stats.corruptions_detected += 1
            self._poison(handle, page.vaddr)
            raise CorruptedBlobError(
                f"page 0x{page.vaddr:x} decoded to different contents",
                vaddr=page.vaddr,
            )
        cycles = self.codec.spec.decompress_cycles_per_byte * PAGE_SIZE
        self.stats.cpu_decompress_cycles += cycles
        if _trace.tracing_enabled():
            dur_ns = cycles / self.cpu_freq_hz * 1e9
            _spans.emit_under(
                "cpu_decompress",
                _trace.TRACK_CPU,
                _trace.clock_ns(),
                dur_ns,
                args={"blob_bytes": len(blob)},
            )
            _trace.advance_clock_ns(dur_ns)
            self._lat_load.observe(dur_ns)
        self.ledger.record("sfm_cpu", "write", PAGE_SIZE)
        self.zpool.free(handle)
        self.index.delete(page.vaddr)
        self._integrity.pop(handle, None)
        page.swapped = False
        page.data = data
        self.stats.swap_ins += 1
        self.stats.bytes_in_uncompressed += PAGE_SIZE
        self.stats.bytes_in_compressed += len(blob)
        return data

    def _decompress(self, blob: bytes) -> bytes:
        return self.codec.decompress(blob)

    def promote(self, page: Page) -> bytes:
        """Promotion path; the CPU tier has no accelerator, so this is
        the demand path."""
        return self.swap_in(page)

    def peek(self, vaddr: int) -> bytes:
        """Decompress a far page without promoting it (diagnostics)."""
        handle = self.index.lookup(vaddr)
        return self._decompress(self.zpool.load(handle))

    def invalidate(self, vaddr: int) -> bool:
        """Drop the stored copy of ``vaddr`` without decompressing it
        (swap-slot-freed path); returns False when not held."""
        if vaddr not in self.index:
            return False
        handle = self.index.lookup(vaddr)
        self.zpool.free(handle)
        self.index.delete(vaddr)
        self._integrity.pop(handle, None)
        return True

    # -- maintenance ------------------------------------------------------------

    def compact(self) -> int:
        """Manually-initiated compaction (``xfm_compact`` analogue, §6)."""
        moved = self.zpool.compact()
        # Compaction memcpys cross the channel twice (read + write).
        self.ledger.record("sfm_cpu", "read", moved)
        self.ledger.record("sfm_cpu", "write", moved)
        return moved

    def swap_latency_s(self, direction: str) -> float:
        """Single-page CPU (de)compression latency at this backend's clock."""
        if direction == "out":
            cycles = self.codec.spec.compress_cycles_per_byte * PAGE_SIZE
        elif direction == "in":
            cycles = self.codec.spec.decompress_cycles_per_byte * PAGE_SIZE
        else:
            raise ConfigError(f"direction must be in/out, got {direction}")
        return cycles / self.cpu_freq_hz
