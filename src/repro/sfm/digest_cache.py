"""Digest-keyed compressed-page cache for the SFM store path.

Google's TMTS and Meta's TMO observe that swapped-out working sets carry
heavy content duplication (zeroed allocator slabs, fork-shared pages,
templated heap objects). zswap already special-cases the degenerate form
— same-value-filled pages — in the frontend; this cache generalises the
idea to *any* repeated page content at the backend: the compressed blob
is cached under a digest of the uncompressed page, so storing a page
whose exact bytes were compressed before skips the compressor entirely
and reuses the blob.

Content addressing makes invalidation free: a mutated page hashes to a
different key and simply misses, so no store/invalidate bookkeeping can
ever serve stale bytes. The only failure mode is a digest collision;
with a 128-bit keyed BLAKE2b digest this is negligible (the same
trade-off content-addressed storage systems make).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Optional

from repro.errors import ConfigError

#: 128-bit digests: collision probability ~2^-64 at a billion cached
#: pages, far below any soft-error rate in the memory being modelled.
DIGEST_SIZE = 16

#: Cycles/byte charged for hashing a page on the hit path (BLAKE2b runs
#: ~2 cycles/byte on a server core; the miss path's hash cost is noise
#: against the compressor and is folded into its cycles/byte figure).
DIGEST_CYCLES_PER_BYTE = 2.0


def page_digest(data: bytes) -> bytes:
    """Content key for a page: 128-bit BLAKE2b digest."""
    return hashlib.blake2b(data, digest_size=DIGEST_SIZE).digest()


class DigestPageCache:
    """Bounded LRU map: page digest -> compressed blob."""

    def __init__(self, max_entries: int = 1024) -> None:
        if max_entries < 1:
            raise ConfigError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self._entries: "OrderedDict[bytes, bytes]" = OrderedDict()

    def get(self, digest: bytes) -> Optional[bytes]:
        """Cached blob for ``digest``, refreshing its LRU position."""
        blob = self._entries.get(digest)
        if blob is not None:
            self._entries.move_to_end(digest)
        return blob

    def put(self, digest: bytes, blob: bytes) -> None:
        """Insert (or refresh) a digest -> blob mapping, evicting LRU."""
        entries = self._entries
        if digest in entries:
            entries.move_to_end(digest)
        entries[digest] = blob
        if len(entries) > self.max_entries:
            entries.popitem(last=False)

    def invalidate(self, digest: bytes) -> bool:
        """Drop one entry (only needed if blobs must be forgotten, e.g.
        codec reconfiguration; content addressing never requires it for
        correctness)."""
        return self._entries.pop(digest, None) is not None

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: bytes) -> bool:
        return digest in self._entries
