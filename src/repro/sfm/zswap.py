"""zswap-style frontend: the frontswap-shaped OS integration surface.

Production SFM deployments sit behind Linux zswap (§2.1): the kernel's
swap path calls ``store``/``load``/``invalidate`` keyed by (swap type,
offset), zswap compresses into the zpool, and rejects stores — falling
through to the real swap device — when the page is incompressible or the
pool exceeds its ``max_pool_percent`` of RAM. :class:`ZswapFrontend`
reproduces that contract over any :class:`~repro.tiering.protocol.
FarMemoryTier` (baseline CPU, XFM, multi-channel XFM, DFM, or a whole
:class:`~repro.tiering.pipeline.TierPipeline`), including the
accept/reject statistics the kernel exposes in
``/sys/kernel/debug/zswap``. The ``max_pool_percent`` arithmetic lives
in :class:`~repro.tiering.policy.PoolLimitPolicy`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

from repro.errors import (
    ConfigError,
    CorruptedBlobError,
    TierUnavailableError,
)
from repro.sfm.page import PAGE_SIZE, Page
from repro.telemetry import trace as _trace
from repro.telemetry.stats import StatsFacade
from repro.tiering.policy import PoolLimitPolicy
from repro.tiering.protocol import FarMemoryTier


class ZswapStats(StatsFacade):
    """Counters mirroring zswap's debugfs statistics (registry-backed)."""

    _PREFIX = "zswap"
    _FIELDS = {
        "stored_pages": 0,
        "same_filled_pages": 0,
        "reject_compress_poor": 0,
        "reject_pool_limit": 0,
        "loads": 0,
        "invalidates": 0,
        # Entries evicted to the backing swap device to admit new stores
        # (zswap's writeback path).
        "written_back": 0,
        # Entries lost to unrecoverable backend corruption — surfaced to
        # the caller as CorruptedBlobError, never as a silent miss.
        "poison_pages": 0,
    }

    @property
    def total_rejects(self) -> int:
        return self.reject_compress_poor + self.reject_pool_limit


class ZswapFrontend:
    """Frontswap-shaped store/load/invalidate over any far-memory tier."""

    def __init__(
        self,
        backend: FarMemoryTier,
        total_ram_bytes: int,
        max_pool_percent: int = 20,
        writeback: Optional[Callable[[int, int, bytes], None]] = None,
    ) -> None:
        """``writeback(swap_type, offset, data)``, when provided, enables
        zswap's writeback path: on pool-limit pressure the LRU entries are
        decompressed and handed to the backing swap device to make room,
        instead of rejecting the incoming store."""
        # Validates max_pool_percent/total_ram_bytes (raises ConfigError).
        self.pool_limit = PoolLimitPolicy(
            total_ram_bytes=total_ram_bytes,
            max_pool_percent=max_pool_percent,
        )
        self.backend = backend
        self.total_ram_bytes = total_ram_bytes
        self.max_pool_percent = max_pool_percent
        self.writeback = writeback
        self.stats = ZswapStats()
        #: LRU-ordered: oldest store first (the writeback victim order).
        self._pages: "OrderedDict[Tuple[int, int], Page]" = OrderedDict()
        #: Same-value-filled pages are stored as just their fill byte
        #: (zswap's same_filled optimization) — no pool space at all.
        self._same_filled: Dict[Tuple[int, int], int] = {}

    # -- pool limit --------------------------------------------------------

    def pool_limit_bytes(self) -> int:
        return self.pool_limit.limit_bytes()

    def pool_usage_bytes(self) -> int:
        return self.backend.used_bytes()

    def _over_limit(self) -> bool:
        return self.pool_limit.over_limit(self.pool_usage_bytes())

    # -- frontswap ops ---------------------------------------------------------

    def store(self, swap_type: int, offset: int, data: bytes) -> bool:
        """Intercept a page being swapped out.

        Returns True if zswap kept it (compressed or same-filled); False
        means the caller must write it to the real swap device.
        """
        if len(data) != PAGE_SIZE:
            raise ConfigError(f"store expects a {PAGE_SIZE}-byte page")
        key = (swap_type, offset)
        if key in self._pages or key in self._same_filled:
            # Re-store of a dirty page: drop the stale copy first.
            self.invalidate_page(swap_type, offset)
            self.stats.invalidates -= 1  # internal, not caller-visible

        trace_on = _trace.tracing_enabled()
        fill = data[0]
        if data == bytes([fill]) * PAGE_SIZE:
            self._same_filled[key] = fill
            self.stats.same_filled_pages += 1
            self.stats.stored_pages += 1
            if trace_on:
                _trace.instant(
                    "zswap_store",
                    _trace.TRACK_CPU,
                    args={"outcome": "same_filled", "offset": offset},
                )
            return True

        if self._over_limit():
            if self.writeback is None or not self.shrink():
                self.stats.reject_pool_limit += 1
                if trace_on:
                    _trace.instant(
                        "zswap_store",
                        _trace.TRACK_CPU,
                        args={"outcome": "reject_pool_limit", "offset": offset},
                    )
                return False

        vaddr = ((swap_type & 0xFFFF) << 44) | (offset * PAGE_SIZE)
        page = Page(vaddr=vaddr, data=data)
        start_ns = _trace.clock_ns() if trace_on else 0.0
        outcome = self.backend.swap_out(page)
        if not outcome.accepted:
            if outcome.reason == "incompressible":
                self.stats.reject_compress_poor += 1
            else:
                self.stats.reject_pool_limit += 1
            if trace_on:
                _trace.complete(
                    "zswap_store",
                    _trace.TRACK_CPU,
                    start_ns,
                    max(0.0, _trace.clock_ns() - start_ns),
                    args={"outcome": f"reject_{outcome.reason}",
                          "offset": offset},
                )
            return False
        self._pages[key] = page
        self.stats.stored_pages += 1
        if trace_on:
            _trace.complete(
                "zswap_store",
                _trace.TRACK_CPU,
                start_ns,
                max(0.0, _trace.clock_ns() - start_ns),
                args={
                    "outcome": "stored",
                    "offset": offset,
                    "compressed_len": outcome.compressed_len,
                },
            )
        return True

    def load(self, swap_type: int, offset: int) -> Optional[bytes]:
        """Swap-in hook: returns the page or None if zswap never had it."""
        key = (swap_type, offset)
        trace_on = _trace.tracing_enabled()
        if key in self._same_filled:
            fill = self._same_filled.pop(key)
            self.stats.loads += 1
            self.stats.stored_pages -= 1
            if trace_on:
                _trace.instant(
                    "zswap_load",
                    _trace.TRACK_CPU,
                    args={"outcome": "same_filled", "offset": offset},
                )
            return bytes([fill]) * PAGE_SIZE
        page = self._pages.pop(key, None)
        if page is None:
            return None
        start_ns = _trace.clock_ns() if trace_on else 0.0
        try:
            data = self.backend.swap_in(page)
        except TierUnavailableError:
            # Transient: the backend still holds the page; re-map the
            # key so the kernel's retry finds it.
            self._pages[key] = page
            self._pages.move_to_end(key, last=False)  # keep LRU position
            raise
        except CorruptedBlobError:
            # The backend detected unrecoverable corruption and poisoned
            # the entry; the page is gone — propagate the explicit error
            # (the caller falls back to the real swap device's copy).
            self.stats.stored_pages -= 1
            self.stats.poison_pages += 1
            raise
        self.stats.loads += 1
        self.stats.stored_pages -= 1
        if trace_on:
            _trace.complete(
                "zswap_load",
                _trace.TRACK_CPU,
                start_ns,
                max(0.0, _trace.clock_ns() - start_ns),
                args={"outcome": "loaded", "offset": offset},
            )
        return data

    def invalidate_page(self, swap_type: int, offset: int) -> None:
        """The swap slot was freed: drop any stored copy."""
        key = (swap_type, offset)
        if key in self._same_filled:
            del self._same_filled[key]
            self.stats.stored_pages -= 1
            self.stats.invalidates += 1
            return
        page = self._pages.pop(key, None)
        if page is not None:
            # Discard without promoting: free the pool entry directly.
            self.backend.invalidate(page.vaddr)
            self.stats.stored_pages -= 1
            self.stats.invalidates += 1

    def shrink(self, target_free_bytes: int = PAGE_SIZE) -> int:
        """Write back LRU entries until the pool is under its limit with
        ``target_free_bytes`` headroom; returns entries written back.

        Mirrors zswap's shrink/writeback: the victim is decompressed,
        handed to the backing swap device, and its pool space freed.
        Requires a ``writeback`` callback; without one, pool pressure is
        handled by rejecting stores instead.
        """
        if self.writeback is None:
            raise ConfigError("shrink requires a writeback callback")
        written = 0
        while self._pages and self.pool_limit.needs_headroom(
            self.pool_usage_bytes(), target_free_bytes
        ):
            key, page = self._pages.popitem(last=False)  # LRU victim
            try:
                data = self.backend.swap_in(page)
            except TierUnavailableError:
                # Backend unreachable: put the victim back at the LRU
                # head and stop shrinking for now (retryable).
                self._pages[key] = page
                self._pages.move_to_end(key, last=False)
                break
            except CorruptedBlobError:
                # Entry lost to corruption: its pool space is already
                # freed (poisoned), so it made headroom — keep going.
                self.stats.stored_pages -= 1
                self.stats.poison_pages += 1
                continue
            self.writeback(key[0], key[1], data)
            self.stats.written_back += 1
            self.stats.stored_pages -= 1
            written += 1
        # Consolidate the holes the evictions left behind.
        if written:
            self.backend.compact()
        return written

    def invalidate_area(self, swap_type: int) -> int:
        """swapoff: drop every page of one swap type."""
        keys = [key for key in self._pages if key[0] == swap_type] + [
            key for key in self._same_filled if key[0] == swap_type
        ]
        for swap, offset in keys:
            self.invalidate_page(swap, offset)
        return len(keys)

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return key in self._pages or key in self._same_filled
