"""Software-defined far memory stack (system S6).

A functional zswap-like SFM: a cold-page control plane
(:mod:`~repro.sfm.controller`), a zsmalloc-style compressed pool with
compaction (:mod:`~repro.sfm.zpool`), a red-black tree index of swapped
entries (:mod:`~repro.sfm.rbtree`), and a baseline CPU backend implementing
``swap_out``/``swap_in`` (:mod:`~repro.sfm.backend`). The XFM backend in
:mod:`repro.core.backend` wraps the same pool but offloads (de)compression
to the near-memory accelerator.
"""

from repro.sfm.backend import SfmBackend, SwapOutcome
from repro.sfm.controller import ColdScanController, PressureController
from repro.sfm.digest_cache import DigestPageCache, page_digest
from repro.sfm.metrics import BandwidthLedger, SwapStats
from repro.sfm.page import PAGE_SIZE, Page
from repro.sfm.policy import OffloadPolicy, io_amplification_ratio
from repro.sfm.rbtree import RedBlackTree
from repro.sfm.zpool import Zpool, ZpoolEntry
from repro.sfm.zswap import ZswapFrontend

__all__ = [
    "BandwidthLedger",
    "ColdScanController",
    "DigestPageCache",
    "OffloadPolicy",
    "PAGE_SIZE",
    "Page",
    "PressureController",
    "RedBlackTree",
    "SfmBackend",
    "SwapOutcome",
    "SwapStats",
    "Zpool",
    "ZpoolEntry",
    "ZswapFrontend",
    "io_amplification_ratio",
    "page_digest",
]
