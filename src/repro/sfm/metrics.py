"""Counters shared by the SFM backends and the XFM emulator.

Two ledgers matter for the paper's experiments: swap statistics (how much
was compressed/decompressed, at what CPU cost) and memory-channel traffic
split by actor — the CPU-side SFM traffic that Fig. 1/Fig. 11 charge
against co-runners versus the NMA-side traffic XFM hides inside refresh
windows.

:class:`SwapStats` is a :class:`~repro.telemetry.stats.StatsFacade`:
every field lives in a :class:`~repro.telemetry.registry.MetricsRegistry`
counter (private per instance unless a shared registry is bound), which
gives all stats objects one ``merge()``/``as_dict()`` implementation and
uniform export alongside trace data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro._units import SECONDS_PER_MINUTE
from repro.errors import ConfigError
from repro.telemetry.stats import StatsFacade


class SwapStats(StatsFacade):
    """Aggregate swap-path statistics (registry-backed facade)."""

    _PREFIX = "swap"
    _FIELDS = {
        "swap_outs": 0,
        "swap_ins": 0,
        "rejected": 0,
        "bytes_out_uncompressed": 0,
        "bytes_out_compressed": 0,
        "bytes_in_uncompressed": 0,
        "bytes_in_compressed": 0,
        "cpu_compress_cycles": 0.0,
        "cpu_decompress_cycles": 0.0,
        "cpu_fallback_compressions": 0,
        "cpu_fallback_decompressions": 0,
        "offloaded_compressions": 0,
        "offloaded_decompressions": 0,
        # Digest-keyed page-cache accounting: a hit reuses a previously
        # compressed blob for identical page content and skips the
        # compressor; a miss runs the compressor as usual.
        "digest_cache_hits": 0,
        "digest_cache_misses": 0,
        # Per-reason fallback ledger (repro.telemetry.reasons codes).
        # Invariant: these sum to cpu_fallback_compressions +
        # cpu_fallback_decompressions, and each trace ``cpu_fallback``
        # event carries exactly one of the codes — the reconciliation
        # the `python -m repro trace` acceptance test checks.
        "fallbacks_spm_full": 0,
        "fallbacks_queue_full": 0,
        "fallbacks_demand": 0,
        "fallbacks_device_fault": 0,
        # Resilience accounting (repro.resilience): transient device
        # faults observed, bounded-retry attempts spent on them, and the
        # verified-recovery ledger — a detection is an integrity-digest
        # mismatch; it either becomes a recovery (re-read or CPU-path
        # fallback succeeded) or a poison page (data explicitly lost,
        # surfaced as CorruptedBlobError, never returned as garbage).
        "device_faults": 0,
        "transient_retries": 0,
        "corruptions_detected": 0,
        "corruptions_recovered": 0,
        "poison_pages": 0,
    }

    @property
    def digest_cache_hit_rate(self) -> float:
        """Fraction of digest-cache *lookups* that hit.

        The denominator is cache lookups (hits + misses), not swap-outs:
        same-filled pages bypass the backend entirely in the zswap
        frontend, and runs with the cache disabled perform no lookups at
        all, so neither appears here. For the share of swap-out attempts
        that consulted the cache, see :attr:`digest_cache_lookup_rate`.
        """
        total = self.digest_cache_hits + self.digest_cache_misses
        return self.digest_cache_hits / total if total else 0.0

    @property
    def digest_cache_lookup_rate(self) -> float:
        """Fraction of swap-out attempts that consulted the digest cache.

        Attempts = accepted swap-outs + rejected ones; lookups = hits +
        misses. This is 1.0 when the cache is enabled (every backend
        swap-out hashes the page first) and 0.0 when it is disabled —
        the honest companion to :attr:`digest_cache_hit_rate`, whose
        denominator excludes non-lookups.
        """
        attempts = self.swap_outs + self.rejected
        lookups = self.digest_cache_hits + self.digest_cache_misses
        return lookups / attempts if attempts else 0.0

    @property
    def mean_compression_ratio(self) -> float:
        if not self.bytes_out_compressed:
            return 0.0
        return self.bytes_out_uncompressed / self.bytes_out_compressed

    @property
    def total_cpu_cycles(self) -> float:
        return self.cpu_compress_cycles + self.cpu_decompress_cycles

    @property
    def fallback_fraction(self) -> float:
        """Fraction of (de)compressions the CPU had to perform (Fig. 12)."""
        fallbacks = (
            self.cpu_fallback_compressions + self.cpu_fallback_decompressions
        )
        offloads = (
            self.offloaded_compressions + self.offloaded_decompressions
        )
        total = fallbacks + offloads
        return fallbacks / total if total else 0.0


@dataclass
class BandwidthLedger:
    """Memory-channel traffic accounting, bytes by (actor, direction).

    Actors: ``app`` (co-running applications), ``sfm_cpu`` (CPU-side swap
    traffic over the DDR channel), ``nma`` (on-DIMM accelerator traffic,
    invisible to the channel).
    """

    window_s: float = SECONDS_PER_MINUTE
    _bytes: Dict[str, int] = field(default_factory=dict)

    def record(self, actor: str, direction: str, num_bytes: int) -> None:
        """Add ``num_bytes`` of traffic for (actor, direction)."""
        if direction not in ("read", "write"):
            raise ConfigError(f"direction must be read/write, got {direction}")
        key = f"{actor}:{direction}"
        self._bytes[key] = self._bytes.get(key, 0) + num_bytes

    def total(self, actor: str) -> int:
        """Total bytes (read + write) for ``actor``."""
        return sum(
            count
            for key, count in self._bytes.items()
            if key.startswith(f"{actor}:")
        )

    def channel_bytes(self) -> int:
        """Bytes that crossed the DDR channel (everything but the NMA)."""
        return sum(
            count
            for key, count in self._bytes.items()
            if not key.startswith("nma:")
        )

    def bandwidth_bps(self, actor: str, elapsed_s: float) -> float:
        """Average bandwidth of ``actor`` over ``elapsed_s`` seconds."""
        if elapsed_s <= 0:
            return 0.0
        return self.total(actor) / elapsed_s

    def snapshot(self) -> Dict[str, int]:
        return dict(self._bytes)

    def reset(self) -> None:
        self._bytes.clear()


def promotion_rate(bytes_accessed_per_min: float, far_bytes: float) -> float:
    """Promotion rate (§2.1): fraction of far memory accessed per minute."""
    if far_bytes <= 0:
        return 0.0
    return bytes_accessed_per_min / far_bytes


def gb_swapped_per_min(extra_gb: float, promo_rate: float) -> float:
    """EQ1: GBSwappedPerMin = ExtraGB x PromotionRate."""
    return extra_gb * promo_rate
