"""Red-black tree keyed by integer virtual address.

The XFM backend "performs a lookup in an internal red-black tree to find
the associated physical address of the compressed page entry" (§6); Linux's
zswap likewise indexes its entries in an rbtree per swap device. This is a
textbook CLRS implementation with insert, delete, exact lookup, floor
lookup, and ordered iteration; its invariants (root black, no red-red
edges, equal black heights) are enforced by property tests.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import EntryNotFoundError
from repro.validation.hooks import checkpoint

RED = True
BLACK = False


class _Node:
    __slots__ = ("key", "value", "color", "left", "right", "parent")

    def __init__(self, key: int, value: Any, color: bool, nil: "_Node") -> None:
        self.key = key
        self.value = value
        self.color = color
        self.left = nil
        self.right = nil
        self.parent = nil


class RedBlackTree:
    """Mutable ordered map from int keys to arbitrary values."""

    def __init__(self) -> None:
        self._nil = _Node.__new__(_Node)
        self._nil.key = 0
        self._nil.value = None
        self._nil.color = BLACK
        self._nil.left = self._nil
        self._nil.right = self._nil
        self._nil.parent = self._nil
        self._root = self._nil
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: int) -> bool:
        return self._find(key) is not self._nil

    # -- rotations ----------------------------------------------------------

    def _rotate_left(self, x: _Node) -> None:
        y = x.right
        x.right = y.left
        if y.left is not self._nil:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is self._nil:
            self._root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _rotate_right(self, x: _Node) -> None:
        y = x.left
        x.left = y.right
        if y.right is not self._nil:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is self._nil:
            self._root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    # -- insert ---------------------------------------------------------------

    def insert(self, key: int, value: Any) -> None:
        """Insert or replace the value at ``key``."""
        parent = self._nil
        node = self._root
        while node is not self._nil:
            parent = node
            if key == node.key:
                node.value = value
                return
            node = node.left if key < node.key else node.right
        fresh = _Node(key, value, RED, self._nil)
        fresh.parent = parent
        if parent is self._nil:
            self._root = fresh
        elif key < parent.key:
            parent.left = fresh
        else:
            parent.right = fresh
        self._size += 1
        self._insert_fixup(fresh)
        checkpoint(self)

    def _insert_fixup(self, z: _Node) -> None:
        while z.parent.color is RED:
            grand = z.parent.parent
            if z.parent is grand.left:
                uncle = grand.right
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    z = grand
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_right(z.parent.parent)
            else:
                uncle = grand.left
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    grand.color = RED
                    z = grand
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_left(z.parent.parent)
        self._root.color = BLACK

    # -- lookup ----------------------------------------------------------------

    def _find(self, key: int) -> _Node:
        node = self._root
        while node is not self._nil and node.key != key:
            node = node.left if key < node.key else node.right
        return node

    def get(self, key: int, default: Any = None) -> Any:
        node = self._find(key)
        return default if node is self._nil else node.value

    def lookup(self, key: int) -> Any:
        """Value at ``key``; raises :class:`EntryNotFoundError` if absent."""
        node = self._find(key)
        if node is self._nil:
            raise EntryNotFoundError(f"key 0x{key:x} not in tree")
        return node.value

    def floor(self, key: int) -> Optional[Tuple[int, Any]]:
        """Largest (key, value) with key <= ``key``, or None."""
        node = self._root
        best: Optional[_Node] = None
        while node is not self._nil:
            if node.key == key:
                return node.key, node.value
            if node.key < key:
                best = node
                node = node.right
            else:
                node = node.left
        return (best.key, best.value) if best is not None else None

    def min_key(self) -> Optional[int]:
        if self._root is self._nil:
            return None
        return self._minimum(self._root).key

    def _minimum(self, node: _Node) -> _Node:
        while node.left is not self._nil:
            node = node.left
        return node

    # -- delete -------------------------------------------------------------------

    def delete(self, key: int) -> Any:
        """Remove ``key`` and return its value; raises if absent."""
        z = self._find(key)
        if z is self._nil:
            raise EntryNotFoundError(f"key 0x{key:x} not in tree")
        value = z.value
        y = z
        y_color = y.color
        if z.left is self._nil:
            x = z.right
            self._transplant(z, z.right)
        elif z.right is self._nil:
            x = z.left
            self._transplant(z, z.left)
        else:
            y = self._minimum(z.right)
            y_color = y.color
            x = y.right
            if y.parent is z:
                x.parent = y
            else:
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        self._size -= 1
        if y_color is BLACK:
            self._delete_fixup(x)
        checkpoint(self)
        return value

    def _transplant(self, u: _Node, v: _Node) -> None:
        if u.parent is self._nil:
            self._root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        v.parent = u.parent

    def _delete_fixup(self, x: _Node) -> None:
        while x is not self._root and x.color is BLACK:
            if x is x.parent.left:
                w = x.parent.right
                if w.color is RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_left(x.parent)
                    w = x.parent.right
                if w.left.color is BLACK and w.right.color is BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.right.color is BLACK:
                        w.left.color = BLACK
                        w.color = RED
                        self._rotate_right(w)
                        w = x.parent.right
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.right.color = BLACK
                    self._rotate_left(x.parent)
                    x = self._root
            else:
                w = x.parent.left
                if w.color is RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_right(x.parent)
                    w = x.parent.left
                if w.right.color is BLACK and w.left.color is BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.left.color is BLACK:
                        w.right.color = BLACK
                        w.color = RED
                        self._rotate_left(w)
                        w = x.parent.left
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.left.color = BLACK
                    self._rotate_right(x.parent)
                    x = self._root
        x.color = BLACK

    # -- iteration / validation ------------------------------------------------------

    def items(self) -> Iterator[Tuple[int, Any]]:
        """In-order (sorted) iteration."""
        stack: List[_Node] = []
        node = self._root
        while stack or node is not self._nil:
            while node is not self._nil:
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key, node.value
            node = node.right

    def keys(self) -> List[int]:
        return [k for k, _ in self.items()]

    def check_invariants(self) -> int:
        """Validate red-black properties; returns the black height.

        Raises ``AssertionError`` on violation — used by the property tests.
        """
        assert self._root.color is BLACK, "root must be black"

        def walk(node: _Node, low: float, high: float) -> int:
            if node is self._nil:
                return 1
            assert low < node.key < high, "BST ordering violated"
            if node.color is RED:
                assert node.left.color is BLACK, "red node with red left child"
                assert node.right.color is BLACK, "red node with red right child"
            lh = walk(node.left, low, node.key)
            rh = walk(node.right, node.key, high)
            assert lh == rh, "unequal black heights"
            return lh + (1 if node.color is BLACK else 0)

        return walk(self._root, float("-inf"), float("inf"))
